#include "safeopt/expr/compiled.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "safeopt/expr/expr.h"
#include "safeopt/stats/distribution.h"
#include "safeopt/support/rng.h"
#include "safeopt/support/thread_pool.h"
#include "testutil/random_expr.h"

namespace safeopt::expr {
namespace {

std::vector<double> values_of(const ParameterAssignment& env,
                              const std::vector<std::string>& order) {
  std::vector<double> out;
  out.reserve(order.size());
  for (const std::string& name : order) out.push_back(env.get(name));
  return out;
}

TEST(CompiledExprTest, ConstantFoldsToSingleInstruction) {
  const Expr e = (constant(2.0) + constant(3.0)) * constant(4.0);
  const CompiledExpr compiled = CompiledExpr::compile(e);
  EXPECT_EQ(compiled.tape_size(), 1u);
  EXPECT_DOUBLE_EQ(compiled.evaluate(std::vector<double>{}), 20.0);
}

TEST(CompiledExprTest, EvaluatesSimpleExpression) {
  const Expr x = parameter("x");
  const Expr y = parameter("y");
  const Expr e = (x + y) * (x - y);
  const CompiledExpr compiled = CompiledExpr::compile(e, {"x", "y"});
  EXPECT_EQ(compiled.evaluate(std::vector<double>{3.0, 2.0}), 5.0);
  EXPECT_EQ(compiled.evaluate(ParameterAssignment{{"x", 3.0}, {"y", 2.0}}),
            5.0);
}

TEST(CompiledExprTest, ParameterOrderDefaultsToAlphabetical) {
  const Expr e = parameter("b") - parameter("a");
  const CompiledExpr compiled = CompiledExpr::compile(e);
  ASSERT_EQ(compiled.parameter_order().size(), 2u);
  EXPECT_EQ(compiled.parameter_order()[0], "a");
  EXPECT_EQ(compiled.parameter_order()[1], "b");
  EXPECT_EQ(compiled.evaluate(std::vector<double>{1.0, 5.0}), 4.0);
}

TEST(CompiledExprTest, ExplicitOrderMayContainExtraParameters) {
  const Expr e = parameter("x") * 2.0;
  const CompiledExpr compiled = CompiledExpr::compile(e, {"unused", "x"});
  EXPECT_EQ(compiled.evaluate(std::vector<double>{99.0, 3.0}), 6.0);
}

TEST(CompiledExprTest, SharedSubtreeCompilesOnce) {
  const Expr x = parameter("x");
  const Expr shared = exp(x * 2.0);
  const Expr e = shared + shared * shared;
  const CompiledExpr compiled = CompiledExpr::compile(e);
  // param, mul-imm, exp, mul, add — the shared exp appears once.
  EXPECT_EQ(compiled.tape_size(), 5u);
}

TEST(CompiledExprTest, StructurallyEqualSubtreesMerge) {
  // Built twice — distinct nodes, same structure.
  const auto term = [] { return exp(parameter("x") * 2.0) + 1.0; };
  const Expr e = term() * term();
  const CompiledExpr compiled = CompiledExpr::compile(e);
  // param, mul-imm, exp, add-imm, mul: the rebuilt term dedupes.
  EXPECT_EQ(compiled.tape_size(), 5u);
}

TEST(CompiledExprTest, EqualDistributionsShareCdfInstructions) {
  // Two independently constructed but identical distributions.
  const auto d1 = std::make_shared<stats::TruncatedNormal>(
      4.0, 2.0, 0.0, std::numeric_limits<double>::infinity());
  const auto d2 = std::make_shared<stats::TruncatedNormal>(
      4.0, 2.0, 0.0, std::numeric_limits<double>::infinity());
  const Expr x = parameter("x");
  const Expr e = survival(d1, x) + survival(d2, x);
  const CompiledExpr compiled = CompiledExpr::compile(e);
  // param, survival, add — the second survival is CSE'd via the canonical
  // (type, name) distribution key.
  EXPECT_EQ(compiled.tape_size(), 3u);
  const ParameterAssignment env{{"x", 7.0}};
  EXPECT_EQ(compiled.evaluate(env), e.evaluate(env));
}

TEST(CompiledExprTest, IdentitySimplificationsPreserveValues) {
  const Expr x = parameter("x");
  const Expr e = ((x + 0.0) * 1.0 - 0.0) / 1.0 + pow(x, 1.0);
  const CompiledExpr compiled = CompiledExpr::compile(e);
  // Everything simplifies to x + x.
  EXPECT_EQ(compiled.tape_size(), 2u);
  EXPECT_EQ(compiled.evaluate(std::vector<double>{3.5}), 7.0);
}

TEST(CompiledExprTest, MatchesTreeEvaluationOnRandomDags) {
  const std::vector<std::string> params = {"a", "b", "c", "d"};
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    Rng rng(seed * 7919 + 1);
    const Expr e = testutil::random_expr(rng, params, 5);
    const CompiledExpr compiled = CompiledExpr::compile(e, params);
    for (int point = 0; point < 5; ++point) {
      const ParameterAssignment env = testutil::random_assignment(rng, params);
      const double tree = e.evaluate(env);
      const double tape = compiled.evaluate(values_of(env, params));
      // Bitwise-comparable: the tape performs the identical operations.
      EXPECT_EQ(tree, tape) << "seed " << seed << ": " << e.to_string();
    }
  }
}

TEST(CompiledExprTest, ReverseGradientAgreesWithForwardDual) {
  const std::vector<std::string> params = {"a", "b", "c"};
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    Rng rng(seed * 104729 + 3);
    const Expr e = testutil::random_expr(rng, params, 5);
    const CompiledExpr compiled = CompiledExpr::compile(e, params);
    const ParameterAssignment env = testutil::random_assignment(rng, params);
    const Dual dual = e.evaluate_dual(env, params);

    std::vector<double> gradient(params.size());
    const double value =
        compiled.evaluate_with_gradient(values_of(env, params), gradient);
    EXPECT_EQ(value, e.evaluate(env));
    for (std::size_t i = 0; i < params.size(); ++i) {
      const double scale = std::max(1.0, std::abs(dual.grad(i)));
      EXPECT_NEAR(gradient[i], dual.grad(i), 1e-9 * scale)
          << "seed " << seed << " d/d" << params[i] << ": " << e.to_string();
    }
  }
}

TEST(CompiledExprTest, GradientOfUnmentionedParameterIsZero) {
  const Expr e = parameter("x") * 3.0;
  const CompiledExpr compiled = CompiledExpr::compile(e, {"x", "y"});
  std::vector<double> gradient(2);
  const double value = compiled.evaluate_with_gradient(
      std::vector<double>{2.0, 5.0}, gradient);
  EXPECT_EQ(value, 6.0);
  EXPECT_EQ(gradient[0], 3.0);
  EXPECT_EQ(gradient[1], 0.0);
}

TEST(CompiledExprTest, BatchMatchesScalarEvaluation) {
  const std::vector<std::string> params = {"a", "b"};
  Rng rng(42);
  const Expr e = testutil::random_expr(rng, params, 5);
  const CompiledExpr compiled = CompiledExpr::compile(e, params);

  const std::size_t rows = 137;
  std::vector<double> points(rows * 2);
  for (double& v : points) v = uniform(rng, 0.25, 4.0);
  std::vector<double> batch(rows);
  compiled.evaluate_batch({.points = points, .values = batch});
  for (std::size_t r = 0; r < rows; ++r) {
    EXPECT_EQ(batch[r],
              compiled.evaluate(std::span<const double>(&points[r * 2], 2)));
  }
}

TEST(CompiledExprTest, BatchIndependentOfThreadCount) {
  const std::vector<std::string> params = {"a", "b", "c"};
  Rng rng(7);
  const Expr e = testutil::random_expr(rng, params, 6);
  const CompiledExpr compiled = CompiledExpr::compile(e, params);

  const std::size_t rows = 1000;
  std::vector<double> points(rows * 3);
  for (double& v : points) v = uniform(rng, 0.25, 4.0);

  std::vector<double> serial(rows);
  compiled.evaluate_batch({.points = points, .values = serial});
  for (const std::size_t threads : {1u, 2u, 5u}) {
    ThreadPool pool(threads);
    std::vector<double> parallel(rows);
    compiled.evaluate_batch(
        {.points = points, .values = parallel, .pool = &pool});
    EXPECT_EQ(serial, parallel) << threads << " threads";
  }
}

TEST(CompiledExprTest, WorkspaceMemoReplaysIdenticalValues) {
  const auto dist = std::make_shared<stats::TruncatedNormal>(
      4.0, 2.0, 0.0, std::numeric_limits<double>::infinity());
  const Expr e =
      survival(dist, parameter("x")) * survival(dist, parameter("y"));
  const CompiledExpr compiled = CompiledExpr::compile(e, {"x", "y"});

  CompiledExpr::Workspace workspace;
  // Sweep x with y fixed: the y-survival memo hits on every step after the
  // first, and every value must still equal a cold evaluation.
  for (int i = 0; i < 50; ++i) {
    const std::vector<double> point{15.0 + 0.1 * i, 16.0};
    EXPECT_EQ(compiled.evaluate(point, workspace), compiled.evaluate(point));
  }
}

TEST(CompiledExprTest, WorkspaceRebindsAcrossExpressions) {
  const CompiledExpr first =
      CompiledExpr::compile(parameter("x") * 2.0, {"x"});
  const CompiledExpr second =
      CompiledExpr::compile(parameter("x") + 1.0, {"x"});
  CompiledExpr::Workspace workspace;
  EXPECT_EQ(first.evaluate(std::vector<double>{3.0}, workspace), 6.0);
  EXPECT_EQ(second.evaluate(std::vector<double>{3.0}, workspace), 4.0);
  EXPECT_EQ(first.evaluate(std::vector<double>{5.0}, workspace), 10.0);
}

TEST(CompiledExprTest, DisassembleListsOneLinePerInstruction) {
  const Expr e = exp(parameter("x")) + 1.0;
  const CompiledExpr compiled = CompiledExpr::compile(e);
  const std::string listing = compiled.disassemble();
  std::size_t lines = 0;
  for (const char c : listing) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, compiled.tape_size());
  EXPECT_NE(listing.find("param x"), std::string::npos);
  EXPECT_NE(listing.find("exp"), std::string::npos);
}

}  // namespace
}  // namespace safeopt::expr
