#include "safeopt/core/robust_optimizer.h"

#include <algorithm>

#include "safeopt/support/contracts.h"
#include "safeopt/support/thread_pool.h"

namespace safeopt::core {

ScenarioSet::ScenarioSet(std::size_t count,
                         const std::function<expr::Expr(Rng&)>& generator,
                         std::uint64_t seed) {
  SAFEOPT_EXPECTS(count >= 2);
  SAFEOPT_EXPECTS(static_cast<bool>(generator));
  Rng rng(seed);
  scenarios_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    scenarios_.push_back(generator(rng));
  }
}

ScenarioSet::ScenarioSet(std::vector<expr::Expr> scenarios)
    : scenarios_(std::move(scenarios)) {
  SAFEOPT_EXPECTS(!scenarios_.empty());
}

const expr::Expr& ScenarioSet::operator[](std::size_t i) const {
  SAFEOPT_EXPECTS(i < scenarios_.size());
  return scenarios_[i];
}

expr::Expr ScenarioSet::expected_cost() const {
  expr::Expr sum = expr::constant(0.0);
  for (const expr::Expr& scenario : scenarios_) sum = sum + scenario;
  return sum / static_cast<double>(scenarios_.size());
}

expr::Expr ScenarioSet::worst_case_cost() const {
  expr::Expr worst = scenarios_.front();
  for (std::size_t i = 1; i < scenarios_.size(); ++i) {
    worst = expr::max(worst, scenarios_[i]);
  }
  return worst;
}

RobustSafetyOptimizer::RobustSafetyOptimizer(ScenarioSet scenarios,
                                             ParameterSpace space)
    : scenarios_(std::move(scenarios)), space_(std::move(space)) {
  SAFEOPT_EXPECTS(space_.size() >= 1);
  for (const std::string& name :
       scenarios_.expected_cost().parameters()) {
    SAFEOPT_EXPECTS(space_.index_of(name).has_value());
  }
}

RobustOptimizationResult RobustSafetyOptimizer::optimize(
    RobustCriterion criterion, Algorithm algorithm) const {
  return optimize(criterion, algorithm_registry_name(algorithm),
                  algorithm_solver_config(algorithm));
}

RobustOptimizationResult RobustSafetyOptimizer::optimize(
    RobustCriterion criterion, std::string_view solver,
    const opt::SolverConfig& config) const {
  // Reuse the deterministic machinery: wrap the scenario objective as a
  // single-hazard cost model (cost weight 1).
  CostModel model;
  model.add_hazard({"robust_objective",
                    criterion == RobustCriterion::kExpectedValue
                        ? scenarios_.expected_cost()
                        : scenarios_.worst_case_cost(),
                    1.0});
  const SafetyOptimizer inner(std::move(model), space_);
  const SafetyOptimizationResult inner_result = inner.optimize(solver, config);

  RobustOptimizationResult result;
  result.optimization = inner_result.optimization;
  result.optimal_parameters = inner_result.optimal_parameters;
  result.scenario_costs.reserve(scenarios_.size());
  double sum = 0.0;
  double worst = 0.0;
  // One-point-per-scenario reporting stays on the tree walk: the inner
  // solve above runs on the compiled lane-batched objective, but compiling
  // a tape to evaluate it exactly once costs more than it saves.
  for (std::size_t i = 0; i < scenarios_.size(); ++i) {
    const double cost = scenarios_[i].evaluate(result.optimal_parameters);
    result.scenario_costs.push_back(cost);
    sum += cost;
    worst = std::max(worst, cost);
  }
  result.expected_cost = sum / static_cast<double>(scenarios_.size());
  result.worst_case_cost = worst;
  return result;
}

double RobustSafetyOptimizer::max_regret(
    const expr::ParameterAssignment& configuration,
    Algorithm algorithm) const {
  return max_regret(configuration, algorithm_registry_name(algorithm),
                    algorithm_solver_config(algorithm));
}

double RobustSafetyOptimizer::max_regret(
    const expr::ParameterAssignment& configuration, std::string_view solver,
    const opt::SolverConfig& config) const {
  // Each scenario's own optimum is an independent solve; fan them out over
  // the shared pool and reduce afterwards (max is order-independent, so the
  // result does not depend on the thread count). The dominant work — every
  // inner solve — runs on its problem()'s compiled lane-batched objective;
  // the single cost lookup at `configuration` stays on the tree walk
  // (compiling for one evaluation costs more than it saves).
  std::vector<double> regrets(scenarios_.size(), 0.0);
  ThreadPool::shared().parallel_for(
      scenarios_.size(), [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          CostModel model;
          model.add_hazard({"scenario", scenarios_[i], 1.0});
          const SafetyOptimizer solo(std::move(model), space_);
          const double scenario_best = solo.optimize(solver, config).cost;
          const double here = scenarios_[i].evaluate(configuration);
          regrets[i] = here - scenario_best;
        }
      });
  double regret = 0.0;
  for (const double r : regrets) regret = std::max(regret, r);
  return regret;
}

}  // namespace safeopt::core
