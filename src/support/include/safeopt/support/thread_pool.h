// A small fixed-size thread pool for the batched evaluation paths
// (compiled-expression batches, grid rounds, DE generations, Monte Carlo
// chunks). Deliberately work-stealing-free: one mutex-guarded FIFO queue is
// plenty for the coarse, similarly-sized chunks those call sites submit, and
// keeps the scheduling deterministic enough to reason about.
//
// Determinism contract: parallel_for's chunk boundaries depend only on `n`
// and grain, never on timing; callers that write results into index-addressed
// slots therefore produce output that is bitwise-independent of the thread
// count (including 0-thread inline execution).
//
// Nested use is safe: a parallel_for issued from inside a pool worker runs
// inline in that worker instead of enqueueing (which could deadlock a pool
// whose every worker is waiting on subtasks).
#ifndef SAFEOPT_SUPPORT_THREAD_POOL_H
#define SAFEOPT_SUPPORT_THREAD_POOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "safeopt/support/mutex.h"
#include "safeopt/support/thread_annotations.h"

namespace safeopt {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (minimum 1). The pool never uses the calling thread for queued tasks.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

  /// Enqueues one task. Fire-and-forget; pair with wait_idle() or use
  /// parallel_for for joinable work. An exception escaping the task does not
  /// kill the worker: the first one is captured and rethrown by the next
  /// wait_idle() (later ones until then are dropped).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing, then rethrows
  /// the first exception any task raised since the previous wait_idle()
  /// (clearing it). A pending exception a caller never collects is discarded
  /// at destruction.
  void wait_idle();

  /// Splits [0, n) into contiguous chunks of at least `grain` indices,
  /// runs body(begin, end) for each, and blocks until all complete. Chunk
  /// boundaries depend only on n, grain and thread_count() — not on timing.
  /// Runs inline when n is small, the pool is single-threaded, or the
  /// caller is itself a pool worker (nested parallelism). Exceptions thrown
  /// by `body` are rethrown (first one wins).
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& body,
                    std::size_t grain = 1);

  /// Process-wide shared pool, created on first use with the default thread
  /// count. Use for call sites that want parallelism without plumbing a pool
  /// through their API.
  [[nodiscard]] static ThreadPool& shared();

  /// True when called from inside one of this process's pool workers (any
  /// pool) — parallel sections use it to fall back to inline execution.
  [[nodiscard]] static bool inside_worker() noexcept;

 private:
  void worker_loop();

  std::vector<std::thread> workers_;  // written only in ctor/dtor
  Mutex mutex_;
  std::deque<std::function<void()>> queue_ SAFEOPT_GUARDED_BY(mutex_);
  std::condition_variable work_available_;
  std::condition_variable idle_;
  /// queued + executing
  std::size_t in_flight_ SAFEOPT_GUARDED_BY(mutex_) = 0;
  /// first submit()-task exception
  std::exception_ptr pending_error_ SAFEOPT_GUARDED_BY(mutex_);
  bool stopping_ SAFEOPT_GUARDED_BY(mutex_) = false;
};

}  // namespace safeopt

#endif  // SAFEOPT_SUPPORT_THREAD_POOL_H
