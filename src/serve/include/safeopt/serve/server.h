// serve::Server — the `safeopt serve` front end, tying the subsystem
// together: TcpListener accept loop → HTTP parse → admission scheduler
// (per-tenant WFQ, bounded queues) → AnalysisGraph passes over the shared
// artifact cache → response bytes identical to the CLI's --json output.
//
// Endpoints (docs/service.md):
//   POST /v1/quantify   body {document, model?, engine?, engine_options?,
//                             at?, deadline_ms?, tenant?}
//   POST /v1/optimize   body {document, model?, solver?, extras?, seed?,
//                             engine?, engine_options?, deadline_ms?,
//                             tenant?}
//   POST /v1/validate   body {document, model?}
//   GET  /v1/stats      build info + cache/scheduler/request counters
//
// Every request runs under its own ExecutionControl: deadline from the
// body's deadline_ms (or the server default), cancellation from a client-
// disconnect probe polled at the engines' cooperative checkpoints. Error
// taxonomy → status: invalid_input 400, resource_exhausted 429 (413 for
// oversized requests), deadline_exceeded 504 (408 for slow senders),
// cancelled 499, internal 500.
#ifndef SAFEOPT_SERVE_SERVER_H
#define SAFEOPT_SERVE_SERVER_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "safeopt/support/mutex.h"
#include "safeopt/support/thread_annotations.h"

#include "safeopt/serve/analysis_graph.h"
#include "safeopt/serve/http.h"
#include "safeopt/serve/scheduler.h"
#include "safeopt/support/net.h"
#include "safeopt/support/thread_pool.h"

namespace safeopt::serve {

struct ServerOptions {
  /// 0 = ephemeral (read the bound port back with port()).
  std::uint16_t port = 0;
  /// Worker threads handling requests.
  std::size_t threads = 2;
  /// Artifact-cache byte budget.
  std::size_t cache_bytes = 64 * 1024 * 1024;
  /// Per-tenant admission queue bound.
  std::size_t max_queue = 64;
  /// Concurrent requests; 0 = `threads`.
  std::size_t max_concurrent = 0;
  /// Tenant weights for fair queuing (unlisted tenants weigh 1).
  std::vector<std::pair<std::string, double>> tenant_weights;
  /// Cap on distinct tracked tenants (names are client-controlled);
  /// unknown names past the cap share one overflow bucket.
  std::size_t max_tenants = 64;
  /// Deadline applied when a request carries none; 0 = unbounded.
  std::uint64_t default_deadline_ms = 0;
  /// Stop accepting after this many accepted connections; 0 = until
  /// stop(). For tests and bounded smoke runs.
  std::uint64_t max_requests = 0;
  HttpLimits http_limits;
};

/// Request-outcome counters, by taxonomy bucket.
struct ServerStats {
  std::uint64_t accepted = 0;
  std::uint64_t ok = 0;
  std::uint64_t invalid = 0;      // 400/404/405/408/413
  std::uint64_t shed = 0;         // 429 from admission or budgets
  std::uint64_t deadline = 0;     // 504
  std::uint64_t cancelled = 0;    // 499 (client went away)
  std::uint64_t internal = 0;     // 500
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the listener and spawns the accept thread. Throws
  /// Error(kInternal) when the bind fails.
  void start();

  /// The bound port; valid after start().
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Stops accepting, drains in-flight requests, joins the accept thread.
  /// Idempotent.
  void stop();

  /// Blocks until the accept loop exits (stop() from another thread, or
  /// max_requests reached).
  void wait();

  /// True once the accept loop has exited — the CLI's poll for a
  /// max_requests-bounded run, checkable without blocking in wait().
  [[nodiscard]] bool finished() const noexcept {
    return finished_.load(std::memory_order_acquire);
  }

  [[nodiscard]] ServerStats stats() const;
  [[nodiscard]] CacheStats cache_stats() const {
    return graph_.cache_stats();
  }
  [[nodiscard]] SchedulerStats scheduler_stats() const {
    return scheduler_->stats();
  }

 private:
  void accept_loop();
  void handle_connection(const std::shared_ptr<TcpSocket>& socket);
  HttpResponse dispatch(const HttpRequest& request,
                        const std::shared_ptr<TcpSocket>& socket);
  [[nodiscard]] std::string stats_body() const;

  const ServerOptions options_;
  AnalysisGraph graph_;
  ThreadPool pool_;
  std::unique_ptr<AdmissionScheduler> scheduler_;
  TcpListener listener_;
  std::thread accept_thread_;
  std::uint16_t port_ = 0;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<bool> finished_{false};

  mutable Mutex stats_mutex_;
  ServerStats stats_ SAFEOPT_GUARDED_BY(stats_mutex_);

  // Accepted connections whose request is still being read/submitted on the
  // worker pool; the accept loop waits for zero before draining so that
  // max_requests-bounded runs and stop() cover every accepted connection.
  Mutex connections_mutex_;
  std::condition_variable connections_cv_;
  std::size_t open_connections_ SAFEOPT_GUARDED_BY(connections_mutex_) = 0;
};

}  // namespace safeopt::serve

#endif  // SAFEOPT_SERVE_SERVER_H
