// Quickstart: build a fault tree, generate minimal cut sets, quantify the
// hazard three ways, rank failure importances, export the tree — then close
// the paper's loop: parameterize the leaf probabilities and run a safety
// optimization through core::Study, picking the solver and quantification
// engine by registry name.
//
// The system: a pump train whose hazard is "loss of coolant flow". Two
// redundant pumps feed a common discharge valve; a control-room operator can
// also trip the system by mistake, but only while maintenance is in progress
// (an INHIBIT condition — paper §II-D.1).
#include <cstdio>

#include "safeopt/core/study.h"
#include "safeopt/fta/cut_sets.h"
#include "safeopt/fta/fault_tree.h"
#include "safeopt/fta/importance.h"
#include "safeopt/fta/probability.h"
#include "safeopt/ftio/writer.h"

int main() {
  using namespace safeopt;

  // 1. Build the tree bottom-up: leaves first, gates over them.
  fta::FaultTree tree("LossOfCoolantFlow");
  const auto pump_a = tree.add_basic_event("PumpA_fails");
  const auto pump_b = tree.add_basic_event("PumpB_fails");
  const auto valve = tree.add_basic_event("DischargeValve_stuck");
  const auto trip = tree.add_basic_event("OperatorTrip");
  const auto maintenance = tree.add_condition(
      "MaintenanceInProgress", "trip switch exposed only during maintenance");

  const auto both_pumps = tree.add_and("BothPumpsFail", {pump_a, pump_b});
  const auto spurious_trip =
      tree.add_inhibit("SpuriousTrip", trip, maintenance);
  const auto top = tree.add_or("LossOfFlow", {both_pumps, valve,
                                              spurious_trip});
  tree.set_top(top);

  for (const auto& problem : tree.validate()) {
    std::printf("validation problem: %s\n", problem.c_str());
  }

  // 2. Minimal cut sets (paper §II-B) via MOCUS.
  const fta::CutSetCollection mcs = fta::minimal_cut_sets(tree);
  std::printf("minimal cut sets: %s\n", mcs.to_string(tree).c_str());
  std::printf("single points of failure: %zu of %zu cut sets\n",
              mcs.single_points_of_failure().size(), mcs.size());
  // The dual view: keeping any one of these sets healthy keeps the system
  // safe (success-tree / minimal path sets).
  std::printf("minimal path sets: %s\n",
              fta::minimal_path_sets(tree).to_string(tree).c_str());

  // 3. Quantify (paper §II-C): probabilities per demand.
  fta::QuantificationInput input = fta::QuantificationInput::for_tree(tree, 0.0);
  input.set(tree, "PumpA_fails", 3e-3);
  input.set(tree, "PumpB_fails", 3e-3);
  input.set(tree, "DischargeValve_stuck", 1e-4);
  input.set(tree, "OperatorTrip", 2e-3);
  input.set(tree, "MaintenanceInProgress", 0.05);  // constraint probability

  std::printf("P(hazard), rare event approx. (Eq. 1/2): %.6e\n",
              fta::top_event_probability(
                  mcs, input, fta::ProbabilityMethod::kRareEvent));
  std::printf("P(hazard), min-cut upper bound:          %.6e\n",
              fta::top_event_probability(
                  mcs, input, fta::ProbabilityMethod::kMinCutUpperBound));
  std::printf("P(hazard), exact (inclusion-exclusion):  %.6e\n",
              fta::top_event_probability(
                  mcs, input, fta::ProbabilityMethod::kInclusionExclusion));

  // 4. Which failure dominates? (Fussell-Vesely ranking.)
  std::printf("\nimportance ranking (Fussell-Vesely):\n");
  for (const auto& m : fta::importance_ranking(tree, mcs, input)) {
    std::printf("  %-22s FV=%.4f  Birnbaum=%.4e  RAW=%8.2f\n",
                m.event_name.c_str(), m.fussell_vesely, m.birnbaum,
                m.risk_achievement_worth);
  }

  // 5. Export: the textual model format and GraphViz DOT.
  std::printf("\n--- model file ---\n%s",
              ftio::write_fault_tree(tree, input).c_str());
  std::printf("\n--- GraphViz (render with: dot -Tsvg) ---\n%s",
              ftio::to_dot(tree, &input).c_str());

  // 6. Safety optimization (paper §III) through core::Study. Free
  // parameter: the pump inspection interval T (days). Rarer inspections
  // make pump failures likelier (P = 1 − e^{−λT}); each inspection costs
  // money. The hazard probability comes from the *same tree* via
  // parameterized quantification (Eqs. 2–4), so the optimization and the
  // quantification engines below share one model.
  using expr::parameter;
  core::ParameterizedQuantification quant(tree);
  const expr::Expr p_pump = 1.0 - expr::exp(-0.002 * parameter("T"));
  quant.set_event_probability("PumpA_fails", p_pump);
  quant.set_event_probability("PumpB_fails", p_pump);
  quant.set_event_probability("DischargeValve_stuck", expr::constant(1e-4));
  quant.set_event_probability("OperatorTrip", expr::constant(2e-3));
  quant.set_condition_probability("MaintenanceInProgress",
                                  expr::constant(0.05));

  core::CostModel cost_model;
  // One loss-of-flow event costs 2 M$; a year of daily-equivalent
  // inspection effort scales as 500 $/day / T.
  cost_model.add_hazard({"LossOfFlow", quant.hazard_expression(), 2e6});
  cost_model.add_hazard({"InspectionBurden", 500.0 / parameter("T"), 1.0});
  core::ParameterSpace space{
      {"T", 1.0, 365.0, "days", "pump inspection interval"}};

  core::Study study(std::move(cost_model), std::move(space));
  study.hazard_tree("LossOfFlow", tree, quant);
  // 1-D problem: golden-section search, reachable only by registry name.
  const auto optimal = study.solver("golden_section").run();
  std::printf("\noptimal inspection interval: %.1f days "
              "(expected cost %.2f $, P(LossOfFlow) = %.3e)\n",
              optimal.optimization.argmin[0], optimal.cost,
              optimal.hazard_probabilities[0]);

  // 7. Cross-check the optimum with every quantification engine: the
  // cut-set bound, the exact BDD value, and a Monte Carlo estimate all
  // consume the same compiled leaf tapes.
  for (const std::string& engine : core::EngineRegistry::available()) {
    const auto q =
        study.engine(engine).quantify("LossOfFlow", optimal.optimal_parameters);
    std::printf("  P(LossOfFlow) via %-4s = %.6e\n", engine.c_str(),
                q.probability);
  }
  return 0;
}
