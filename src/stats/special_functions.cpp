#include "safeopt/stats/special_functions.h"

#include <cmath>
#include <limits>

#include "safeopt/support/contracts.h"

namespace safeopt::stats {
namespace {

constexpr double kSqrt2 = 1.4142135623730950488016887242097;
constexpr double kInvSqrt2Pi = 0.39894228040143267793994605993438;
constexpr int kMaxIterations = 500;
constexpr double kEps = std::numeric_limits<double>::epsilon();

/// Series expansion for P(a, x), valid (fast-converging) for x < a + 1.
double gamma_p_series(double a, double x) noexcept {
  double term = 1.0 / a;
  double sum = term;
  double ap = a;
  for (int i = 0; i < kMaxIterations; ++i) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::abs(term) < std::abs(sum) * kEps) break;
  }
  return sum * std::exp(-x + a * std::log(x) - log_gamma(a));
}

/// Lentz continued fraction for Q(a, x), valid for x >= a + 1.
double gamma_q_continued_fraction(double a, double x) noexcept {
  constexpr double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIterations; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < kEps) break;
  }
  return h * std::exp(-x + a * std::log(x) - log_gamma(a));
}

/// Lentz continued fraction for the incomplete beta (Press et al. betacf).
double beta_continued_fraction(double a, double b, double x) noexcept {
  constexpr double kTiny = 1e-300;
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::abs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const double dm = static_cast<double>(m);
    const double m2 = 2.0 * dm;
    double aa = dm * (b - dm) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + dm) * (qab + dm) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double normal_pdf(double x) noexcept {
  return kInvSqrt2Pi * std::exp(-0.5 * x * x);
}

double normal_cdf(double x) noexcept { return 0.5 * std::erfc(-x / kSqrt2); }

double normal_survival(double x) noexcept {
  return 0.5 * std::erfc(x / kSqrt2);
}

double normal_quantile(double p) noexcept {
  SAFEOPT_EXPECTS(p > 0.0 && p < 1.0);
  // Acklam's rational approximation, three regimes.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  double x = 0.0;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley refinement step using the exact cdf/pdf.
  const double e = normal_cdf(x) - p;
  const double u = e * std::sqrt(2.0 * 3.14159265358979323846) *
                   std::exp(0.5 * x * x);
  x = x - u / (1.0 + 0.5 * x * u);
  return x;
}

double log_gamma(double x) noexcept {
  SAFEOPT_EXPECTS(x > 0.0);
  return std::lgamma(x);
}

double regularized_gamma_p(double a, double x) noexcept {
  SAFEOPT_EXPECTS(a > 0.0 && x >= 0.0);
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return gamma_p_series(a, x);
  return 1.0 - gamma_q_continued_fraction(a, x);
}

double regularized_gamma_q(double a, double x) noexcept {
  SAFEOPT_EXPECTS(a > 0.0 && x >= 0.0);
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - gamma_p_series(a, x);
  return gamma_q_continued_fraction(a, x);
}

double regularized_beta(double a, double b, double x) noexcept {
  SAFEOPT_EXPECTS(a > 0.0 && b > 0.0);
  SAFEOPT_EXPECTS(x >= 0.0 && x <= 1.0);
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double ln_front = log_gamma(a + b) - log_gamma(a) - log_gamma(b) +
                          a * std::log(x) + b * std::log1p(-x);
  const double front = std::exp(ln_front);
  // Use the symmetry relation to keep the continued fraction convergent.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * beta_continued_fraction(a, b, x) / a;
  }
  return 1.0 - front * beta_continued_fraction(b, a, 1.0 - x) / b;
}

}  // namespace safeopt::stats
