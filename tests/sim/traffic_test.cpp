#include "safeopt/sim/traffic.h"

#include <gtest/gtest.h>

#include <cmath>

#include "safeopt/stats/distribution.h"

namespace safeopt::sim {
namespace {

/// A traffic mix dense enough to give tight statistics in a short horizon.
TrafficConfig busy_config() {
  TrafficConfig config;
  config.horizon_minutes = 60.0 * 24.0 * 40.0;  // 40 simulated days
  config.ohv_arrival_rate_per_min = 0.02;
  config.zone_transit_mean_min = 4.0;
  config.zone_transit_sigma_min = 2.0;
  // Timers short enough that overtime actually happens.
  config.timer1_min = 6.0;
  config.timer2_min = 5.0;
  config.hv_left_lane_rate_per_min = 0.13;
  return config;
}

TEST(TrafficSimulationTest, IsDeterministicPerSeed) {
  const TrafficConfig config = busy_config();
  const TrafficStatistics a = simulate_height_control(config, 1);
  const TrafficStatistics b = simulate_height_control(config, 1);
  EXPECT_EQ(a.ohv_arrivals, b.ohv_arrivals);
  EXPECT_EQ(a.false_alarms, b.false_alarms);
  EXPECT_EQ(a.correct_ohvs_alarmed, b.correct_ohvs_alarmed);
  const TrafficStatistics c = simulate_height_control(config, 2);
  EXPECT_NE(a.ohv_arrivals, c.ohv_arrivals);
}

TEST(TrafficSimulationTest, OvertimeFractionsMatchTruncatedNormalSurvival) {
  // The simulator samples the paper's TruncNormal(4, 2) transit times, so
  // the own-timer overtime fractions must match the analytic survival
  // function — this is the DES cross-validation of P(OT1)(T1), P(OT2)(T2).
  const TrafficConfig config = busy_config();
  const TrafficStatistics stats = simulate_height_control(config, 42);
  ASSERT_GT(stats.ohv_arrivals, 500u);

  const stats::TruncatedNormal transit =
      stats::TruncatedNormal::nonnegative(4.0, 2.0);
  const double expected_ot1 = 1.0 - transit.cdf(config.timer1_min);
  const double expected_ot2 = 1.0 - transit.cdf(config.timer2_min);
  const auto n = static_cast<double>(stats.ohv_arrivals);
  const double tol1 = 5.0 * std::sqrt(expected_ot1 * (1 - expected_ot1) / n);
  const double tol2 = 5.0 * std::sqrt(expected_ot2 * (1 - expected_ot2) / n);
  EXPECT_NEAR(stats.overtime1_fraction(), expected_ot1, tol1);
  EXPECT_NEAR(stats.overtime2_fraction(), expected_ot2, tol2);
}

TEST(TrafficSimulationTest, CorrectOhvAlarmFractionMatchesFig6Formula) {
  // Baseline design, Fig. 6 "without_LB4": with an armed window of T2
  // minutes and HV arrivals at rate λ, a correct OHV alarms with
  // probability ≈ 1 − e^{−λ·T2}.
  TrafficConfig config = busy_config();
  config.timer1_min = 30.0;
  config.timer2_min = 15.6;
  const TrafficStatistics stats = simulate_height_control(config, 7);
  ASSERT_GT(stats.correct_ohvs, 500u);
  const double expected = 1.0 - std::exp(-0.13 * 15.6);  // ≈ 0.868
  EXPECT_NEAR(stats.correct_ohv_alarm_fraction(), expected, 0.03);
  // The paper's headline: >80% of correctly driving OHVs trigger an alarm.
  EXPECT_GT(stats.correct_ohv_alarm_fraction(), 0.8);
}

TEST(TrafficSimulationTest, ThirtyMinuteTimerAlarmsAlmostEveryone) {
  TrafficConfig config = busy_config();
  config.timer1_min = 30.0;
  config.timer2_min = 30.0;
  config.ohv_arrival_rate_per_min = 0.01;
  const TrafficStatistics stats = simulate_height_control(config, 11);
  // Paper: at 30 minutes "more than 95%".
  EXPECT_GT(stats.correct_ohv_alarm_fraction(), 0.95);
}

TEST(TrafficSimulationTest, Lb4VariantCutsAlarmRateToRoughly40Percent) {
  TrafficConfig config = busy_config();
  config.timer1_min = 30.0;
  config.timer2_min = 15.6;
  config.variant = DesignVariant::kWithLB4;
  const TrafficStatistics stats = simulate_height_control(config, 13);
  ASSERT_GT(stats.correct_ohvs, 500u);
  // Paper: "still ring the bell for a very high number (≈ 40%)".
  EXPECT_GT(stats.correct_ohv_alarm_fraction(), 0.30);
  EXPECT_LT(stats.correct_ohv_alarm_fraction(), 0.50);
}

TEST(TrafficSimulationTest, LbAtOdfinalVariantIsDramaticallyBetter) {
  TrafficConfig config = busy_config();
  config.timer1_min = 30.0;
  config.timer2_min = 15.6;
  config.variant = DesignVariant::kLightBarrierAtODfinal;
  const TrafficStatistics stats = simulate_height_control(config, 17);
  ASSERT_GT(stats.correct_ohvs, 500u);
  // Paper: "would lower the false alarm rate to approx. 4% of the OHVs".
  EXPECT_LT(stats.correct_ohv_alarm_fraction(), 0.08);
  EXPECT_GT(stats.correct_ohv_alarm_fraction(), 0.005);
}

TEST(TrafficSimulationTest, NoHighVehiclesMeansNoFalseAlarms) {
  TrafficConfig config = busy_config();
  config.hv_left_lane_rate_per_min = 0.0;
  config.lb_false_detection_rate_per_min = 0.0;
  const TrafficStatistics stats = simulate_height_control(config, 19);
  EXPECT_EQ(stats.false_alarms, 0u);
  EXPECT_EQ(stats.correct_ohvs_alarmed, 0u);
}

TEST(TrafficSimulationTest, WrongRouteOhvsAreStoppedWhenTimersAreLong) {
  TrafficConfig config = busy_config();
  config.timer1_min = 40.0;
  config.timer2_min = 40.0;
  config.ohv_wrong_route_fraction = 0.5;
  config.od_miss_detection_prob = 0.0;
  const TrafficStatistics stats = simulate_height_control(config, 23);
  ASSERT_GT(stats.wrong_ohvs, 100u);
  // With generous timers and perfect sensors every wrong OHV is caught.
  // (A few arrivals near the horizon are still in transit when the
  // simulation ends, so allow that small in-flight tail.)
  EXPECT_EQ(stats.collision_possible, 0u);
  EXPECT_GE(stats.wrong_ohvs_stopped + 5, stats.wrong_ohvs);
}

TEST(TrafficSimulationTest, ShortTimersCreateCollisionExposure) {
  TrafficConfig config = busy_config();
  config.timer1_min = 2.0;  // far below the 4-minute mean transit
  config.timer2_min = 2.0;
  config.ohv_wrong_route_fraction = 0.5;
  const TrafficStatistics stats = simulate_height_control(config, 29);
  ASSERT_GT(stats.wrong_ohvs, 100u);
  // The OT1/OT2 cut sets now fire: unprotected wrong OHVs reach old tubes.
  EXPECT_GT(stats.collision_possible, 0u);
}

TEST(TrafficSimulationTest, MissDetectionsLeakWrongOhvs) {
  TrafficConfig config = busy_config();
  config.timer1_min = 40.0;
  config.timer2_min = 40.0;
  config.ohv_wrong_route_fraction = 0.5;
  config.od_miss_detection_prob = 0.25;
  const TrafficStatistics stats = simulate_height_control(config, 31);
  ASSERT_GT(stats.wrong_ohvs, 200u);
  const double leak_fraction =
      static_cast<double>(stats.collision_possible) /
      static_cast<double>(stats.wrong_ohvs);
  // MD failures (paper §IV-B.1 failure type MD) leak ≈ 25%.
  EXPECT_NEAR(leak_fraction, 0.25, 0.05);
}

TEST(TrafficSimulationTest, LbFalseDetectionsAloneCanArmTheSystem) {
  TrafficConfig config = busy_config();
  config.ohv_arrival_rate_per_min = 1e-9;  // effectively no OHVs
  config.lb_false_detection_rate_per_min = 0.05;
  config.hv_left_lane_rate_per_min = 0.5;
  config.horizon_minutes = 60.0 * 24.0 * 10.0;
  const TrafficStatistics stats = simulate_height_control(config, 37);
  // The FDLBpre·FDLBpost path of the paper's constraint probability:
  // spurious arming plus an HV under ODfinal yields false alarms with no
  // OHV involved at all.
  EXPECT_GT(stats.false_alarms, 0u);
}

}  // namespace
}  // namespace safeopt::sim
