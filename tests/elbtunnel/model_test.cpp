// Consistency tests for the Elbtunnel model: the closed-form §IV formulas,
// the fault-tree derivation through MOCUS + parameterized quantification,
// the exact BDD evaluation, and Monte Carlo sampling must all agree.
#include "safeopt/elbtunnel/elbtunnel_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "safeopt/bdd/bdd.h"
#include "safeopt/fta/cut_sets.h"
#include "safeopt/fta/importance.h"
#include "safeopt/mc/monte_carlo.h"

namespace safeopt::elbtunnel {
namespace {

using expr::ParameterAssignment;

class GridPoint : public ::testing::TestWithParam<std::pair<double, double>> {
 protected:
  ElbtunnelModel model_;
};

TEST_P(GridPoint, TreeDerivationMatchesClosedFormCollision) {
  const auto [t1, t2] = GetParam();
  const ParameterAssignment at{{"T1", t1}, {"T2", t2}};

  const fta::FaultTree tree = model_.collision_tree();
  const core::ParameterizedQuantification q =
      model_.collision_quantification(tree);
  const double from_tree =
      q.hazard_expression(core::HazardFormula::kRareEvent).evaluate(at);
  const double closed_form = model_.collision_probability().evaluate(at);
  // The closed form (paper §IV-B.3) carries the (1 − P(OT1)) disjointness
  // factor; the rare-event tree sum does not. The difference is
  // P(OHVcrit)·P(OT1)·P(OT2), negligible across the optimization box.
  EXPECT_NEAR(from_tree, closed_form, 1e-2 * closed_form + 1e-12)
      << "T1=" << t1 << " T2=" << t2;
}

TEST_P(GridPoint, TreeDerivationMatchesClosedFormFalseAlarm) {
  const auto [t1, t2] = GetParam();
  const ParameterAssignment at{{"T1", t1}, {"T2", t2}};

  const fta::FaultTree tree = model_.false_alarm_tree();
  const core::ParameterizedQuantification q =
      model_.false_alarm_quantification(tree);
  const double from_tree =
      q.hazard_expression(core::HazardFormula::kRareEvent).evaluate(at);
  const double closed_form = model_.false_alarm_probability().evaluate(at);
  // Here the structures are identical (one constrained cut set + residual):
  // exact agreement expected.
  EXPECT_NEAR(from_tree, closed_form, 1e-14) << "T1=" << t1 << " T2=" << t2;
}

TEST_P(GridPoint, BddExactAgreesWithRareEventAtSmallProbabilities) {
  const auto [t1, t2] = GetParam();
  const ParameterAssignment at{{"T1", t1}, {"T2", t2}};

  const fta::FaultTree tree = model_.false_alarm_tree();
  const core::ParameterizedQuantification q =
      model_.false_alarm_quantification(tree);
  const fta::QuantificationInput numeric = q.evaluate(at);
  bdd::CompiledFaultTree compiled = bdd::compile(tree);
  const double exact = compiled.probability(numeric);
  const double rare = fta::top_event_probability(
      fta::minimal_cut_sets(tree), numeric,
      fta::ProbabilityMethod::kRareEvent);
  // Rare-event overestimates, but by < 0.1% at these magnitudes.
  EXPECT_GE(rare, exact - 1e-15);
  EXPECT_NEAR(rare, exact, 1e-3 * exact + 1e-15);
}

INSTANTIATE_TEST_SUITE_P(
    TimerGrid, GridPoint,
    ::testing::Values(std::pair{10.0, 10.0}, std::pair{15.0, 15.0},
                      std::pair{19.0, 15.6}, std::pair{20.0, 18.0},
                      std::pair{30.0, 30.0}, std::pair{40.0, 40.0},
                      std::pair{12.0, 35.0}, std::pair{35.0, 12.0}));

TEST(ElbtunnelTreesTest, CollisionTreeStructureMatchesPaper) {
  const ElbtunnelModel model;
  const fta::FaultTree tree = model.collision_tree();
  EXPECT_TRUE(tree.validate().empty());
  const fta::CutSetCollection mcs = fta::minimal_cut_sets(tree);
  // §IV-B.2: the OT cut sets are single points of failure; with the
  // residual that is three minimal cut sets.
  ASSERT_EQ(mcs.size(), 3u);
  for (const auto& cs : mcs.sets()) {
    EXPECT_TRUE(cs.is_single_point_of_failure());
  }
  EXPECT_NE(mcs.to_string(tree).find("OT1 | OHVcritical"),
            std::string::npos);
}

TEST(ElbtunnelTreesTest, FalseAlarmTreeStructureMatchesPaper) {
  const ElbtunnelModel model;
  const fta::FaultTree tree = model.false_alarm_tree();
  EXPECT_TRUE(tree.validate().empty());
  const fta::CutSetCollection mcs = fta::minimal_cut_sets(tree);
  ASSERT_EQ(mcs.size(), 2u);
  EXPECT_NE(mcs.to_string(tree).find("HVODfinal | ODfinalArmed"),
            std::string::npos);
}

TEST(ElbtunnelTreesTest, HvOdfinalDominatesFalseAlarmImportance) {
  // Paper §IV-B.2: "this will be the dominating factor in the hazard's
  // HAlr overall probability by two orders of magnitude".
  const ElbtunnelModel model;
  const fta::FaultTree tree = model.false_alarm_tree();
  const core::ParameterizedQuantification q =
      model.false_alarm_quantification(tree);
  const ParameterAssignment at{{"T1", 30.0}, {"T2", 30.0}};
  const fta::QuantificationInput numeric = q.evaluate(at);
  const fta::CutSetCollection mcs = fta::minimal_cut_sets(tree);
  const auto ranking = fta::importance_ranking(tree, mcs, numeric);
  ASSERT_EQ(ranking.size(), 2u);
  EXPECT_EQ(ranking[0].event_name, "HVODfinal");
  // Dominance by two orders of magnitude over the residual causes.
  const double hv_contribution = ranking[0].fussell_vesely;
  const double residual_contribution = ranking[1].fussell_vesely;
  EXPECT_GT(hv_contribution / residual_contribution, 5.0);
}

TEST(ElbtunnelMonteCarloTest, SamplingConfirmsFalseAlarmProbability) {
  const ElbtunnelModel model;
  const fta::FaultTree tree = model.false_alarm_tree();
  const core::ParameterizedQuantification q =
      model.false_alarm_quantification(tree);
  // Inflate the constraint to 1 (the Fig. 6 environment) so the event is
  // frequent enough for direct Monte Carlo.
  ParameterAssignment at{{"T1", 30.0}, {"T2", 15.6}};
  fta::QuantificationInput numeric = q.evaluate(at);
  numeric.condition_probability[0] = 1.0;
  bdd::CompiledFaultTree compiled = bdd::compile(tree);
  const double exact = compiled.probability(numeric);
  const auto result = mc::estimate_hazard_probability(tree, numeric, 200000);
  const double sigma = std::sqrt(exact * (1.0 - exact) / 200000.0);
  EXPECT_NEAR(result.estimate, exact, 5.0 * sigma);
}

TEST(ElbtunnelModelTest, ParameterSpaceIsCompactTimers) {
  const ElbtunnelModel model;
  const core::ParameterSpace space = model.parameter_space();
  ASSERT_EQ(space.size(), 2u);
  EXPECT_EQ(space[0].name, "T1");
  EXPECT_EQ(space[1].name, "T2");
  EXPECT_GT(space[0].lower, 0.0);
  EXPECT_LT(space[0].upper, 100.0);
}

TEST(ElbtunnelModelTest, HazardsDependOnTheRightParameters) {
  const ElbtunnelModel model;
  // P(HCol) depends on both timers; P(HAlr)'s T1 dependence enters through
  // P(FDLBpost)(T1) — paper footnote 2's subset structure.
  const auto col_params = model.collision_probability().parameters();
  EXPECT_TRUE(col_params.contains("T1"));
  EXPECT_TRUE(col_params.contains("T2"));
  const auto alr_params = model.false_alarm_probability().parameters();
  EXPECT_TRUE(alr_params.contains("T1"));
  EXPECT_TRUE(alr_params.contains("T2"));
}

TEST(ElbtunnelModelTest, OvertimeProbabilitiesAreDecreasingInTimers) {
  const ElbtunnelModel model;
  const auto p_ot1 = model.p_overtime1();
  double prev = 1.0;
  // Strict decrease across the whole timer box: the erfc-based survival
  // keeps the tail representable even at 40 minutes (18σ, ~1e-72).
  for (double t1 = 5.0; t1 <= 40.0; t1 += 2.5) {
    const double value = p_ot1.evaluate({{"T1", t1}});
    EXPECT_LT(value, prev);
    EXPECT_GT(value, 0.0);
    prev = value;
  }
}

TEST(ElbtunnelModelTest, FalseAlarmGivenOhvIsIncreasingInT2) {
  const ElbtunnelModel model;
  const auto fig6 = model.false_alarm_given_ohv(Design::kBaseline);
  double prev = 0.0;
  for (double t2 = 5.0; t2 <= 25.0; t2 += 2.0) {
    const double value = fig6.evaluate({{"T2", t2}});
    EXPECT_GT(value, prev);
    prev = value;
  }
}

TEST(ElbtunnelModelTest, TrafficConfigMirrorsModelParameters) {
  const ElbtunnelModel model;
  const sim::TrafficConfig config =
      model.traffic_config(19.0, 15.6, Design::kWithLB4);
  EXPECT_DOUBLE_EQ(config.timer1_min, 19.0);
  EXPECT_DOUBLE_EQ(config.timer2_min, 15.6);
  EXPECT_DOUBLE_EQ(config.zone_transit_mean_min,
                   model.parameters().transit_mean_min);
  EXPECT_DOUBLE_EQ(config.hv_left_lane_rate_per_min,
                   model.parameters().hv_left_rate_per_min);
  EXPECT_EQ(config.variant, sim::DesignVariant::kWithLB4);
}

TEST(ElbtunnelModelTest, WithLb4ExpectationLiesBetweenBounds) {
  // E[1 − e^{−λ·min(T2, D)}] must lie between the same expression
  // evaluated at D -> 0 (zero) and at D -> ∞ (the baseline 1 − e^{−λT2}).
  const ElbtunnelModel model;
  const auto lb4 = model.false_alarm_given_ohv(Design::kWithLB4);
  const auto baseline = model.false_alarm_given_ohv(Design::kBaseline);
  for (double t2 = 5.0; t2 <= 30.0; t2 += 5.0) {
    const ParameterAssignment at{{"T2", t2}};
    EXPECT_GT(lb4.evaluate(at), 0.0);
    EXPECT_LT(lb4.evaluate(at), baseline.evaluate(at));
  }
}

}  // namespace
}  // namespace safeopt::elbtunnel
