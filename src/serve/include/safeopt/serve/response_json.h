// The machine-readable result schemas, shared byte-for-byte between the
// safeopt CLI's --json output and the serve HTTP bodies. There is exactly
// one renderer per schema; the CLI prints the returned string, the server
// sends it, so "bitwise-identical to the offline CLI" holds by
// construction — a schema change in one surface is a change in both.
#ifndef SAFEOPT_SERVE_RESPONSE_JSON_H
#define SAFEOPT_SERVE_RESPONSE_JSON_H

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "safeopt/core/quantification_engine.h"
#include "safeopt/expr/expr.h"

namespace safeopt::serve {

/// Hazard name → its quantification, in document declaration order.
using HazardResults =
    std::vector<std::pair<std::string, core::QuantificationResult>>;

/// The `  "hazards": [...],\n` block common to quantify/optimize output:
/// probability, estimator diagnostics (ci95/halfwidth/trials/ess/
/// converged/aborted), degradation notes, preprocessing summary.
[[nodiscard]] std::string render_hazard_results(const HazardResults& results);

/// `safeopt quantify --json` for a parameterized model.
[[nodiscard]] std::string render_quantify_response(
    std::string_view model, std::string_view engine,
    const expr::ParameterAssignment& at, const HazardResults& results,
    double cost);

/// `safeopt quantify --json` for a constant (parameter-less) model.
[[nodiscard]] std::string render_constant_quantify_response(
    std::string_view model, std::string_view engine,
    const HazardResults& results, double cost);

/// `safeopt run --json`.
[[nodiscard]] std::string render_optimize_response(
    std::string_view model, std::string_view solver, std::string_view engine,
    bool converged, std::size_t evaluations,
    const expr::ParameterAssignment& optimum, const HazardResults& results,
    double cost);

/// `safeopt validate --json`.
[[nodiscard]] std::string render_validate_response(
    std::string_view model, std::size_t parameters, std::size_t trees,
    std::size_t hazards, const std::vector<std::string>& problems);

/// The structured failure object both surfaces emit:
/// {"error": {"category": ..., "message": ...}}.
[[nodiscard]] std::string render_error_response(std::string_view category,
                                                std::string_view message);

}  // namespace safeopt::serve

#endif  // SAFEOPT_SERVE_RESPONSE_JSON_H
