#include "safeopt/stats/estimators.h"

#include <algorithm>
#include <cmath>

#include "safeopt/stats/distribution.h"
#include "safeopt/stats/special_functions.h"
#include "safeopt/support/contracts.h"

namespace safeopt::stats {
namespace {

double z_for_level(double level) {
  SAFEOPT_EXPECTS(level > 0.0 && level < 1.0);
  return normal_quantile(0.5 + 0.5 * level);
}

}  // namespace

void RunningMoments::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningMoments::variance() const noexcept {
  SAFEOPT_EXPECTS(n_ >= 2);
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningMoments::stddev() const noexcept {
  return std::sqrt(variance());
}

double RunningMoments::standard_error() const noexcept {
  return stddev() / std::sqrt(static_cast<double>(n_));
}

ConfidenceInterval RunningMoments::mean_confidence(double level) const {
  SAFEOPT_EXPECTS(n_ >= 2);
  const double z = z_for_level(level);
  const double half = z * standard_error();
  return {mean_ - half, mean_ + half};
}

void RunningMoments::merge(const RunningMoments& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

void ProportionEstimator::add(bool success) noexcept {
  ++n_;
  if (success) ++k_;
}

double ProportionEstimator::estimate() const noexcept {
  SAFEOPT_EXPECTS(n_ > 0);
  return static_cast<double>(k_) / static_cast<double>(n_);
}

ConfidenceInterval ProportionEstimator::wilson(double level) const {
  SAFEOPT_EXPECTS(n_ > 0);
  const double z = z_for_level(level);
  const auto n = static_cast<double>(n_);
  const double p = estimate();
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  return {std::max(0.0, center - half), std::min(1.0, center + half)};
}

ConfidenceInterval ProportionEstimator::wald(double level) const {
  SAFEOPT_EXPECTS(n_ > 0);
  const double z = z_for_level(level);
  const auto n = static_cast<double>(n_);
  const double p = estimate();
  const double half = z * std::sqrt(p * (1.0 - p) / n);
  return {std::max(0.0, p - half), std::min(1.0, p + half)};
}

double ks_statistic(std::span<const double> sample,
                    const Distribution& reference) {
  SAFEOPT_EXPECTS(!sample.empty());
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  const auto n = static_cast<double>(sorted.size());
  double d = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const double f = reference.cdf(sorted[i]);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    d = std::max(d, std::max(std::abs(f - lo), std::abs(hi - f)));
  }
  return d;
}

double ks_critical_value_1pct(std::size_t n) noexcept {
  return 1.63 / std::sqrt(static_cast<double>(n));
}

}  // namespace safeopt::stats
