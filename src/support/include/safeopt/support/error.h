// Structured error taxonomy for the execution layer. Every abort path that
// crosses a module boundary (BDD node budget, deadline expiry, cooperative
// cancellation, malformed input) throws safeopt::Error with a machine-readable
// category, so callers — Study::quantify's degradation chain, the CLI's exit
// codes, the future `safeopt serve` front end — can react to *what kind* of
// failure occurred without parsing message text. Pre-existing validation
// throws (std::invalid_argument, ftio::ParseError) are left in place and
// mapped to kInvalidInput at the boundary that cares (see safeopt_cli.cpp).
#ifndef SAFEOPT_SUPPORT_ERROR_H
#define SAFEOPT_SUPPORT_ERROR_H

#include <stdexcept>
#include <string>
#include <string_view>

namespace safeopt {

/// What failed, coarsely — the contract is that a category is stable and
/// machine-readable while the message is free-form and human-readable.
enum class ErrorCategory : unsigned char {
  /// The request itself is unusable (bad document, unknown option, ...).
  kInvalidInput,
  /// A resource budget was exhausted (BDD node budget, memory caps).
  kResourceExhausted,
  /// A wall-clock deadline expired before the operation finished.
  kDeadlineExceeded,
  /// The caller cancelled the operation via a CancellationToken.
  kCancelled,
  /// A bug or an unclassified failure — never an expected outcome.
  kInternal,
};

/// The snake_case wire name of a category ("resource_exhausted", ...), as
/// printed in `safeopt --json` error objects and CLI diagnostics.
[[nodiscard]] std::string_view category_name(ErrorCategory category) noexcept;

/// The structured exception of the execution layer. `what()` carries the
/// human-readable story (including partial statistics where the thrower has
/// them); `category()` is the machine-readable classification.
class Error : public std::runtime_error {
 public:
  Error(ErrorCategory category, const std::string& what)
      : std::runtime_error(what), category_(category) {}

  [[nodiscard]] ErrorCategory category() const noexcept { return category_; }

  /// True for the categories the degradation chain may recover from by
  /// switching engines: a budget or deadline failure is a property of the
  /// engine/workload pairing, not of the request. Cancellation and invalid
  /// input are final — the caller asked to stop, or the request is broken.
  [[nodiscard]] bool recoverable() const noexcept {
    return category_ == ErrorCategory::kResourceExhausted ||
           category_ == ErrorCategory::kDeadlineExceeded;
  }

 private:
  ErrorCategory category_;
};

}  // namespace safeopt

#endif  // SAFEOPT_SUPPORT_ERROR_H
