// Risk trade-off curves. The paper (§IV-B.1): "It is clear that it is not
// possible to minimize both risks at the same time." The trade-off curve
// makes that opposition quantitative: sweeping the cost ratio between two
// hazards and re-optimizing traces the achievable (P(H_a), P(H_b)) frontier,
// showing what any choice of weights can and cannot buy.
#ifndef SAFEOPT_CORE_TRADEOFF_H
#define SAFEOPT_CORE_TRADEOFF_H

#include <vector>

#include "safeopt/core/parameter_space.h"
#include "safeopt/core/safety_optimizer.h"

namespace safeopt::core {

/// One point of the frontier: the cost ratio used, the optimal
/// configuration found, and both hazard probabilities there.
struct TradeoffPoint {
  double cost_ratio = 1.0;  // Cost_{H_a} / Cost_{H_b}
  std::vector<double> parameters;
  double probability_a = 0.0;
  double probability_b = 0.0;
};

/// Sweeps Cost_{H_a}/Cost_{H_b} over `steps` logarithmically spaced ratios
/// in [ratio_lo, ratio_hi] and optimizes each weighted model with the named
/// registry solver. Preconditions: both hazards exist in `model`,
/// 0 < ratio_lo < ratio_hi, steps >= 2.
[[nodiscard]] std::vector<TradeoffPoint> tradeoff_curve(
    const CostModel& model, const ParameterSpace& space,
    std::string_view hazard_a, std::string_view hazard_b, double ratio_lo,
    double ratio_hi, std::size_t steps, std::string_view solver,
    const opt::SolverConfig& config = {});

/// Deprecated-enum shim; bit-identical to the historic dispatch.
[[nodiscard]] std::vector<TradeoffPoint> tradeoff_curve(
    const CostModel& model, const ParameterSpace& space,
    std::string_view hazard_a, std::string_view hazard_b, double ratio_lo,
    double ratio_hi, std::size_t steps,
    Algorithm algorithm = Algorithm::kNelderMead);

}  // namespace safeopt::core

#endif  // SAFEOPT_CORE_TRADEOFF_H
