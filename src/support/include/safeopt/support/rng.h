// Deterministic pseudo-random number generation for every stochastic component
// in safeopt (Monte Carlo estimation, discrete-event simulation, stochastic
// optimizers). We implement xoshiro256++ seeded through splitmix64 rather than
// relying on std::mt19937 so that results are reproducible bit-for-bit across
// standard libraries, which the test suite and the experiment harness rely on.
#ifndef SAFEOPT_SUPPORT_RNG_H
#define SAFEOPT_SUPPORT_RNG_H

#include <array>
#include <cstdint>
#include <limits>

namespace safeopt {

/// splitmix64: used to expand a single 64-bit seed into generator state.
/// Reference: Sebastiano Vigna, http://prng.di.unimi.it/splitmix64.c
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t operator()() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256++ 1.0: fast, high-quality 64-bit generator with 256-bit state.
/// Satisfies std::uniform_random_bit_generator.
/// Reference: Blackman & Vigna, http://prng.di.unimi.it/xoshiro256plusplus.c
class Xoshiro256pp {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from one 64-bit seed via splitmix64.
  explicit constexpr Xoshiro256pp(std::uint64_t seed = 0x5eed5eed5eed5eedULL) noexcept
      : state_{} {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm();
  }

  constexpr std::uint64_t operator()() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Advances the generator 2^128 steps; use to derive independent streams
  /// (e.g. one per simulated component) from a common seed.
  constexpr void jump() noexcept {
    constexpr std::array<std::uint64_t, 4> kJump = {
        0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
        0x39abdc4529b1661cULL};
    std::array<std::uint64_t, 4> acc{};
    for (std::uint64_t word : kJump) {
      for (int bit = 0; bit < 64; ++bit) {
        if ((word & (1ULL << bit)) != 0) {
          for (std::size_t i = 0; i < acc.size(); ++i) acc[i] ^= state_[i];
        }
        (*this)();
      }
    }
    state_ = acc;
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_;
};

/// Default generator type used throughout safeopt.
using Rng = Xoshiro256pp;

/// Uniform double in [0, 1) with 53 random bits (never returns 1.0).
[[nodiscard]] inline double uniform01(Rng& rng) noexcept {
  return static_cast<double>(rng() >> 11) * 0x1.0p-53;
}

/// Uniform double in [lo, hi).
[[nodiscard]] double uniform(Rng& rng, double lo, double hi) noexcept;

/// Bernoulli trial with success probability p (clamped to [0,1]).
[[nodiscard]] bool bernoulli(Rng& rng, double p) noexcept;

/// Uniform integer in [0, n). Precondition: n > 0.
[[nodiscard]] std::uint64_t uniform_index(Rng& rng, std::uint64_t n) noexcept;

}  // namespace safeopt

#endif  // SAFEOPT_SUPPORT_RNG_H
