// Experiment: the §IV-C.2 results table — the paper's reported outcomes of
// safety optimization on the Elbtunnel height control, paper value against
// measured value:
//   * optimal timer runtimes               ~19 / ~15.6 min
//   * false-alarm risk improvement         about 10%
//   * collision risk change                less than 0.1%
//   * timer 1 more conservative than timer 2 (flat cost along T1)
#include <cmath>
#include <cstdio>

#include "safeopt/core/sensitivity.h"
#include "safeopt/elbtunnel/elbtunnel_model.h"

int main() {
  using namespace safeopt;
  const elbtunnel::ElbtunnelModel model;
  const core::SafetyOptimizer optimizer = model.optimizer();

  const auto optimal =
      optimizer.optimize(core::Algorithm::kMultiStartNelderMead);
  const auto report = optimizer.compare(model.engineers_guess(), optimal);

  std::printf("=== §IV-C.2: safety-optimization results ===\n\n");
  std::printf("%-34s %14s %14s\n", "quantity", "paper", "measured");
  std::printf("%-34s %14s %14.2f\n", "optimal T1 [min]", "~19",
              optimal.optimization.argmin[0]);
  std::printf("%-34s %14s %14.2f\n", "optimal T2 [min]", "~15.6",
              optimal.optimization.argmin[1]);
  std::printf("%-34s %14s %14.5f\n", "cost at optimum",
              "0.0046..0.0047", optimal.cost);
  std::printf("%-34s %14s %13.2f%%\n", "false-alarm risk change", "~-10%",
              100.0 * report.hazards[1].relative_change);
  std::printf("%-34s %14s %13.4f%%\n", "collision risk change", "< 0.1%",
              100.0 * report.hazards[0].relative_change);

  // Flatness asymmetry: cost increase for +5 min on each timer.
  const auto cost = model.cost_model().cost_expression();
  const auto at = optimal.optimal_parameters;
  auto t1_up = at;
  t1_up.set("T1", at.get("T1") + 5.0);
  auto t2_up = at;
  t2_up.set("T2", at.get("T2") + 5.0);
  const double base = cost.evaluate(at);
  std::printf("%-34s %14s %14.3e\n", "cost(+5 min on T1) - cost*", "~0",
              cost.evaluate(t1_up) - base);
  std::printf("%-34s %14s %14.3e\n", "cost(+5 min on T2) - cost*",
              "dominant", cost.evaluate(t2_up) - base);

  std::printf("\nabsolute risks:\n");
  for (const auto& hazard : report.hazards) {
    std::printf("  %-5s baseline %.6e  ->  optimal %.6e\n",
                hazard.hazard.c_str(), hazard.baseline_probability,
                hazard.optimal_probability);
  }

  std::printf("\nper-parameter sensitivities at the optimum:\n");
  for (const auto& s : core::sensitivity_analysis(
           model.cost_model(), model.parameter_space(),
           optimal.optimal_parameters)) {
    std::printf("  d(cost)/d%-3s = %+12.4e   dP(HCol)/d%-3s = %+12.4e   "
                "dP(HAlr)/d%-3s = %+12.4e\n",
                s.parameter.c_str(), s.cost_gradient, s.parameter.c_str(),
                s.hazard_gradients[0], s.parameter.c_str(),
                s.hazard_gradients[1]);
  }

  std::printf("\nsolver agreement on the optimum:\n");
  std::printf("%-26s %8s %8s %12s %12s\n", "algorithm", "T1*", "T2*", "cost",
              "evaluations");
  for (const auto algorithm :
       {core::Algorithm::kGridSearch, core::Algorithm::kNelderMead,
        core::Algorithm::kMultiStartNelderMead,
        core::Algorithm::kHookeJeeves, core::Algorithm::kCoordinateDescent,
        core::Algorithm::kDifferentialEvolution}) {
    const auto result = optimizer.optimize(algorithm);
    std::printf("%-26s %8.2f %8.2f %12.7f %12zu\n",
                std::string(core::to_string(algorithm)).c_str(),
                result.optimization.argmin[0], result.optimization.argmin[1],
                result.cost, result.optimization.evaluations);
  }
  return 0;
}
