#include "safeopt/bdd/bdd.h"

#include <algorithm>
#include <numeric>

#include "safeopt/support/contracts.h"
#include "safeopt/support/error.h"
#include "safeopt/support/execution.h"
#include "safeopt/support/strings.h"

namespace safeopt::bdd {
namespace {

/// ITE calls between two deadline/cancellation polls. Coarse enough that the
/// poll (an atomic load plus a clock read) is invisible next to ~1k hash
/// probes, fine enough that a runaway construction aborts within
/// milliseconds.
constexpr std::size_t kControlCheckMask = 1023;

/// 64-bit mix (splitmix64 finalizer) for hash combining.
std::uint64_t mix64(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Smallest power of two >= n (and >= 1).
std::size_t round_up_pow2(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

std::size_t BddManager::NodeKeyHash::operator()(
    const NodeKey& k) const noexcept {
  std::uint64_t h = k.var;
  h = mix64(h ^ (static_cast<std::uint64_t>(k.low) << 32 | k.high));
  return static_cast<std::size_t>(h);
}

BddManager::BddManager(std::uint32_t variable_count)
    : BddManager(variable_count, BddOptions{}) {}

BddManager::BddManager(std::uint32_t variable_count, const BddOptions& options)
    : variable_count_(variable_count),
      node_budget_(options.node_budget),
      control_(options.control) {
  // Terminals occupy slots 0 (false) and 1 (true); their var field is a
  // sentinel one past the last real variable so top_var comparisons work.
  nodes_.push_back({variable_count_, kFalse, kFalse});
  nodes_.push_back({variable_count_, kTrue, kTrue});
  unique_table_.reserve(std::max<std::size_t>(options.initial_table_size, 16));
  const std::size_t slots =
      round_up_pow2(std::max<std::size_t>(options.cache_size, 16));
  ite_cache_.assign(slots, IteSlot{});
  ite_mask_ = slots - 1;
  stats_.cache_slots = slots;
  stats_.node_count = nodes_.size();
  stats_.peak_node_count = nodes_.size();
}

BddRef BddManager::make_node(std::uint32_t var, BddRef low, BddRef high) {
  if (low == high) return low;  // reduction rule
  const NodeKey key{var, low, high};
  const auto it = unique_table_.find(key);
  if (it != unique_table_.end()) return it->second;
  const auto ref = static_cast<BddRef>(nodes_.size());
  nodes_.push_back({var, low, high});
  unique_table_.emplace(key, ref);
  // No GC: nodes are only ever created, so live == peak by construction.
  stats_.node_count = nodes_.size();
  stats_.peak_node_count = nodes_.size();
  // Budget check after the counters: the manager stays consistent (the node
  // exists, statistics() holds), so the caller gets a partial-but-valid
  // picture in the message and can still inspect the manager afterwards.
  if (node_budget_ != 0 && stats_.decision_node_count() > node_budget_) {
    throw Error(
        ErrorCategory::kResourceExhausted,
        concat("BDD node budget exceeded: ",
               std::to_string(stats_.decision_node_count()),
               " decision nodes (budget ", std::to_string(node_budget_),
               ") after ", std::to_string(stats_.ite_calls), " ITE calls"));
  }
  return ref;
}

BddRef BddManager::variable(std::uint32_t var) {
  SAFEOPT_EXPECTS(var < variable_count_);
  return make_node(var, kFalse, kTrue);
}

const BddStatistics& BddManager::statistics() const noexcept {
  // Documented invariants: terminals are counted (node_count >= 2), and
  // without garbage collection the live node count is the peak node count.
  SAFEOPT_ASSERT(stats_.node_count >= 2);
  SAFEOPT_ASSERT(stats_.node_count == nodes_.size());
  SAFEOPT_ASSERT(stats_.peak_node_count == stats_.node_count);
  return stats_;
}

std::uint32_t BddManager::top_var(BddRef f, BddRef g, BddRef h) const {
  std::uint32_t var = variable_count_;
  for (const BddRef r : {f, g, h}) {
    if (!is_terminal(r)) var = std::min(var, nodes_[r].var);
  }
  return var;
}

BddRef BddManager::cofactor(BddRef f, std::uint32_t var, bool value) const {
  if (is_terminal(f) || nodes_[f].var != var) return f;
  return value ? nodes_[f].high : nodes_[f].low;
}

BddRef BddManager::ite(BddRef f, BddRef g, BddRef h) {
  ++stats_.ite_calls;
  if (control_ != nullptr && (stats_.ite_calls & kControlCheckMask) == 0) {
    control_->check("BDD construction");
  }
  // Terminal short-circuits.
  if (f == kTrue) return g;
  if (f == kFalse) return h;
  if (g == h) return g;
  if (g == kTrue && h == kFalse) return f;

  // Direct-mapped cache probe. A mismatching occupied slot is a miss (the
  // slot will be overwritten below); results are identical at any geometry
  // because ITE is deterministic — the cache only saves recomputation.
  const std::size_t slot_index = static_cast<std::size_t>(
      mix64(mix64(static_cast<std::uint64_t>(f) << 32 | g) ^ h) & ite_mask_);
  IteSlot& slot = ite_cache_[slot_index];
  if (slot.f == f && slot.g == g && slot.h == h) {
    ++stats_.cache_hits;
    return slot.result;
  }

  const std::uint32_t v = top_var(f, g, h);
  SAFEOPT_ASSERT(v < variable_count_);
  const BddRef low =
      ite(cofactor(f, v, false), cofactor(g, v, false), cofactor(h, v, false));
  const BddRef high =
      ite(cofactor(f, v, true), cofactor(g, v, true), cofactor(h, v, true));
  const BddRef result = make_node(v, low, high);
  if (slot.f != IteSlot::kEmpty) ++stats_.cache_evictions;
  slot = IteSlot{f, g, h, result};
  return result;
}

BddRef BddManager::apply_and(BddRef f, BddRef g) { return ite(f, g, kFalse); }
BddRef BddManager::apply_or(BddRef f, BddRef g) { return ite(f, kTrue, g); }
BddRef BddManager::apply_not(BddRef f) { return ite(f, kFalse, kTrue); }
BddRef BddManager::apply_xor(BddRef f, BddRef g) {
  return ite(f, apply_not(g), g);
}

BddRef BddManager::at_least(std::vector<BddRef> items, std::uint32_t k) {
  SAFEOPT_EXPECTS(k >= 1 && k <= items.size());
  // th(i, j): at least j of items[i..] are true.
  // th(i, 0) = 1; th(n, j>0) = 0;
  // th(i, j) = (items[i] AND th(i+1, j-1)) OR th(i+1, j).
  const std::size_t n = items.size();
  std::vector<std::vector<BddRef>> th(n + 1,
                                      std::vector<BddRef>(k + 1, kFalse));
  for (std::size_t i = 0; i <= n; ++i) th[i][0] = kTrue;
  for (std::size_t i = n; i-- > 0;) {
    for (std::uint32_t j = 1; j <= k; ++j) {
      const BddRef with = apply_and(items[i], th[i + 1][j - 1]);
      th[i][j] = apply_or(with, th[i + 1][j]);
    }
  }
  return th[0][k];
}

bool BddManager::evaluate(BddRef f,
                          const std::vector<bool>& assignment) const {
  SAFEOPT_EXPECTS(assignment.size() == variable_count_);
  while (!is_terminal(f)) {
    const Node& node = nodes_[f];
    f = assignment[node.var] ? node.high : node.low;
  }
  return f == kTrue;
}

double BddManager::probability(BddRef f,
                               const std::vector<double>& probabilities) {
  SAFEOPT_EXPECTS(probabilities.size() == variable_count_);
  // Shannon decomposition, memoized per call (probabilities vary per call).
  std::unordered_map<BddRef, double> memo;
  const auto recurse = [&](auto&& self, BddRef r) -> double {
    if (r == kFalse) return 0.0;
    if (r == kTrue) return 1.0;
    const auto it = memo.find(r);
    if (it != memo.end()) return it->second;
    const Node& node = nodes_[r];
    const double p = probabilities[node.var];
    const double result =
        p * self(self, node.high) + (1.0 - p) * self(self, node.low);
    memo.emplace(r, result);
    return result;
  };
  return recurse(recurse, f);
}

std::size_t BddManager::size(BddRef f) const {
  std::vector<BddRef> stack{f};
  std::unordered_map<BddRef, bool> seen;
  std::size_t count = 0;
  while (!stack.empty()) {
    const BddRef r = stack.back();
    stack.pop_back();
    if (seen[r]) continue;
    seen[r] = true;
    ++count;
    if (!is_terminal(r)) {
      stack.push_back(nodes_[r].low);
      stack.push_back(nodes_[r].high);
    }
  }
  return count;
}

std::uint32_t BddManager::node_var(BddRef f) const {
  SAFEOPT_EXPECTS(f < nodes_.size());
  return nodes_[f].var;
}

BddRef BddManager::node_low(BddRef f) const {
  SAFEOPT_EXPECTS(!is_terminal(f) && f < nodes_.size());
  return nodes_[f].low;
}

BddRef BddManager::node_high(BddRef f) const {
  SAFEOPT_EXPECTS(!is_terminal(f) && f < nodes_.size());
  return nodes_[f].high;
}

// ------------------------------------------------------------- compilation

namespace {

/// Leaf -> BDD-variable maps. kDfs numbers leaves by DFS first-visit order
/// (keeps structurally related variables adjacent); kWeight visits every
/// gate's children smallest-subtree-first, clustering small cones at low
/// indices before wide subtrees spread out.
struct VariableOrder {
  std::vector<std::uint32_t> var_of_basic;      // by BasicEventOrdinal
  std::vector<std::uint32_t> var_of_condition;  // by ConditionOrdinal
  std::uint32_t count = 0;
};

/// Subtree leaf count per node (DAG-shared subtrees weigh once per
/// reference), the kWeight visit key.
std::vector<std::size_t> subtree_weights(const fta::FaultTree& tree) {
  std::vector<std::size_t> weight(tree.node_count(), 0);
  const auto visit = [&](auto&& self, fta::NodeId id) -> std::size_t {
    if (weight[id] != 0) return weight[id];
    std::size_t w = 1;
    if (tree.kind(id) == fta::NodeKind::kGate) {
      w = 0;
      for (const fta::NodeId child : tree.children(id)) w += self(self, child);
      w = std::max<std::size_t>(w, 1);
    }
    weight[id] = w;
    return w;
  };
  (void)visit(visit, tree.top());
  return weight;
}

VariableOrder ordered_variables(const fta::FaultTree& tree,
                                VariableOrdering ordering) {
  VariableOrder order;
  order.var_of_basic.assign(tree.basic_event_count(), UINT32_MAX);
  order.var_of_condition.assign(tree.condition_count(), UINT32_MAX);
  std::vector<std::size_t> weight;
  if (ordering == VariableOrdering::kWeight) weight = subtree_weights(tree);
  // First-visit semantics: re-entering a gate through a second parent can
  // only reach leaves that are already numbered, so shared gates are pruned
  // after one expansion. Without this the traversal walks every *path*
  // through the DAG — combinatorial on heavily shared graphs like a
  // normalized k-of-n network.
  std::vector<bool> expanded(tree.node_count(), false);
  const auto visit = [&](auto&& self, fta::NodeId id) -> void {
    switch (tree.kind(id)) {
      case fta::NodeKind::kBasicEvent: {
        auto& slot = order.var_of_basic[tree.basic_event_ordinal(id)];
        if (slot == UINT32_MAX) slot = order.count++;
        break;
      }
      case fta::NodeKind::kCondition: {
        auto& slot = order.var_of_condition[tree.condition_ordinal(id)];
        if (slot == UINT32_MAX) slot = order.count++;
        break;
      }
      case fta::NodeKind::kGate: {
        if (expanded[id]) break;
        expanded[id] = true;
        const std::span<const fta::NodeId> children = tree.children(id);
        if (ordering == VariableOrdering::kWeight) {
          std::vector<fta::NodeId> by_weight(children.begin(), children.end());
          std::stable_sort(by_weight.begin(), by_weight.end(),
                           [&](fta::NodeId a, fta::NodeId b) {
                             return weight[a] < weight[b];
                           });
          for (const fta::NodeId child : by_weight) self(self, child);
        } else {
          for (const fta::NodeId child : children) self(self, child);
        }
        break;
      }
    }
  };
  visit(visit, tree.top());
  // Leaves unreachable from the top still need variables (validate() flags
  // them, but compilation must not crash).
  for (auto& slot : order.var_of_basic) {
    if (slot == UINT32_MAX) slot = order.count++;
  }
  for (auto& slot : order.var_of_condition) {
    if (slot == UINT32_MAX) slot = order.count++;
  }
  return order;
}

/// Exactly-one over already-compiled child functions (the FaultTree XOR
/// semantics; n-ary parity would be wrong for n > 2).
BddRef exactly_one(BddManager& manager, const std::vector<BddRef>& items) {
  BddRef result = kFalse;
  for (std::size_t i = 0; i < items.size(); ++i) {
    BddRef only_i = items[i];
    for (std::size_t j = 0; j < items.size(); ++j) {
      if (j != i) only_i = manager.apply_and(only_i, manager.apply_not(items[j]));
    }
    result = manager.apply_or(result, only_i);
  }
  return result;
}

}  // namespace

double CompiledFaultTree::probability(const fta::QuantificationInput& input) {
  SAFEOPT_EXPECTS(input.basic_event_probability.size() == basic_event_count);
  SAFEOPT_EXPECTS(input.condition_probability.size() == condition_count);
  std::vector<double> probs(manager.variable_count(), 0.0);
  for (std::uint32_t i = 0; i < basic_event_count; ++i) {
    probs[var_of_basic_event[i]] = input.basic_event_probability[i];
  }
  for (std::uint32_t i = 0; i < condition_count; ++i) {
    probs[var_of_condition[i]] = input.condition_probability[i];
  }
  return manager.probability(root, probs);
}

CompiledFaultTree compile(const fta::FaultTree& tree,
                          const BddOptions& options) {
  SAFEOPT_EXPECTS(tree.has_top());
  const VariableOrder order = ordered_variables(tree, options.ordering);
  CompiledFaultTree compiled{BddManager(order.count, options), kFalse,
                             static_cast<std::uint32_t>(
                                 tree.basic_event_count()),
                             static_cast<std::uint32_t>(
                                 tree.condition_count()),
                             order.var_of_basic, order.var_of_condition};
  BddManager& manager = compiled.manager;

  std::unordered_map<fta::NodeId, BddRef> memo;
  const auto build = [&](auto&& self, fta::NodeId id) -> BddRef {
    const auto it = memo.find(id);
    if (it != memo.end()) return it->second;
    BddRef result = kFalse;
    switch (tree.kind(id)) {
      case fta::NodeKind::kBasicEvent:
        result = manager.variable(
            order.var_of_basic[tree.basic_event_ordinal(id)]);
        break;
      case fta::NodeKind::kCondition:
        result = manager.variable(
            order.var_of_condition[tree.condition_ordinal(id)]);
        break;
      case fta::NodeKind::kGate: {
        // Per-gate poll: an expired deadline aborts before the next gate's
        // ITE cascade even starts, independent of the in-ITE poll period.
        if (options.control != nullptr) {
          options.control->check("BDD compilation");
        }
        std::vector<BddRef> children;
        children.reserve(tree.children(id).size());
        for (const fta::NodeId child : tree.children(id)) {
          children.push_back(self(self, child));
        }
        // AND/OR chains fold right-to-left: children earlier in the gate
        // also come earlier in the variable order (DFS numbering), so each
        // step prepends *above* the accumulated diagram instead of
        // rewriting its tail — O(|child|) fresh nodes per step where a
        // left fold creates a quadratic trail of dead intermediates (there
        // is no GC; every node ever made stays in the manager). The final
        // diagram is the same either way — ROBDDs are canonical.
        switch (tree.gate_type(id)) {
          case fta::GateType::kAnd:
          case fta::GateType::kInhibit: {
            result = kTrue;
            for (std::size_t i = children.size(); i-- > 0;) {
              result = manager.apply_and(children[i], result);
            }
            break;
          }
          case fta::GateType::kOr: {
            result = kFalse;
            for (std::size_t i = children.size(); i-- > 0;) {
              result = manager.apply_or(children[i], result);
            }
            break;
          }
          case fta::GateType::kKofN:
            result = manager.at_least(children, tree.vote_threshold(id));
            break;
          case fta::GateType::kXor:
            result = exactly_one(manager, children);
            break;
        }
        break;
      }
    }
    memo.emplace(id, result);
    return result;
  };
  compiled.root = build(build, tree.top());
  return compiled;
}

fta::CutSetCollection minimal_cut_sets_bdd(const fta::FaultTree& tree) {
  SAFEOPT_EXPECTS(tree.has_top());
  // Coherence check: Rauzy's decomposition below assumes a monotone
  // structure function; XOR gates break that.
  for (fta::NodeId id = 0; id < tree.node_count(); ++id) {
    if (tree.kind(id) == fta::NodeKind::kGate) {
      SAFEOPT_EXPECTS(tree.gate_type(id) != fta::GateType::kXor);
    }
  }
  CompiledFaultTree compiled = compile(tree);
  BddManager& manager = compiled.manager;

  using VarSet = std::vector<std::uint32_t>;  // sorted variable indices
  std::unordered_map<BddRef, std::vector<VarSet>> memo;

  const auto subsumes = [](const VarSet& small, const VarSet& big) {
    return std::includes(big.begin(), big.end(), small.begin(), small.end());
  };

  // Rauzy: MCS(node v) = MCS(low) ∪ { {v} ∪ s : s ∈ MCS(high), not already
  // covered by MCS(low) }.
  const auto decompose = [&](auto&& self, BddRef ref) -> std::vector<VarSet> {
    if (ref == kFalse) return {};
    if (ref == kTrue) return {VarSet{}};
    const auto it = memo.find(ref);
    if (it != memo.end()) return it->second;
    const std::uint32_t v = manager.node_var(ref);
    const std::vector<VarSet> low = self(self, manager.node_low(ref));
    const std::vector<VarSet> high = self(self, manager.node_high(ref));
    std::vector<VarSet> result = low;
    for (const VarSet& h : high) {
      VarSet with_v = h;
      with_v.insert(std::lower_bound(with_v.begin(), with_v.end(), v), v);
      const bool covered =
          std::any_of(low.begin(), low.end(), [&](const VarSet& l) {
            return subsumes(l, with_v);
          });
      if (!covered) result.push_back(std::move(with_v));
    }
    memo.emplace(ref, result);
    return result;
  };

  const std::vector<VarSet> var_sets = decompose(decompose, compiled.root);

  // Map BDD variables back to event / condition ordinals.
  std::vector<std::int64_t> basic_of_var(manager.variable_count(), -1);
  std::vector<std::int64_t> condition_of_var(manager.variable_count(), -1);
  for (std::uint32_t i = 0; i < compiled.basic_event_count; ++i) {
    basic_of_var[compiled.var_of_basic_event[i]] = i;
  }
  for (std::uint32_t i = 0; i < compiled.condition_count; ++i) {
    condition_of_var[compiled.var_of_condition[i]] = i;
  }

  std::vector<fta::CutSet> sets;
  sets.reserve(var_sets.size());
  for (const VarSet& vars : var_sets) {
    fta::CutSet cs;
    for (const std::uint32_t v : vars) {
      if (basic_of_var[v] >= 0) {
        cs.events.push_back(
            static_cast<fta::BasicEventOrdinal>(basic_of_var[v]));
      } else {
        SAFEOPT_ASSERT(condition_of_var[v] >= 0);
        cs.conditions.push_back(
            static_cast<fta::ConditionOrdinal>(condition_of_var[v]));
      }
    }
    std::sort(cs.events.begin(), cs.events.end());
    std::sort(cs.conditions.begin(), cs.conditions.end());
    sets.push_back(std::move(cs));
  }
  fta::CutSetCollection collection(std::move(sets));
  collection.minimize();
  return collection;
}

}  // namespace safeopt::bdd
