// AnalysisGraph pass-reuse tests: the pass dependency graph must amortize
// everything upstream of the first changed input — identical requests hit
// every pass, canonical formatting variants share compile artifacts, and an
// optimize after a quantify reuses the same compiled study. Responses are
// deterministic byte strings (the same renderers the CLI prints).
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "safeopt/serve/analysis_graph.h"
#include "safeopt/support/error.h"
#include "serve/serve_client.h"

namespace safeopt::serve {
namespace {

const std::string kDoc{tstu::kParamDoc};
const std::string kConst{tstu::kConstDoc};

AnalysisOptions options_named(const std::string& model) {
  AnalysisOptions options;
  options.model = model;
  return options;
}

TEST(AnalysisGraphTest, RepeatedQuantifyHitsEveryPass) {
  AnalysisGraph graph(1 << 20);
  const AnalysisOptions options = options_named("m");
  const std::string first = graph.quantify(kDoc, options, nullptr);
  const std::string second = graph.quantify(kDoc, options, nullptr);
  EXPECT_EQ(first, second) << "cached responses must be byte-identical";

  const CacheStats stats = graph.cache_stats();
  EXPECT_EQ(stats.passes.at("parse").misses, 1u);
  EXPECT_EQ(stats.passes.at("parse").hits, 1u);
  EXPECT_EQ(stats.passes.at("compile").misses, 1u);
  EXPECT_EQ(stats.passes.at("compile").hits, 1u);
  EXPECT_EQ(stats.passes.at("quantify").misses, 1u);
  EXPECT_EQ(stats.passes.at("quantify").hits, 1u);
}

TEST(AnalysisGraphTest, CanonicalVariantsShareCompiledArtifacts) {
  AnalysisGraph graph(1 << 20);
  // Same document with formatting noise: extra blank lines and comments.
  std::string noisy = "# a comment\n\n" + kDoc + "\n# trailing comment\n";
  const std::string a = graph.quantify(kDoc, options_named("m"), nullptr);
  const std::string b = graph.quantify(noisy, options_named("m"), nullptr);
  EXPECT_EQ(a, b);

  const CacheStats stats = graph.cache_stats();
  // Different raw text → two parse artifacts; same canonical hash → ONE
  // compiled study, one quantify outcome.
  EXPECT_EQ(stats.passes.at("parse").misses, 2u);
  EXPECT_EQ(stats.passes.at("compile").misses, 1u);
  EXPECT_EQ(stats.passes.at("compile").hits, 1u);
  EXPECT_EQ(stats.passes.at("quantify").misses, 1u);
  EXPECT_EQ(stats.passes.at("quantify").hits, 1u);
}

TEST(AnalysisGraphTest, OptimizeReusesTheQuantifyCompileArtifact) {
  AnalysisGraph graph(1 << 20);
  (void)graph.quantify(kDoc, options_named("m"), nullptr);
  (void)graph.optimize(kDoc, options_named("m"), nullptr);

  const CacheStats stats = graph.cache_stats();
  EXPECT_EQ(stats.passes.at("compile").misses, 1u)
      << "optimize must reuse the study quantify compiled";
  EXPECT_EQ(stats.passes.at("compile").hits, 1u);
  EXPECT_EQ(stats.passes.at("optimize").misses, 1u);
}

TEST(AnalysisGraphTest, DifferentAtPointsShareCompileButNotQuantify) {
  AnalysisGraph graph(1 << 20);
  AnalysisOptions center = options_named("m");
  AnalysisOptions shifted = options_named("m");
  shifted.at = {{"X", 0.8}};  // off the [0.1, 0.9] box center of 0.5
  const std::string a = graph.quantify(kDoc, center, nullptr);
  const std::string b = graph.quantify(kDoc, shifted, nullptr);
  EXPECT_NE(a, b) << "different evaluation points, different probabilities";

  const CacheStats stats = graph.cache_stats();
  EXPECT_EQ(stats.passes.at("compile").misses, 1u);
  EXPECT_EQ(stats.passes.at("quantify").misses, 2u);
}

TEST(AnalysisGraphTest, EngineOverrideForksTheCompileArtifact) {
  AnalysisGraph graph(1 << 20);
  AnalysisOptions fta = options_named("m");
  AnalysisOptions bdd = options_named("m");
  bdd.engine = "bdd";
  (void)graph.quantify(kDoc, fta, nullptr);
  (void)graph.quantify(kDoc, bdd, nullptr);
  const CacheStats stats = graph.cache_stats();
  EXPECT_EQ(stats.passes.at("parse").hits, 1u)
      << "the parse artifact is engine-independent";
  EXPECT_EQ(stats.passes.at("compile").misses, 2u)
      << "an engine override is a different compile key";
}

TEST(AnalysisGraphTest, UnknownAtParameterIsInvalidInput) {
  AnalysisGraph graph(1 << 20);
  AnalysisOptions options = options_named("m");
  options.at = {{"NoSuchParam", 0.5}};
  EXPECT_THROW((void)graph.quantify(kDoc, options, nullptr),
               std::invalid_argument);
}

TEST(AnalysisGraphTest, ConstantDocumentQuantifiesWithoutASolver) {
  AnalysisGraph graph(1 << 20);
  const std::string body =
      graph.quantify(kConst, options_named("const.ft"), nullptr);
  // P(T) = 0.1 * 0.2 under inclusion-exclusion on an AND of two leaves.
  EXPECT_NE(body.find("\"probability\": 0.020000000000000004"),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("\"model\": \"const.ft\""), std::string::npos);

  const CacheStats stats = graph.cache_stats();
  EXPECT_EQ(stats.passes.count("compile"), 0u)
      << "constant documents skip the study compile pass";
  EXPECT_EQ(stats.passes.at("quantify").misses, 1u);
}

TEST(AnalysisGraphTest, ValidateReportsProblemsAndCachesByCanonicalHash) {
  AnalysisGraph graph(1 << 20);
  const std::string ok = graph.validate(kDoc, options_named("m"));
  EXPECT_NE(ok.find("\"problems\": []"), std::string::npos) << ok;

  (void)graph.validate(kDoc, options_named("m"));
  const CacheStats stats = graph.cache_stats();
  EXPECT_EQ(stats.passes.at("validate").misses, 1u);
  EXPECT_EQ(stats.passes.at("validate").hits, 1u);
}

TEST(AnalysisGraphTest, ExpiredDeadlineAbortsAndIsNeverCached) {
  AnalysisGraph graph(1 << 20);
  ExecutionControl control(Deadline::already_expired());
  // Depending on where the first cooperative checkpoint lands relative to
  // the (tiny) computation, the abort surfaces as Error(kDeadlineExceeded),
  // as an aborted-flagged result, or the work completes first. In every
  // case the outcome of a fired control must not be cached as reusable.
  try {
    (void)graph.quantify(kDoc, options_named("m"), &control);
  } catch (const Error& error) {
    EXPECT_EQ(error.category(), ErrorCategory::kDeadlineExceeded);
  }
  // A later unconstrained request recomputes (miss #2, no hit) and gets a
  // clean result — never a replay of the deadline-constrained attempt.
  const std::string clean = graph.quantify(kDoc, options_named("m"), nullptr);
  EXPECT_EQ(clean.find("\"aborted\": true"), std::string::npos) << clean;
  const CacheStats stats = graph.cache_stats();
  EXPECT_EQ(stats.passes.at("quantify").misses, 2u)
      << "an outcome computed under a fired control must not be cached";
  EXPECT_EQ(stats.passes.at("quantify").hits, 0u);
}

TEST(AnalysisGraphTest, OptionFingerprintIsInjective) {
  // One delimiter-containing value must not alias the split variant — the
  // two configure engines differently and cannot share a compile artifact.
  AnalysisOptions joined;
  joined.engine_options = {"a=1,b=2"};
  AnalysisOptions split;
  split.engine_options = {"a=1", "b=2"};
  EXPECT_NE(option_fingerprint(joined), option_fingerprint(split));

  // Values spilling across field boundaries must not alias either.
  AnalysisOptions spoofed;
  spoofed.extras = {"x=1;solver=+de"};
  AnalysisOptions honest;
  honest.extras = {"x=1"};
  honest.solver = "de";
  EXPECT_NE(option_fingerprint(spoofed), option_fingerprint(honest));

  // Absent and empty-string options are distinct configurations.
  AnalysisOptions absent;
  AnalysisOptions empty;
  empty.engine = "";
  EXPECT_NE(option_fingerprint(absent), option_fingerprint(empty));

  // The fingerprint stays deterministic for equal options (it is a cache
  // key), and ignores the response-only model label.
  AnalysisOptions relabeled = joined;
  relabeled.model = "a different label";
  EXPECT_EQ(option_fingerprint(joined), option_fingerprint(relabeled));
}

TEST(AnalysisGraphTest, PassListIsTopologicallyOrdered) {
  const auto& passes = analysis_passes();
  ASSERT_GE(passes.size(), 7u);
  EXPECT_EQ(passes.front().name, "parse");
  EXPECT_EQ(passes.back().name, "optimize");
  // Every dependency must name an earlier pass.
  for (std::size_t i = 0; i < passes.size(); ++i) {
    const std::string deps(passes[i].depends_on);
    for (std::size_t j = i + 1; j < passes.size(); ++j) {
      EXPECT_EQ(deps.find(std::string(passes[j].name)), std::string::npos)
          << passes[i].name << " depends on later pass " << passes[j].name;
    }
  }
}

}  // namespace
}  // namespace safeopt::serve
