#include "safeopt/core/study.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "safeopt/expr/eval_backend.h"
#include "safeopt/support/strings.h"

namespace safeopt::core {
namespace {

/// A document option that must be numeric (counts, seeds, tolerances).
double require_number(const std::string& key, const ftio::OptionValue& value,
                      const char* where) {
  if (value.kind != ftio::OptionValue::Kind::kNumber) {
    throw std::invalid_argument(concat(where, " option \"", key,
                                       "\" must be numeric, got \"",
                                       value.text, "\""));
  }
  return value.number;
}

/// A numeric option that must be a non-negative integer (count_or-grade).
std::size_t require_count(const std::string& key,
                          const ftio::OptionValue& value, const char* where) {
  const double number = require_number(key, value, where);
  constexpr double kMaxExact = 9007199254740992.0;  // 2^53
  if (!(number >= 0.0) || number > kMaxExact || number != std::floor(number)) {
    throw std::invalid_argument(concat(where, " option \"", key,
                                       "\" must be a non-negative integer"));
  }
  return static_cast<std::size_t>(number);
}

/// An unquoted text value that *looks* numeric ("8x", "1_000") is a typo,
/// not a string extra — storing it would make count_or/number_or silently
/// fall back to their defaults (same rule as SolverConfig::
/// set_extra_argument; quoted strings are explicitly text and exempt).
void reject_numeric_looking_text(const std::string& key,
                                 const ftio::OptionValue& value,
                                 const char* where) {
  if (value.kind == ftio::OptionValue::Kind::kText && !value.quoted &&
      opt::SolverConfig::numeric_looking(value.text)) {
    throw std::invalid_argument(
        concat(where, " option \"", key, "\" has a malformed numeric value \"",
               value.text, "\""));
  }
}

/// A flag option: numeric 0/1 or the words true/false.
bool require_flag(const std::string& key, const ftio::OptionValue& value,
                  const char* where) {
  if (value.kind == ftio::OptionValue::Kind::kNumber) {
    if (value.number == 0.0 || value.number == 1.0) return value.number != 0.0;
  } else if (value.text == "true" || value.text == "false") {
    return value.text == "true";
  }
  throw std::invalid_argument(concat(where, " option \"", key,
                                     "\" must be 0/1 or true/false, got \"",
                                     value.kind == ftio::OptionValue::Kind::kText
                                         ? value.text
                                         : format_double(value.number),
                                     "\""));
}

/// The HazardFormula a document's `formula` statement selects.
HazardFormula document_formula(const ftio::StudyDocument& document) {
  return document.formula.value_or("rare_event") == "min_cut_upper_bound"
             ? HazardFormula::kMinCutUpperBound
             : HazardFormula::kRareEvent;
}

/// An enumerated text option; returns the matching index into `values` or
/// throws listing the accepted spellings.
std::size_t require_choice(const std::string& key,
                           const ftio::OptionValue& value,
                           std::initializer_list<std::string_view> values) {
  const std::string& text =
      value.kind == ftio::OptionValue::Kind::kText ? value.text : "";
  std::size_t index = 0;
  std::string listed;
  for (const std::string_view candidate : values) {
    if (text == candidate) return index;
    if (index > 0) {
      listed += index + 1 == values.size() ? " or " : ", ";
    }
    listed += candidate;
    ++index;
  }
  throw std::invalid_argument(
      concat("engine option \"", key, "\" must be ", listed, ", got \"",
             value.kind == ftio::OptionValue::Kind::kText
                 ? value.text
                 : format_double(value.number),
             "\""));
}

/// A count option with a lower bound (batch sizes, cache geometries).
std::size_t require_count_at_least(const std::string& key,
                                   const ftio::OptionValue& value,
                                   std::size_t minimum) {
  const std::size_t count = require_count(key, value, "engine");
  if (count < minimum) {
    throw std::invalid_argument(concat("engine option \"", key,
                                       "\" must be >= ",
                                       std::to_string(minimum)));
  }
  return count;
}

/// One row of the engine option schema: the single source of truth shared
/// by document `engine` sections (apply_engine_option), CLI overrides
/// (set_engine_argument -> apply_engine_option) and the diagnostics both
/// emit. `type` and `doc` feed the uniform error/help text; `set`
/// validates and writes the typed EngineConfig field.
struct EngineOptionSpec {
  std::string_view name;
  std::string_view type;  // "enum" | "count" | "number" | "flag"
  std::string_view doc;
  void (*set)(EngineConfig&, const std::string& key,
              const ftio::OptionValue& value);
};

constexpr EngineOptionSpec kEngineOptionSchema[] = {
    {"method", "enum",
     "cut-set probability method: rare_event | min_cut_upper_bound | "
     "inclusion_exclusion",
     [](EngineConfig& config, const std::string& key,
        const ftio::OptionValue& value) {
       constexpr fta::ProbabilityMethod kMethods[] = {
           fta::ProbabilityMethod::kRareEvent,
           fta::ProbabilityMethod::kMinCutUpperBound,
           fta::ProbabilityMethod::kInclusionExclusion};
       config.method = kMethods[require_choice(
           key, value,
           {"rare_event", "min_cut_upper_bound", "inclusion_exclusion"})];
     }},
    {"combination", "enum",
     "INHIBIT constraint combination: independent_product | "
     "dependent_upper_bound",
     [](EngineConfig& config, const std::string& key,
        const ftio::OptionValue& value) {
       config.combination =
           require_choice(key, value,
                          {"independent_product", "dependent_upper_bound"}) ==
                   0
               ? fta::ConstraintCombination::kIndependentProduct
               : fta::ConstraintCombination::kDependentUpperBound;
     }},
    // `trials` is the fixed-N count for "mc"; for "mc_adaptive" the same
    // field caps the adaptive loop, aliased as `budget` for readability.
    {"trials", "count", "Monte Carlo trials (\"mc\") / trial cap",
     [](EngineConfig& config, const std::string& key,
        const ftio::OptionValue& value) {
       config.mc_trials =
           static_cast<std::uint64_t>(require_count(key, value, "engine"));
     }},
    {"budget", "count", "alias of trials for \"mc_adaptive\"",
     [](EngineConfig& config, const std::string& key,
        const ftio::OptionValue& value) {
       config.mc_trials =
           static_cast<std::uint64_t>(require_count(key, value, "engine"));
     }},
    {"seed", "count", "Monte Carlo base seed",
     [](EngineConfig& config, const std::string& key,
        const ftio::OptionValue& value) {
       config.seed =
           static_cast<std::uint64_t>(require_count(key, value, "engine"));
     }},
    {"target_halfwidth", "number", "adaptive MC target 95% CI half-width",
     [](EngineConfig& config, const std::string& key,
        const ftio::OptionValue& value) {
       const double target = require_number(key, value, "engine");
       if (!(target > 0.0)) {
         throw std::invalid_argument(
             "engine option \"target_halfwidth\" must be > 0");
       }
       config.target_halfwidth = target;
     }},
    {"relative", "flag", "target half-width is relative to the estimate",
     [](EngineConfig& config, const std::string& key,
        const ftio::OptionValue& value) {
       config.relative = require_flag(key, value, "engine");
     }},
    {"batch", "count", "adaptive MC trials per round",
     [](EngineConfig& config, const std::string& key,
        const ftio::OptionValue& value) {
       config.batch = static_cast<std::uint64_t>(
           require_count_at_least(key, value, 1));
     }},
    {"tilt", "number", "importance-sampling proposal tilt (<= 1 disables)",
     [](EngineConfig& config, const std::string& key,
        const ftio::OptionValue& value) {
       const double tilt = require_number(key, value, "engine");
       if (!(tilt >= 0.0)) {
         throw std::invalid_argument("engine option \"tilt\" must be >= 0");
       }
       config.tilt = tilt;
     }},
    {"preprocess", "flag",
     "fta/bdd: run the preprocessing pass pipeline before compilation",
     [](EngineConfig& config, const std::string& key,
        const ftio::OptionValue& value) {
       config.preprocess = require_flag(key, value, "engine");
     }},
    {"modularize", "flag",
     "with preprocess: extract independent modules as pseudo-leaves",
     [](EngineConfig& config, const std::string& key,
        const ftio::OptionValue& value) {
       config.modularize = require_flag(key, value, "engine");
     }},
    {"module_min_leaves", "count",
     "with modularize: minimum leaf span worth extracting",
     [](EngineConfig& config, const std::string& key,
        const ftio::OptionValue& value) {
       config.module_min_leaves = require_count_at_least(key, value, 1);
     }},
    {"ordering", "enum",
     "bdd: structural variable-ordering heuristic: dfs | weight",
     [](EngineConfig& config, const std::string& key,
        const ftio::OptionValue& value) {
       config.ordering = require_choice(key, value, {"dfs", "weight"}) == 0
                             ? bdd::VariableOrdering::kDfs
                             : bdd::VariableOrdering::kWeight;
     }},
    {"table_size", "count", "bdd: unique-table buckets reserved up front",
     [](EngineConfig& config, const std::string& key,
        const ftio::OptionValue& value) {
       config.bdd_table_size = require_count_at_least(key, value, 1);
     }},
    {"cache_size", "count",
     "bdd: ITE cache entries (rounded up to a power of two)",
     [](EngineConfig& config, const std::string& key,
        const ftio::OptionValue& value) {
       config.bdd_cache_size = require_count_at_least(key, value, 1);
     }},
    {"deadline_ms", "count",
     "wall-clock deadline in milliseconds (0 = none): bounds fta/bdd "
     "construction and each mc_adaptive quantify call",
     [](EngineConfig& config, const std::string& key,
        const ftio::OptionValue& value) {
       config.deadline_ms =
           static_cast<std::uint64_t>(require_count(key, value, "engine"));
     }},
    {"bdd_node_budget", "count",
     "bdd: decision-node cap (0 = unlimited); exceeding it aborts "
     "compilation with a resource_exhausted error",
     [](EngineConfig& config, const std::string& key,
        const ftio::OptionValue& value) {
       config.bdd_node_budget = require_count(key, value, "engine");
     }},
    {"fallback", "enum",
     "engine to degrade to when construction exhausts a budget or deadline "
     "(an engine name, or none)",
     [](EngineConfig& config, const std::string& key,
        const ftio::OptionValue& value) {
       if (value.kind != ftio::OptionValue::Kind::kText) {
         throw std::invalid_argument(concat(
             "engine option \"", key, "\" must be an engine name or none"));
       }
       if (value.text == "none") {
         config.fallback.clear();
         return;
       }
       if (!EngineRegistry::contains(value.text)) {
         throw std::invalid_argument(concat(
             "engine option \"", key, "\" names unknown engine \"", value.text,
             "\"; available: ", join(EngineRegistry::available(), ", "),
             ", or none"));
       }
       config.fallback = value.text;
     }},
    {"backend", "enum",
     "compiled-tape evaluation backend (a registered backend name, or auto "
     "for runtime dispatch); unavailable backends degrade with a diagnostic",
     [](EngineConfig& config, const std::string& key,
        const ftio::OptionValue& value) {
       if (value.kind != ftio::OptionValue::Kind::kText) {
         throw std::invalid_argument(concat(
             "engine option \"", key, "\" must be a backend name or auto"));
       }
       if (value.text == "auto") {
         config.backend.clear();
         return;
       }
       // Typos are errors; an *unavailable* registered backend is not — it
       // degrades at resolve time so one document runs on every host.
       if (expr::BackendRegistry::find(value.text) == nullptr) {
         throw std::invalid_argument(concat(
             "engine option \"", key, "\" names unknown backend \"",
             value.text, "\"; registered: ",
             join(expr::BackendRegistry::registered(), ", "), ", or auto"));
       }
       config.backend = value.text;
     }},
};

/// Levenshtein distance, the "did you mean" metric (option names are short,
/// so the quadratic DP is fine).
std::size_t edit_distance(std::string_view a, std::string_view b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diagonal = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t substitution =
          diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
      diagonal = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, substitution});
    }
  }
  return row[b.size()];
}

/// One `key = value` engine option, the mapping shared by document `engine`
/// sections and the CLI's --engine-opt overrides — a schema lookup, with a
/// uniform "did you mean" diagnostic for unknown names.
void apply_engine_option(EngineConfig& config, const std::string& key,
                         const ftio::OptionValue& value) {
  for (const EngineOptionSpec& spec : kEngineOptionSchema) {
    if (key == spec.name) {
      spec.set(config, key, value);
      return;
    }
  }
  std::string_view nearest;
  std::size_t nearest_distance = key.size();
  std::string supported;
  for (const EngineOptionSpec& spec : kEngineOptionSchema) {
    if (!supported.empty()) supported += ", ";
    supported += spec.name;
    const std::size_t distance = edit_distance(key, spec.name);
    if (distance < nearest_distance) {
      nearest = spec.name;
      nearest_distance = distance;
    }
  }
  throw std::invalid_argument(concat(
      "unknown engine option \"", key, "\"",
      nearest.empty() || nearest_distance > 3
          ? ""
          : concat(" (did you mean \"", nearest, "\"?)"),
      "; supported: ", supported));
}

}  // namespace

std::vector<EngineOptionDoc> engine_option_docs() {
  std::vector<EngineOptionDoc> docs;
  docs.reserve(std::size(kEngineOptionSchema));
  for (const EngineOptionSpec& spec : kEngineOptionSchema) {
    docs.push_back({spec.name, spec.type, spec.doc});
  }
  return docs;
}

std::optional<SolverSelection> document_solver_selection(
    const ftio::StudyDocument& document) {
  if (!document.solver.has_value()) return std::nullopt;
  const ftio::SelectionDecl& selection = *document.solver;
  auto resolved = resolve_solver(selection.name);
  if (!resolved.has_value()) {
    throw std::invalid_argument(
        concat("document selects unknown solver \"", selection.name,
               "\"; available: ",
               join(opt::SolverRegistry::available(), ", ")));
  }
  for (const auto& [key, value] : selection.options) {
    if (key == "max_iterations") {
      resolved->config.max_iterations = require_count(key, value, "solver");
    } else if (key == "tolerance") {
      resolved->config.tolerance = require_number(key, value, "solver");
    } else if (key == "max_evaluations") {
      resolved->config.max_evaluations = require_count(key, value, "solver");
    } else if (key == "seed") {
      resolved->config.seed =
          static_cast<std::uint64_t>(require_count(key, value, "solver"));
    } else if (value.kind == ftio::OptionValue::Kind::kNumber) {
      resolved->config.set(key, value.number);
    } else {
      reject_numeric_looking_text(key, value, "solver");
      resolved->config.set(key, value.text);
    }
  }
  return resolved;
}

std::pair<std::string, EngineConfig> document_engine_selection(
    const ftio::StudyDocument& document) {
  const HazardFormula formula = document_formula(document);
  EngineConfig config;
  config.method = formula == HazardFormula::kMinCutUpperBound
                      ? fta::ProbabilityMethod::kMinCutUpperBound
                      : fta::ProbabilityMethod::kRareEvent;
  if (!document.engine.has_value()) return {"fta", config};
  const ftio::SelectionDecl& selection = *document.engine;
  if (!EngineRegistry::contains(selection.name)) {
    throw std::invalid_argument(
        concat("document selects unknown engine \"", selection.name,
               "\"; available: ", join(EngineRegistry::available(), ", ")));
  }
  for (const auto& [key, value] : selection.options) {
    apply_engine_option(config, key, value);
  }
  return {selection.name, config};
}

void set_engine_argument(EngineConfig& config,
                         const std::string& key_equals_value) {
  const std::size_t equals = key_equals_value.find('=');
  if (equals == std::string::npos || equals == 0 ||
      equals + 1 == key_equals_value.size()) {
    throw std::invalid_argument(concat(
        "engine option must be KEY=VALUE, got \"", key_equals_value, "\""));
  }
  const std::string key = key_equals_value.substr(0, equals);
  const std::string text = key_equals_value.substr(equals + 1);
  // Same typing rule as SolverConfig::set_extra_argument: parse a numeric
  // value when it reads as one, reject numeric-looking typos ("8x"), and
  // pass words (method names, true/false) through as text.
  char* end = nullptr;
  const double number = std::strtod(text.c_str(), &end);
  if (end == text.c_str() + text.size() && end != text.c_str()) {
    apply_engine_option(config, key, ftio::OptionValue::of(number));
    return;
  }
  if (opt::SolverConfig::numeric_looking(text)) {
    throw std::invalid_argument(concat("engine option \"", key,
                                       "\" has a malformed numeric value \"",
                                       text, "\""));
  }
  apply_engine_option(config, key, ftio::OptionValue::of(text));
}

/// Backing storage for document-loaded studies. Entries are pointer-stable:
/// TreeHazard, ParameterizedQuantification and the engines hold references
/// into them for the Study's lifetime (including copies, via shared_ptr).
struct Study::OwnedModel {
  struct Entry {
    std::unique_ptr<fta::FaultTree> tree;
    std::unique_ptr<ParameterizedQuantification> quantification;
  };
  std::vector<Entry> entries;
};

Study::Study(CostModel model, ParameterSpace space)
    : optimizer_(std::move(model), std::move(space)) {}

Study Study::from_document(const ftio::StudyDocument& document) {
  if (document.hazards.empty()) {
    throw std::invalid_argument(
        concat("study document", document.source.empty() ? "" : " ",
               document.source,
               " declares no hazards; add \"hazard <tree> cost = <c>;\""));
  }

  if (document.parameters.empty()) {
    throw std::invalid_argument(
        concat("study document", document.source.empty() ? "" : " ",
               document.source,
               " declares no free parameters; add \"param <name> in "
               "[<lo>, <hi>];\""));
  }
  ParameterSpace space;
  for (const ftio::ParameterDecl& parameter : document.parameters) {
    space.add({parameter.name, parameter.lower, parameter.upper,
               parameter.unit, parameter.description});
  }

  const HazardFormula formula = document_formula(document);

  auto owned = std::make_shared<OwnedModel>();
  CostModel model;
  for (const ftio::HazardDecl& hazard : document.hazards) {
    const ftio::TreeModel* source = document.find_tree(hazard.tree);
    if (source == nullptr) {
      throw std::invalid_argument(
          concat("hazard names unknown tree \"", hazard.tree, "\""));
    }
    if (model.hazards().end() !=
        std::find_if(model.hazards().begin(), model.hazards().end(),
                     [&](const Hazard& h) { return h.name == hazard.tree; })) {
      throw std::invalid_argument(
          concat("duplicate hazard for tree \"", hazard.tree, "\""));
    }
    OwnedModel::Entry entry;
    entry.tree = std::make_unique<fta::FaultTree>(source->tree);
    auto quantification =
        std::make_unique<ParameterizedQuantification>(*entry.tree);
    for (const ftio::LeafProbability& leaf : source->leaves) {
      if (leaf.is_condition) {
        quantification->set_condition_probability(leaf.name,
                                                  leaf.probability);
      } else {
        quantification->set_event_probability(leaf.name, leaf.probability);
      }
    }
    entry.quantification = std::move(quantification);
    model.add_hazard({hazard.tree,
                      entry.quantification->hazard_expression(formula),
                      hazard.cost});
    owned->entries.push_back(std::move(entry));
  }

  Study study(std::move(model), std::move(space));
  study.owned_ = owned;
  for (std::size_t i = 0; i < document.hazards.size(); ++i) {
    study.hazard_tree(document.hazards[i].tree, *owned->entries[i].tree,
                      *owned->entries[i].quantification);
  }
  if (auto selection = document_solver_selection(document)) {
    study.solver(std::move(selection->name), std::move(selection->config));
  }
  {
    auto [name, config] = document_engine_selection(document);
    study.engine(std::move(name), config);
  }
  return study;
}

Study Study::from_file(const std::string& path) {
  return from_document(ftio::load_study(path));
}

Study& Study::solver(std::string name, opt::SolverConfig config) {
  solver_name_ = std::move(name);
  solver_config_ = std::move(config);
  return *this;
}

Study& Study::algorithm(Algorithm algorithm) {
  return solver(std::string(algorithm_registry_name(algorithm)),
                algorithm_solver_config(algorithm));
}

Study& Study::observe(opt::ProgressObserver observer) {
  observer_ = std::move(observer);
  return *this;
}

Study& Study::engine(std::string name, EngineConfig config) {
  engine_name_ = std::move(name);
  engine_config_ = config;
  // Engines are per-(tree, config); drop the ones built for the old choice
  // (and any degradation note recorded while building them).
  for (const TreeHazard& entry : tree_hazards_) {
    entry.engine.reset();
    entry.degradation.clear();
  }
  return *this;
}

Study& Study::hazard_tree(std::string hazard, const fta::FaultTree& tree,
                          const ParameterizedQuantification& quantification) {
  // Validate eagerly — the hazard must exist in the cost model so the
  // engine-quantified probability has an expression-path counterpart.
  (void)model().hazard_by_name(hazard);
  TreeHazard entry;
  entry.hazard = std::move(hazard);
  entry.tree = &tree;
  entry.quantification = &quantification;
  tree_hazards_.push_back(std::move(entry));
  return *this;
}

SafetyOptimizationResult Study::run() const {
  if (!observer_ || solver_config_.observer) {
    return optimizer_.optimize(solver_name_, solver_config_);
  }
  opt::SolverConfig config = solver_config_;
  config.observer = observer_;
  return optimizer_.optimize(solver_name_, config);
}

SafetyOptimizationResult Study::evaluate_at(
    const expr::ParameterAssignment& configuration) const {
  return optimizer_.evaluate_at(configuration);
}

ComparisonReport Study::compare(
    const expr::ParameterAssignment& baseline,
    const SafetyOptimizationResult& optimal) const {
  return optimizer_.compare(baseline, optimal);
}

QuantificationResult Study::quantify(
    std::string_view hazard, const expr::ParameterAssignment& at) const {
  for (const TreeHazard& entry : tree_hazards_) {
    if (entry.hazard != hazard) continue;
    if (!entry.compiled) {
      entry.compiled =
          std::make_unique<CompiledQuantification>(*entry.quantification);
      // Resolve the `backend=` request once per compilation (same policy as
      // engine degradation: unavailable hardware is a note, not an error).
      const expr::BackendRegistry::Selection selection =
          expr::BackendRegistry::resolve(engine_config_.backend);
      entry.compiled->set_backend(selection.backend);
      entry.backend_name = selection.backend->name();
      entry.backend_note = selection.diagnostic;
    }
    if (!entry.engine) {
      // Degradation happens at construction time (budget/deadline blown
      // while compiling), so the downgrade note is cached alongside the
      // engine and replayed into every result it produces.
      entry.engine = create_engine_with_fallback(
          engine_name_, *entry.tree, engine_config_, &entry.degradation);
    }
    QuantificationResult result =
        entry.engine->quantify(entry.compiled->input_at(at));
    if (!entry.degradation.empty()) {
      result.diagnostics.push_back(entry.degradation);
    }
    if (!entry.backend_note.empty()) {
      result.diagnostics.push_back(entry.backend_note);
    }
    result.backend = entry.backend_name;
    return result;
  }
  throw std::invalid_argument(
      concat("no fault tree attached for hazard \"", hazard,
             "\"; call Study::hazard_tree first"));
}

}  // namespace safeopt::core
