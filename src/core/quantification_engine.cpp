#include "safeopt/core/quantification_engine.h"

#include <utility>

#include "safeopt/bdd/bdd.h"
#include "safeopt/fta/cut_sets.h"
#include "safeopt/mc/adaptive_monte_carlo.h"
#include "safeopt/mc/monte_carlo.h"
#include "safeopt/prep/preprocess.h"
#include "safeopt/support/contracts.h"
#include "safeopt/support/error.h"
#include "safeopt/support/execution.h"
#include "safeopt/support/registry.h"
#include "safeopt/support/strings.h"

namespace safeopt::core {

std::vector<QuantificationResult> QuantificationEngine::quantify_batch(
    const std::vector<fta::QuantificationInput>& inputs) {
  std::vector<QuantificationResult> results;
  results.reserve(inputs.size());
  for (const fta::QuantificationInput& input : inputs) {
    results.push_back(quantify(input));
  }
  return results;
}

namespace {

/// The PreprocessOptions slice of an EngineConfig, with the engine's
/// per-construction control threaded into the pass pipeline.
prep::PreprocessOptions to_prep_options(const EngineConfig& config,
                                        const ExecutionControl* control) {
  prep::PreprocessOptions options;
  options.modularize = config.modularize;
  options.module_min_leaves = config.module_min_leaves;
  options.control = control;
  return options;
}

/// Fills `storage` with the engine's per-construction control — a fresh
/// deadline derived from config.deadline_ms, chained to the caller's
/// config.control as parent — and returns it; nullptr when the config asks
/// for neither (so the unbounded path stays poll-free).
const ExecutionControl* activate_control(const EngineConfig& config,
                                         ExecutionControl& storage) {
  if (config.deadline_ms == 0 && config.control == nullptr) return nullptr;
  storage.deadline = config.deadline_ms > 0
                         ? Deadline::after_ms(config.deadline_ms)
                         : Deadline::never();
  storage.parent = config.control;
  return &storage;
}

/// The diagnostics sub-struct engines attach to every result when the
/// pipeline ran.
PreprocessSummary to_summary(const prep::PreprocessStatistics& statistics) {
  PreprocessSummary summary;
  summary.modules = statistics.modules;
  summary.events_before = statistics.events_before;
  summary.events_after = statistics.events_after;
  summary.gates_before = statistics.gates_before;
  summary.gates_after = statistics.gates_after;
  for (const prep::PassStats& pass : statistics.passes) {
    summary.passes.push_back(pass.name);
  }
  return summary;
}

/// "fta": the paper's own engine — minimal cut sets (MOCUS, run once at
/// construction) evaluated by the configured probability method. Exact only
/// for inclusion-exclusion under leaf independence; the two bounding methods
/// overestimate (Eq. 1/2 is the first Bonferroni bound).
class CutSetEngine final : public QuantificationEngine {
 public:
  CutSetEngine(const fta::FaultTree& tree, const EngineConfig& config)
      : tree_(tree), config_(config) {
    // The construction-time control only needs to live through this body:
    // MOCUS/preprocessing happen here, quantify() is per-point arithmetic.
    ExecutionControl storage;
    const ExecutionControl* control = activate_control(config, storage);
    if (config.preprocess) {
      // Composed modular cut sets are mapped back to the original ordinals
      // and minimize()d, so quantification below is bit-identical to the
      // direct MOCUS path — the pipeline only changes how mcs_ is found.
      const prep::PreprocessedTree preprocessed =
          prep::preprocess(tree, to_prep_options(config, control));
      mcs_ = prep::minimal_cut_sets(preprocessed);
      summary_ = to_summary(preprocessed.statistics);
    } else {
      mcs_ = fta::minimal_cut_sets(tree);
    }
  }

  [[nodiscard]] std::string_view name() const noexcept override {
    return "fta";
  }
  [[nodiscard]] EngineCapabilities capabilities() const noexcept override {
    EngineCapabilities caps;
    caps.exact =
        config_.method == fta::ProbabilityMethod::kInclusionExclusion;
    caps.importance = true;
    return caps;
  }
  [[nodiscard]] const fta::FaultTree& tree() const noexcept override {
    return tree_;
  }

  [[nodiscard]] QuantificationResult quantify(
      const fta::QuantificationInput& input) override {
    SAFEOPT_EXPECTS(input.is_valid_for(tree_));
    QuantificationResult result;
    result.probability = fta::top_event_probability(
        mcs_, input, config_.method, config_.combination);
    result.preprocess = summary_;
    return result;
  }

  [[nodiscard]] const fta::CutSetCollection& cut_sets() const noexcept {
    return mcs_;
  }

 private:
  const fta::FaultTree& tree_;
  EngineConfig config_;
  fta::CutSetCollection mcs_;
  std::optional<PreprocessSummary> summary_;
};

/// "bdd": exact Shannon decomposition over the ROBDD compiled once at
/// construction. No approximation and no cut-set blow-up — the
/// linear-in-nodes oracle the other engines are validated against.
class BddEngine final : public QuantificationEngine {
 public:
  BddEngine(const fta::FaultTree& tree, const EngineConfig& config)
      : tree_(tree), options_(config.bdd_options()) {
    // Construction is the expensive phase (the whole compilation), so the
    // per-construction deadline starts here — but the managers keep the
    // control pointer for their lifetime, so it lives in a member
    // (declared first, destroyed last), never on this stack frame.
    options_.control = activate_control(config, control_storage_);
    if (config.preprocess) {
      preprocessed_ =
          prep::preprocess(tree, to_prep_options(config, options_.control));
      modules_.emplace(*preprocessed_, options_);
      summary_ = to_summary(preprocessed_->statistics);
    } else {
      compiled_.emplace(bdd::compile(tree, options_));
    }
  }

  [[nodiscard]] std::string_view name() const noexcept override {
    return "bdd";
  }
  [[nodiscard]] EngineCapabilities capabilities() const noexcept override {
    EngineCapabilities caps;
    caps.exact = true;
    return caps;
  }
  [[nodiscard]] const fta::FaultTree& tree() const noexcept override {
    return tree_;
  }

  [[nodiscard]] QuantificationResult quantify(
      const fta::QuantificationInput& input) override {
    SAFEOPT_EXPECTS(input.is_valid_for(tree_));
    QuantificationResult result;
    result.probability = modules_.has_value()
                             ? modules_->probability(input)
                             : compiled_->probability(input);
    result.preprocess = summary_;
    return result;
  }

 private:
  const fta::FaultTree& tree_;
  // Referenced by every manager compiled below; must be declared before
  // them so it is destroyed after them.
  ExecutionControl control_storage_;
  bdd::BddOptions options_;
  std::optional<bdd::CompiledFaultTree> compiled_;
  // `modules_` keeps a pointer into `preprocessed_`; both live and die with
  // this engine (declaration order matters: preprocessed_ first).
  std::optional<prep::PreprocessedTree> preprocessed_;
  std::optional<prep::CompiledPreprocessedTree> modules_;
  std::optional<PreprocessSummary> summary_;
};

/// "mc": Monte Carlo estimation straight off the structure function —
/// the model-free cross-check. Deterministic for a fixed config seed; with
/// a pool, trials run as per-chunk jump() streams whose result is
/// independent of the thread count.
class MonteCarloEngine final : public QuantificationEngine {
 public:
  MonteCarloEngine(const fta::FaultTree& tree, const EngineConfig& config)
      : tree_(tree), config_(config) {
    SAFEOPT_EXPECTS(config_.mc_trials >= 1);
  }

  [[nodiscard]] std::string_view name() const noexcept override {
    return "mc";
  }
  [[nodiscard]] EngineCapabilities capabilities() const noexcept override {
    EngineCapabilities caps;
    caps.sampled = true;
    return caps;
  }
  [[nodiscard]] const fta::FaultTree& tree() const noexcept override {
    return tree_;
  }

  [[nodiscard]] QuantificationResult quantify(
      const fta::QuantificationInput& input) override {
    SAFEOPT_EXPECTS(input.is_valid_for(tree_));
    const mc::MonteCarloResult estimate =
        config_.pool != nullptr
            ? mc::estimate_hazard_probability(tree_, input, config_.mc_trials,
                                              *config_.pool, config_.seed)
            : mc::estimate_hazard_probability(tree_, input, config_.mc_trials,
                                              config_.seed);
    QuantificationResult result;
    result.probability = estimate.estimate;
    result.ci95 = estimate.ci95;
    result.trials = estimate.trials;
    result.ess = static_cast<double>(estimate.trials);
    return result;
  }

 private:
  const fta::FaultTree& tree_;
  EngineConfig config_;
};

/// "mc_adaptive": sequential batched sampling to a target CI half-width
/// (Wilson stopping rule), with an importance-sampling mode (tilt > 1) for
/// the rare events crude sampling cannot resolve. Deterministic and
/// thread-count-invariant for a fixed config seed, like "mc".
class AdaptiveMonteCarloEngine final : public QuantificationEngine {
 public:
  AdaptiveMonteCarloEngine(const fta::FaultTree& tree,
                           const EngineConfig& config)
      : tree_(tree),
        sampler_(to_options(config)),
        deadline_ms_(config.deadline_ms),
        caller_control_(config.control) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "mc_adaptive";
  }
  [[nodiscard]] EngineCapabilities capabilities() const noexcept override {
    EngineCapabilities caps;
    caps.sampled = true;
    caps.batch = true;
    caps.importance_sampling = sampler_.options().tilt > 1.0;
    return caps;
  }
  [[nodiscard]] const fta::FaultTree& tree() const noexcept override {
    return tree_;
  }

  [[nodiscard]] QuantificationResult quantify(
      const fta::QuantificationInput& input) override {
    SAFEOPT_EXPECTS(input.is_valid_for(tree_));
    return quantify_batch({input}).front();
  }

  /// Real batched path: one super-round scheduler drives every input, so
  /// slow (rare-event) inputs keep the pool busy after easy ones converge.
  /// Entries are bitwise-identical to the serial quantify() loop. The
  /// sampling loop is this engine's expensive phase, so `deadline_ms` is a
  /// *per-call* budget: each call derives a fresh deadline (chained to the
  /// caller's config.control) and an expired one flags `aborted` on the
  /// partial results rather than throwing.
  [[nodiscard]] std::vector<QuantificationResult> quantify_batch(
      const std::vector<fta::QuantificationInput>& inputs) override {
    for (const fta::QuantificationInput& input : inputs) {
      SAFEOPT_EXPECTS(input.is_valid_for(tree_));
    }
    ExecutionControl control;
    const ExecutionControl* active = nullptr;
    if (deadline_ms_ > 0 || caller_control_ != nullptr) {
      control.deadline = deadline_ms_ > 0 ? Deadline::after_ms(deadline_ms_)
                                          : Deadline::never();
      control.parent = caller_control_;
      active = &control;
    }
    std::vector<QuantificationResult> results;
    results.reserve(inputs.size());
    for (const mc::AdaptiveResult& estimate :
         sampler_.estimate_batch(tree_, inputs, active)) {
      results.push_back(to_result(estimate));
    }
    return results;
  }

 private:
  [[nodiscard]] static mc::AdaptiveOptions to_options(
      const EngineConfig& config) {
    SAFEOPT_EXPECTS(config.mc_trials >= 1);
    mc::AdaptiveOptions options;
    options.target_halfwidth = config.target_halfwidth;
    options.relative = config.relative;
    options.batch = config.batch;
    options.max_trials = config.mc_trials;
    options.tilt = config.tilt;
    options.seed = config.seed;
    options.pool = config.pool;
    return options;
  }

  [[nodiscard]] static QuantificationResult to_result(
      const mc::AdaptiveResult& estimate) {
    QuantificationResult result;
    result.probability = estimate.estimate;
    result.ci95 = estimate.ci95;
    result.trials = estimate.trials;
    result.ess = estimate.ess;
    result.converged = estimate.converged;
    result.aborted = estimate.aborted;
    return result;
  }

  const fta::FaultTree& tree_;
  mc::AdaptiveMonteCarlo sampler_;
  std::uint64_t deadline_ms_ = 0;
  const ExecutionControl* caller_control_ = nullptr;
};

/// The shared registry scaffolding (support/registry.h), seeded with the
/// built-in engines on first use.
NameRegistry<EngineRegistry::Factory>& registry() {
  static NameRegistry<EngineRegistry::Factory> instance(
      "quantification engine",
      {{"fta",
        [](const fta::FaultTree& tree, const EngineConfig& config) {
          return std::make_unique<CutSetEngine>(tree, config);
        }},
       {"bdd",
        [](const fta::FaultTree& tree, const EngineConfig& config) {
          return std::make_unique<BddEngine>(tree, config);
        }},
       {"mc",
        [](const fta::FaultTree& tree, const EngineConfig& config) {
          return std::make_unique<MonteCarloEngine>(tree, config);
        }},
       {"mc_adaptive",
        [](const fta::FaultTree& tree, const EngineConfig& config) {
          return std::make_unique<AdaptiveMonteCarloEngine>(tree, config);
        }}});
  return instance;
}

}  // namespace

bool EngineRegistry::add(std::string name, Factory factory) {
  return registry().add(std::move(name), std::move(factory));
}

std::unique_ptr<QuantificationEngine> EngineRegistry::create(
    std::string_view name, const fta::FaultTree& tree,
    const EngineConfig& config) {
  std::unique_ptr<QuantificationEngine> engine =
      registry().find(name)(tree, config);
  SAFEOPT_ENSURES(engine != nullptr);
  return engine;
}

bool EngineRegistry::contains(std::string_view name) {
  return registry().contains(name);
}

std::vector<std::string> EngineRegistry::available() {
  return registry().available();
}

std::unique_ptr<QuantificationEngine> create_engine_with_fallback(
    std::string_view name, const fta::FaultTree& tree,
    const EngineConfig& config, std::string* diagnostic) {
  try {
    return EngineRegistry::create(name, tree, config);
  } catch (const Error& error) {
    if (!error.recoverable() || config.fallback.empty() ||
        config.fallback == name) {
      throw;
    }
    // One link only: a failing fallback propagates. The downgrade note
    // leads with the machine-readable category so log scrapers can filter.
    std::unique_ptr<QuantificationEngine> engine =
        EngineRegistry::create(config.fallback, tree, config);
    if (diagnostic != nullptr) {
      *diagnostic = concat("engine \"", name, "\" degraded to \"",
                           config.fallback, "\" (",
                           category_name(error.category()), "): ",
                           error.what());
    }
    return engine;
  }
}

}  // namespace safeopt::core
