// Fixture: explicitly seeded streams and near-miss identifiers.
#include "safeopt/support/rng.h"

double f(std::uint64_t seed) {
  safeopt::Rng rng(seed);  // explicit seed: reproducible
  // Identifiers merely containing "rand" are not the C rand().
  const double x = rng.uniform();
  const double y = my_rand(x);       // user function, not ::rand
  const double z = operand(x, y);    // "rand" substring inside a word
  // safeopt-lint: allow(unseeded-rng) — fixture for the seeding docs
  std::random_device allowed;
  return x + y + z + allowed();
}
