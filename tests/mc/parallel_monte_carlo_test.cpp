// Parallel Monte Carlo estimation: per-chunk xoshiro jump() streams must
// make the result a pure function of (tree, input, trials, seed) — never of
// the thread count — and the estimate must still agree with the analytic
// probability.
#include <gtest/gtest.h>

#include "safeopt/bdd/bdd.h"
#include "safeopt/mc/monte_carlo.h"
#include "safeopt/support/thread_pool.h"
#include "testutil/random_tree.h"

namespace safeopt::mc {
namespace {

TEST(ParallelMonteCarloTest, ResultIndependentOfThreadCount) {
  const fta::FaultTree tree = testutil::random_tree(21);
  const auto input = fta::QuantificationInput::for_tree(tree, 0.05);

  ThreadPool one(1);
  const MonteCarloResult reference =
      estimate_hazard_probability(tree, input, 100000, one, 0xabcd);
  for (const std::size_t threads : {2u, 5u}) {
    ThreadPool pool(threads);
    const MonteCarloResult result =
        estimate_hazard_probability(tree, input, 100000, pool, 0xabcd);
    EXPECT_EQ(result.occurrences, reference.occurrences)
        << threads << " threads";
    EXPECT_EQ(result.trials, reference.trials);
    EXPECT_EQ(result.estimate, reference.estimate);
  }
}

TEST(ParallelMonteCarloTest, SeedChangesTheSample) {
  const fta::FaultTree tree = testutil::random_tree(22);
  const auto input = fta::QuantificationInput::for_tree(tree, 0.05);
  ThreadPool pool(2);
  const MonteCarloResult a =
      estimate_hazard_probability(tree, input, 50000, pool, 1);
  const MonteCarloResult b =
      estimate_hazard_probability(tree, input, 50000, pool, 2);
  EXPECT_NE(a.occurrences, b.occurrences);
}

TEST(ParallelMonteCarloTest, PartialFinalChunkCountsAllTrials) {
  const fta::FaultTree tree = testutil::random_tree(23);
  const auto input = fta::QuantificationInput::for_tree(tree, 0.1);
  ThreadPool pool(3);
  // 40000 is not a multiple of the 16384-trial chunk size.
  const MonteCarloResult result =
      estimate_hazard_probability(tree, input, 40000, pool);
  EXPECT_EQ(result.trials, 40000u);
  EXPECT_LE(result.occurrences, result.trials);
}

TEST(ParallelMonteCarloTest, EstimateIsConsistentWithExactProbability) {
  const fta::FaultTree tree = testutil::random_tree(24);
  const auto input = fta::QuantificationInput::for_tree(tree, 0.05);
  const double exact = bdd::compile(tree).probability(input);

  ThreadPool pool(4);
  const MonteCarloResult result =
      estimate_hazard_probability(tree, input, 400000, pool);
  EXPECT_TRUE(result.consistent_with(exact))
      << "estimate " << result.estimate << " vs exact " << exact;
}

}  // namespace
}  // namespace safeopt::mc
