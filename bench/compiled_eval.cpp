// Experiment: compiled-tape evaluation vs the recursive expression walk on
// the paper's Fig. 5 cost surface f_cost(T1, T2).
//
// Three evaluation strategies over the same grid workload:
//   tree    — the pre-compilation objective path: build a
//             ParameterAssignment, walk the Expr DAG (what every optimizer
//             called before this subsystem existed);
//   tape    — CompiledExpr::evaluate, one point at a time;
//   batch   — CompiledExpr::evaluate_batch, single-threaded (workspace memo
//             active) and fanned out over a ThreadPool.
//
// Besides timing, the run *verifies* the architectural contract: every
// strategy must produce bitwise-identical surfaces, and GridSearch /
// DifferentialEvolution must return bitwise-identical optima on the tree
// and compiled paths.
//
// Usage: bench_compiled_eval [--repeats N] [--grid N] [--json PATH]
//   --repeats  timing repetitions per strategy (default 5; CI smoke uses 1)
//   --grid     points per grid axis (default 301)
//   --json     write machine-readable results to PATH
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "safeopt/core/safety_optimizer.h"
#include "safeopt/elbtunnel/elbtunnel_model.h"
#include "safeopt/expr/compiled.h"
#include "safeopt/opt/differential_evolution.h"
#include "safeopt/opt/grid_search.h"
#include "safeopt/support/thread_pool.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Best-of-N wall time for `body` in seconds.
template <typename F>
double best_time(int repeats, F&& body) {
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    const auto start = Clock::now();
    body();
    best = std::min(best, seconds_since(start));
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace safeopt;

  int repeats = 5;
  std::size_t grid = 301;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--repeats") == 0 && i + 1 < argc) {
      repeats = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--grid") == 0 && i + 1 < argc) {
      grid = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  repeats = std::max(repeats, 1);
  grid = std::max<std::size_t>(grid, 2);

  const elbtunnel::ElbtunnelModel model;
  const core::SafetyOptimizer optimizer = model.optimizer();
  const expr::Expr cost = model.cost_model().cost_expression();
  const core::ParameterSpace space = model.parameter_space();
  const auto compiled = expr::CompiledExpr::compile(cost, space.names());

  std::printf("=== compiled expression tape vs recursive walk ===\n\n");
  std::printf("tape: %zu instructions\n%s\n", compiled.tape_size(),
              compiled.disassemble().c_str());

  // The Fig. 5 grid workload: T1 × T2 over the figure box, T1 fastest.
  const std::size_t rows = grid * grid;
  std::vector<double> points(rows * 2);
  {
    std::size_t k = 0;
    for (std::size_t j = 0; j < grid; ++j) {
      for (std::size_t i = 0; i < grid; ++i) {
        points[2 * k] =
            15.0 + 5.0 * static_cast<double>(i) / static_cast<double>(grid - 1);
        points[2 * k + 1] =
            15.0 + 3.0 * static_cast<double>(j) / static_cast<double>(grid - 1);
        ++k;
      }
    }
  }

  // --- strategy 1: recursive tree walk (the pre-compilation objective) ----
  std::vector<double> tree_values(rows);
  const double tree_s = best_time(repeats, [&] {
    std::vector<double> x(2);
    for (std::size_t r = 0; r < rows; ++r) {
      x[0] = points[2 * r];
      x[1] = points[2 * r + 1];
      tree_values[r] = cost.evaluate(space.assignment(x));
    }
  });

  // --- strategy 2: compiled tape, scalar calls ---------------------------
  std::vector<double> tape_values(rows);
  const double tape_s = best_time(repeats, [&] {
    for (std::size_t r = 0; r < rows; ++r) {
      tape_values[r] =
          compiled.evaluate(std::span<const double>(&points[2 * r], 2));
    }
  });

  // --- strategy 3: compiled batch, one thread ----------------------------
  std::vector<double> batch_values(rows);
  const double batch1_s = best_time(
      repeats, [&] { compiled.evaluate_batch(points, batch_values); });

  // --- strategy 4: compiled batch over the thread pool -------------------
  ThreadPool& pool = ThreadPool::shared();
  std::vector<double> parallel_values(rows);
  const double batchn_s = best_time(repeats, [&] {
    compiled.evaluate_batch(points, parallel_values, pool);
  });

  const bool surfaces_identical = tree_values == tape_values &&
                                  tree_values == batch_values &&
                                  tree_values == parallel_values;

  const double tree_ns = 1e9 * tree_s / static_cast<double>(rows);
  const double tape_ns = 1e9 * tape_s / static_cast<double>(rows);
  const double batch1_ns = 1e9 * batch1_s / static_cast<double>(rows);
  const double batchn_ns = 1e9 * batchn_s / static_cast<double>(rows);

  std::printf("grid workload: %zu points (%zu x %zu), best of %d\n", rows,
              grid, grid, repeats);
  std::printf("  tree walk          : %8.1f ns/eval   1.00x\n", tree_ns);
  std::printf("  compiled tape      : %8.1f ns/eval   %.2fx\n", tape_ns,
              tree_ns / tape_ns);
  std::printf("  batch, 1 thread    : %8.1f ns/eval   %.2fx\n", batch1_ns,
              tree_ns / batch1_ns);
  std::printf("  batch, %2zu threads  : %8.1f ns/eval   %.2fx\n",
              pool.thread_count(), batchn_ns, tree_ns / batchn_ns);
  std::printf("  surfaces bitwise-identical: %s\n\n",
              surfaces_identical ? "yes" : "NO — BUG");

  // --- identical optima through the solvers ------------------------------
  opt::Problem tree_problem;
  tree_problem.bounds = space.box();
  tree_problem.objective = [&space, &cost](std::span<const double> x) {
    return cost.evaluate(space.assignment(x));
  };
  const opt::Problem compiled_problem = optimizer.problem();

  const opt::GridSearch grid_search(33, 5);
  const auto grid_tree = grid_search.minimize(tree_problem);
  const auto grid_compiled = grid_search.minimize(compiled_problem);
  const bool grid_identical = grid_tree.value == grid_compiled.value &&
                              grid_tree.argmin == grid_compiled.argmin;

  opt::DifferentialEvolution::Settings de_settings;
  de_settings.generations = 100;
  const opt::DifferentialEvolution de(de_settings);
  const auto de_tree = de.minimize(tree_problem);
  const auto de_compiled = de.minimize(compiled_problem);
  const bool de_identical = de_tree.value == de_compiled.value &&
                            de_tree.argmin == de_compiled.argmin;

  std::printf("GridSearch optimum  (tree)     T1=%.6f T2=%.6f cost=%.10g\n",
              grid_tree.argmin[0], grid_tree.argmin[1], grid_tree.value);
  std::printf("GridSearch optimum  (compiled) T1=%.6f T2=%.6f cost=%.10g\n",
              grid_compiled.argmin[0], grid_compiled.argmin[1],
              grid_compiled.value);
  std::printf("  bitwise-identical: %s\n", grid_identical ? "yes" : "NO");
  std::printf("DE optimum          (tree)     T1=%.6f T2=%.6f cost=%.10g\n",
              de_tree.argmin[0], de_tree.argmin[1], de_tree.value);
  std::printf("DE optimum          (compiled) T1=%.6f T2=%.6f cost=%.10g\n",
              de_compiled.argmin[0], de_compiled.argmin[1], de_compiled.value);
  std::printf("  bitwise-identical: %s\n", de_identical ? "yes" : "NO");
  std::printf("paper optimum:                 T1=19       T2=15.6\n");

  const bool tape_fast_enough = tree_ns / batch1_ns >= 3.0;
  std::printf("\nsingle-threaded compiled speedup >= 3x: %s\n",
              tape_fast_enough ? "yes" : "NO");

  if (!json_path.empty()) {
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"grid_points\": %zu,\n"
                 "  \"repeats\": %d,\n"
                 "  \"threads\": %zu,\n"
                 "  \"tree_ns_per_eval\": %.3f,\n"
                 "  \"tape_ns_per_eval\": %.3f,\n"
                 "  \"batch1_ns_per_eval\": %.3f,\n"
                 "  \"batchn_ns_per_eval\": %.3f,\n"
                 "  \"speedup_tape\": %.3f,\n"
                 "  \"speedup_batch1\": %.3f,\n"
                 "  \"speedup_batchn\": %.3f,\n"
                 "  \"surfaces_identical\": %s,\n"
                 "  \"grid_search_identical\": %s,\n"
                 "  \"de_identical\": %s\n"
                 "}\n",
                 rows, repeats, pool.thread_count(), tree_ns, tape_ns,
                 batch1_ns, batchn_ns, tree_ns / tape_ns, tree_ns / batch1_ns,
                 tree_ns / batchn_ns, surfaces_identical ? "true" : "false",
                 grid_identical ? "true" : "false",
                 de_identical ? "true" : "false");
    std::fclose(f);
    std::printf("json written to %s\n", json_path.c_str());
  }

  const bool ok = surfaces_identical && grid_identical && de_identical;
  return ok ? 0 : 1;
}
