// Special functions needed by the distribution layer: the standard normal
// pdf/cdf/quantile, the regularized incomplete gamma and beta functions, and
// log-gamma. Implementations follow the classical series / continued-fraction
// expansions (Abramowitz & Stegun; Press et al.) and are accurate to ~1e-12
// over the ranges the library exercises, which the test suite pins down.
#ifndef SAFEOPT_STATS_SPECIAL_FUNCTIONS_H
#define SAFEOPT_STATS_SPECIAL_FUNCTIONS_H

namespace safeopt::stats {

/// Standard normal density φ(x).
[[nodiscard]] double normal_pdf(double x) noexcept;

/// Standard normal distribution function Φ(x), computed via erfc for accuracy
/// deep in the tails (|x| up to ~37 before underflow).
[[nodiscard]] double normal_cdf(double x) noexcept;

/// Upper tail 1 − Φ(x) without cancellation: stays accurate (~1e-300) far
/// beyond the ~8σ point where 1.0 − normal_cdf(x) rounds to zero. Rare-event
/// safety analysis lives in exactly that regime.
[[nodiscard]] double normal_survival(double x) noexcept;

/// Inverse of Φ. Precondition: 0 < p < 1. Uses Acklam's rational approximation
/// refined by one Halley step (absolute error < 1e-14).
[[nodiscard]] double normal_quantile(double p) noexcept;

/// ln Γ(x) for x > 0.
[[nodiscard]] double log_gamma(double x) noexcept;

/// Regularized lower incomplete gamma P(a, x) = γ(a,x)/Γ(a), a > 0, x >= 0.
[[nodiscard]] double regularized_gamma_p(double a, double x) noexcept;

/// Regularized upper incomplete gamma Q(a, x) = 1 − P(a, x).
[[nodiscard]] double regularized_gamma_q(double a, double x) noexcept;

/// Regularized incomplete beta I_x(a, b), a,b > 0, 0 <= x <= 1.
[[nodiscard]] double regularized_beta(double a, double b, double x) noexcept;

}  // namespace safeopt::stats

#endif  // SAFEOPT_STATS_SPECIAL_FUNCTIONS_H
