#include "safeopt/fta/probability.h"

#include <gtest/gtest.h>

#include "../testutil/random_tree.h"

namespace safeopt::fta {
namespace {

/// top = OR(a, AND(b, c)) with P(a)=0.01, P(b)=0.1, P(c)=0.2.
struct SmallModel {
  SmallModel() : tree("small") {
    const NodeId a = tree.add_basic_event("a");
    const NodeId b = tree.add_basic_event("b");
    const NodeId c = tree.add_basic_event("c");
    const NodeId g = tree.add_and("g", {b, c});
    tree.set_top(tree.add_or("top", {a, g}));
    input = QuantificationInput::for_tree(tree, 0.0);
    input.set(tree, "a", 0.01);
    input.set(tree, "b", 0.1);
    input.set(tree, "c", 0.2);
  }
  FaultTree tree;
  QuantificationInput input;
};

TEST(CutSetProbabilityTest, ProductOfEventProbabilities) {
  const SmallModel m;
  const CutSetCollection mcs = minimal_cut_sets(m.tree);
  ASSERT_EQ(mcs.size(), 2u);
  // Paper Eq. 1: P(MCS) = ∏ P(PF).
  EXPECT_NEAR(cut_set_probability(mcs[0], m.input), 0.01, 1e-15);   // {a}
  EXPECT_NEAR(cut_set_probability(mcs[1], m.input), 0.02, 1e-15);   // {b,c}
}

TEST(CutSetProbabilityTest, ConstraintProbabilityMultiplies) {
  // Paper Eq. 2: P(CS) = P(Constraints) · ∏ P(PF).
  FaultTree tree("inhibit");
  const NodeId cause = tree.add_basic_event("cooling_failure");
  const NodeId condition = tree.add_condition("system_running");
  tree.set_top(tree.add_inhibit("top", cause, condition));
  QuantificationInput input = QuantificationInput::for_tree(tree, 0.0);
  input.set(tree, "cooling_failure", 0.05);
  input.set(tree, "system_running", 0.6);
  const CutSetCollection mcs = minimal_cut_sets(tree);
  ASSERT_EQ(mcs.size(), 1u);
  EXPECT_NEAR(cut_set_probability(mcs[0], input), 0.05 * 0.6, 1e-15);
  // Worst-case constraints (P=1) recover classical quantitative FTA.
  input.set(tree, "system_running", 1.0);
  EXPECT_NEAR(cut_set_probability(mcs[0], input), 0.05, 1e-15);
}

TEST(TopEventProbabilityTest, RareEventIsSumOfCutSets) {
  const SmallModel m;
  const CutSetCollection mcs = minimal_cut_sets(m.tree);
  EXPECT_NEAR(top_event_probability(mcs, m.input,
                                    ProbabilityMethod::kRareEvent),
              0.03, 1e-15);
}

TEST(TopEventProbabilityTest, McubIsOneMinusProduct) {
  const SmallModel m;
  const CutSetCollection mcs = minimal_cut_sets(m.tree);
  EXPECT_NEAR(top_event_probability(mcs, m.input,
                                    ProbabilityMethod::kMinCutUpperBound),
              1.0 - 0.99 * 0.98, 1e-15);
}

TEST(TopEventProbabilityTest, InclusionExclusionIsExact) {
  const SmallModel m;
  const CutSetCollection mcs = minimal_cut_sets(m.tree);
  const double exact = exact_probability_bruteforce(m.tree, m.input);
  EXPECT_NEAR(top_event_probability(mcs, m.input,
                                    ProbabilityMethod::kInclusionExclusion),
              exact, 1e-14);
  // P(a ∪ bc) = 0.01 + 0.02 − 0.01·0.02.
  EXPECT_NEAR(exact, 0.03 - 0.0002, 1e-14);
}

TEST(TopEventProbabilityTest, RareEventClampsAtOne) {
  FaultTree tree("big");
  const NodeId a = tree.add_basic_event("a");
  const NodeId b = tree.add_basic_event("b");
  tree.set_top(tree.add_or("top", {a, b}));
  QuantificationInput input = QuantificationInput::for_tree(tree, 0.9);
  const CutSetCollection mcs = minimal_cut_sets(tree);
  EXPECT_DOUBLE_EQ(
      top_event_probability(mcs, input, ProbabilityMethod::kRareEvent), 1.0);
}

TEST(ExactBruteForceTest, HandlesConditionsAsBernoulli) {
  FaultTree tree("inhibit");
  const NodeId cause = tree.add_basic_event("pf");
  const NodeId condition = tree.add_condition("env");
  tree.set_top(tree.add_inhibit("top", cause, condition));
  QuantificationInput input = QuantificationInput::for_tree(tree, 0.0);
  input.set(tree, "pf", 0.3);
  input.set(tree, "env", 0.5);
  EXPECT_NEAR(exact_probability_bruteforce(tree, input), 0.15, 1e-15);
}

TEST(ExactBruteForceTest, XorIsExactlyOne) {
  FaultTree tree("xor");
  const NodeId a = tree.add_basic_event("a");
  const NodeId b = tree.add_basic_event("b");
  tree.set_top(tree.add_xor("top", {a, b}));
  QuantificationInput input = QuantificationInput::for_tree(tree, 0.5);
  // P(exactly one of two fair coins) = 0.5.
  EXPECT_NEAR(exact_probability_bruteforce(tree, input), 0.5, 1e-15);
}

TEST(ConstraintCombinationTest, DependentBoundUsesTheMinimum) {
  // Paper §II-D.1: with possibly dependent constraints, the product is no
  // longer valid but min P(condition) still bounds P(∩ conditions).
  FaultTree tree("two-cond");
  const NodeId pf = tree.add_basic_event("pf");
  const NodeId c1 = tree.add_condition("c1");
  const NodeId c2 = tree.add_condition("c2");
  const NodeId inner = tree.add_inhibit("inner", pf, c1);
  tree.set_top(tree.add_inhibit("top", inner, c2));
  QuantificationInput input = QuantificationInput::for_tree(tree, 0.0);
  input.set(tree, "pf", 0.1);
  input.set(tree, "c1", 0.5);
  input.set(tree, "c2", 0.3);
  const CutSetCollection mcs = minimal_cut_sets(tree);
  ASSERT_EQ(mcs.size(), 1u);
  EXPECT_NEAR(cut_set_probability(mcs[0], input,
                                  ConstraintCombination::kIndependentProduct),
              0.1 * 0.5 * 0.3, 1e-15);
  EXPECT_NEAR(cut_set_probability(mcs[0], input,
                                  ConstraintCombination::kDependentUpperBound),
              0.1 * 0.3, 1e-15);
}

TEST(ConstraintCombinationTest, DependentBoundDominatesProduct) {
  // min >= product for probabilities, so the dependent bound is always the
  // more conservative quantification.
  FaultTree tree("cmp");
  const NodeId pf = tree.add_basic_event("pf");
  const NodeId c1 = tree.add_condition("c1");
  const NodeId c2 = tree.add_condition("c2");
  const NodeId inner = tree.add_inhibit("inner", pf, c1);
  tree.set_top(tree.add_inhibit("top", inner, c2));
  const CutSetCollection mcs = minimal_cut_sets(tree);
  for (const double p1 : {0.1, 0.5, 0.9}) {
    for (const double p2 : {0.2, 0.6, 1.0}) {
      QuantificationInput input = QuantificationInput::for_tree(tree, 0.05);
      input.set(tree, "c1", p1);
      input.set(tree, "c2", p2);
      EXPECT_GE(
          top_event_probability(mcs, input, ProbabilityMethod::kRareEvent,
                                ConstraintCombination::kDependentUpperBound),
          top_event_probability(mcs, input, ProbabilityMethod::kRareEvent,
                                ConstraintCombination::kIndependentProduct) -
              1e-15);
    }
  }
}

TEST(QuantificationInputTest, ForTreeDefaults) {
  FaultTree tree("defaults");
  const NodeId a = tree.add_basic_event("a");
  const NodeId c = tree.add_condition("c");
  tree.set_top(tree.add_inhibit("top", a, c));
  const QuantificationInput input = QuantificationInput::for_tree(tree, 0.25);
  EXPECT_TRUE(input.is_valid_for(tree));
  EXPECT_DOUBLE_EQ(input.basic_event_probability[0], 0.25);
  // Conditions default to 1 — the paper's worst-case environment.
  EXPECT_DOUBLE_EQ(input.condition_probability[0], 1.0);
}

// --------------------------------------------------------------- properties

class MethodOrdering : public ::testing::TestWithParam<std::uint64_t> {};

// For coherent trees with independent leaves:
//   exact <= MCUB <= rare-event sum (first Bonferroni bound).
TEST_P(MethodOrdering, ExactBelowMcubBelowRareEvent) {
  const FaultTree tree = testutil::random_tree(
      GetParam(), {.basic_events = 6, .conditions = 1, .gates = 5});
  const QuantificationInput input =
      testutil::random_probabilities(tree, GetParam());
  const CutSetCollection mcs = minimal_cut_sets(tree);
  const double exact = exact_probability_bruteforce(tree, input);
  const double mcub = top_event_probability(
      mcs, input, ProbabilityMethod::kMinCutUpperBound);
  const double rare =
      top_event_probability(mcs, input, ProbabilityMethod::kRareEvent);
  EXPECT_LE(exact, mcub + 1e-12) << "seed " << GetParam();
  EXPECT_LE(mcub, rare + 1e-12) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, MethodOrdering,
                         ::testing::Range<std::uint64_t>(0, 40));

class InclusionExclusionExactness
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(InclusionExclusionExactness, MatchesBruteForce) {
  const FaultTree tree = testutil::random_tree(
      GetParam(), {.basic_events = 5, .conditions = 0, .gates = 4});
  const QuantificationInput input =
      testutil::random_probabilities(tree, GetParam());
  const CutSetCollection mcs = minimal_cut_sets(tree);
  if (mcs.size() > 20) GTEST_SKIP() << "too many cut sets for IE";
  const double exact = exact_probability_bruteforce(tree, input);
  const double ie = top_event_probability(
      mcs, input, ProbabilityMethod::kInclusionExclusion);
  EXPECT_NEAR(ie, exact, 1e-10) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, InclusionExclusionExactness,
                         ::testing::Range<std::uint64_t>(200, 230));

class RareEventAccuracy : public ::testing::TestWithParam<std::uint64_t> {};

// With small failure probabilities the rare-event approximation is tight —
// the regime justifying the paper's Eq. 1 ("failure probabilities are very
// small").
TEST_P(RareEventAccuracy, TightForSmallProbabilities) {
  const FaultTree tree = testutil::random_tree(
      GetParam(), {.basic_events = 6, .conditions = 1, .gates = 5});
  const QuantificationInput input =
      testutil::random_probabilities(tree, GetParam(), 1e-5, 1e-3);
  const CutSetCollection mcs = minimal_cut_sets(tree);
  const double exact = exact_probability_bruteforce(tree, input);
  const double rare =
      top_event_probability(mcs, input, ProbabilityMethod::kRareEvent);
  if (exact > 0.0) {
    EXPECT_NEAR(rare / exact, 1.0, 1e-2) << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RareEventAccuracy,
                         ::testing::Range<std::uint64_t>(300, 320));

}  // namespace
}  // namespace safeopt::fta
