// The "avx512" evaluation backend: explicit 512-bit kernels for the lane
// loops, compiled with -mavx512f -mavx512dq -mavx512vl -ffp-contract=off
// (see CMakeLists.txt). Structure and bitwise rules mirror backend_avx2.cpp
// — IEEE-exact ops vectorize 8-wide, VMINPD/VMAXPD operands are swapped so
// the "second source wins" rule reproduces std::min/std::max, the sign flip
// is a DQ 512-bit XOR, and transcendentals / the cdf-survival memo / kCall
// keep the generic kernel's exact scalar call sequence. Everything has
// internal linkage so no AVX-512-compiled helper can be merged over a
// baseline instantiation from another TU.
#include "backend_factories.h"
#include "safeopt/expr/cpu_features.h"
#include "safeopt/expr/eval_backend.h"

#if defined(__AVX512F__) && defined(__AVX512DQ__)

#include <immintrin.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>

namespace safeopt::expr {

namespace {

constexpr std::size_t kMemoMask = CompiledExpr::kMemoEntries - 1;
inline std::size_t memo_index(double x) noexcept {
  const std::uint64_t bits =
      std::bit_cast<std::uint64_t>(x) * 0x9e3779b97f4a7c15ULL;
  return static_cast<std::size_t>(bits >> 53) & kMemoMask;
}

template <std::size_t L, typename F>
inline void map_lanes_uniform(const double* a, double* lane, F&& f) {
  const std::uint64_t first = std::bit_cast<std::uint64_t>(a[0]);
  bool uniform = true;
  for (std::size_t l = 1; l < L; ++l) {
    uniform &= std::bit_cast<std::uint64_t>(a[l]) == first;
  }
  if (uniform) {
    const double v = f(a[0]);
    for (std::size_t l = 0; l < L; ++l) lane[l] = v;
    return;
  }
  for (std::size_t l = 0; l < L; ++l) lane[l] = f(a[l]);
}

template <std::size_t L>
void forward_block(const CompiledExpr& expr, const double* points,
                   std::size_t dim, double* out,
                   CompiledExpr::LaneScratch& scratch) {
  static_assert(L % 8 == 0);
  using OpCode = CompiledExpr::OpCode;
  const std::span<const CompiledExpr::Instruction> tape = expr.tape();
  const std::size_t n = tape.size();
  double* const slab = scratch.slab.data();
  const auto slot_of = [n](std::uint32_t s) {
    return std::min<std::size_t>(s, n - 1);
  };
  for (std::size_t i = 0; i < n; ++i) {
    const CompiledExpr::Instruction& ins = tape[i];
    double* const lane = slab + i * L;
    const double* const a = slab + slot_of(ins.a) * L;
    const double* const b = slab + slot_of(ins.b) * L;
    switch (ins.op) {
      case OpCode::kConst: {
        const __m512d v = _mm512_set1_pd(ins.imm);
        for (std::size_t l = 0; l < L; l += 8) _mm512_storeu_pd(lane + l, v);
        break;
      }
      case OpCode::kParam:
        for (std::size_t l = 0; l < L; ++l) lane[l] = points[l * dim + ins.a];
        break;
      case OpCode::kAdd:
        for (std::size_t l = 0; l < L; l += 8) {
          _mm512_storeu_pd(lane + l, _mm512_add_pd(_mm512_loadu_pd(a + l),
                                                   _mm512_loadu_pd(b + l)));
        }
        break;
      case OpCode::kSub:
        for (std::size_t l = 0; l < L; l += 8) {
          _mm512_storeu_pd(lane + l, _mm512_sub_pd(_mm512_loadu_pd(a + l),
                                                   _mm512_loadu_pd(b + l)));
        }
        break;
      case OpCode::kMul:
        for (std::size_t l = 0; l < L; l += 8) {
          _mm512_storeu_pd(lane + l, _mm512_mul_pd(_mm512_loadu_pd(a + l),
                                                   _mm512_loadu_pd(b + l)));
        }
        break;
      case OpCode::kDiv:
        for (std::size_t l = 0; l < L; l += 8) {
          _mm512_storeu_pd(lane + l, _mm512_div_pd(_mm512_loadu_pd(a + l),
                                                   _mm512_loadu_pd(b + l)));
        }
        break;
      case OpCode::kMin:
        // Operand order swapped: VMINPD(b, a) == std::min(a, b) bitwise
        // (NaN and ±0 ties resolve to the second source; see the AVX2
        // kernel for the full argument).
        for (std::size_t l = 0; l < L; l += 8) {
          _mm512_storeu_pd(lane + l, _mm512_min_pd(_mm512_loadu_pd(b + l),
                                                   _mm512_loadu_pd(a + l)));
        }
        break;
      case OpCode::kMax:
        for (std::size_t l = 0; l < L; l += 8) {
          _mm512_storeu_pd(lane + l, _mm512_max_pd(_mm512_loadu_pd(b + l),
                                                   _mm512_loadu_pd(a + l)));
        }
        break;
      case OpCode::kAddImm: {
        const __m512d imm = _mm512_set1_pd(ins.imm);
        for (std::size_t l = 0; l < L; l += 8) {
          _mm512_storeu_pd(lane + l,
                           _mm512_add_pd(_mm512_loadu_pd(a + l), imm));
        }
        break;
      }
      case OpCode::kSubImm: {
        const __m512d imm = _mm512_set1_pd(ins.imm);
        for (std::size_t l = 0; l < L; l += 8) {
          _mm512_storeu_pd(lane + l,
                           _mm512_sub_pd(_mm512_loadu_pd(a + l), imm));
        }
        break;
      }
      case OpCode::kRsubImm: {
        const __m512d imm = _mm512_set1_pd(ins.imm);
        for (std::size_t l = 0; l < L; l += 8) {
          _mm512_storeu_pd(lane + l,
                           _mm512_sub_pd(imm, _mm512_loadu_pd(a + l)));
        }
        break;
      }
      case OpCode::kMulImm: {
        const __m512d imm = _mm512_set1_pd(ins.imm);
        for (std::size_t l = 0; l < L; l += 8) {
          _mm512_storeu_pd(lane + l,
                           _mm512_mul_pd(_mm512_loadu_pd(a + l), imm));
        }
        break;
      }
      case OpCode::kDivImm: {
        const __m512d imm = _mm512_set1_pd(ins.imm);
        for (std::size_t l = 0; l < L; l += 8) {
          _mm512_storeu_pd(lane + l,
                           _mm512_div_pd(_mm512_loadu_pd(a + l), imm));
        }
        break;
      }
      case OpCode::kRdivImm: {
        const __m512d imm = _mm512_set1_pd(ins.imm);
        for (std::size_t l = 0; l < L; l += 8) {
          _mm512_storeu_pd(lane + l,
                           _mm512_div_pd(imm, _mm512_loadu_pd(a + l)));
        }
        break;
      }
      case OpCode::kNeg: {
        const __m512d sign = _mm512_set1_pd(-0.0);
        for (std::size_t l = 0; l < L; l += 8) {
          _mm512_storeu_pd(lane + l,
                           _mm512_xor_pd(_mm512_loadu_pd(a + l), sign));
        }
        break;
      }
      case OpCode::kSqrt:
        for (std::size_t l = 0; l < L; l += 8) {
          _mm512_storeu_pd(lane + l, _mm512_sqrt_pd(_mm512_loadu_pd(a + l)));
        }
        break;
      case OpCode::kExp:
        map_lanes_uniform<L>(a, lane, [](double x) { return std::exp(x); });
        break;
      case OpCode::kLog:
        map_lanes_uniform<L>(a, lane, [](double x) { return std::log(x); });
        break;
      case OpCode::kPow:
        map_lanes_uniform<L>(a, lane, [imm = ins.imm](double x) {
          return std::pow(x, imm);
        });
        break;
      case OpCode::kCdf:
      case OpCode::kSurvival: {
        const stats::Distribution& dist = expr.distribution_at(ins.b);
        const bool survival = ins.op == OpCode::kSurvival;
        double* const site_arg =
            scratch.memo_arg.data() +
            static_cast<std::size_t>(ins.c) * CompiledExpr::kMemoEntries;
        double* const site_val =
            scratch.memo_val.data() +
            static_cast<std::size_t>(ins.c) * CompiledExpr::kMemoEntries;
        for (std::size_t l = 0; l < L; ++l) {
          const double x = a[l];
          const std::size_t slot = memo_index(x);
          if (site_arg[slot] == x) {
            lane[l] = site_val[slot];
            continue;
          }
          const double v = survival ? dist.survival(x) : dist.cdf(x);
          site_arg[slot] = x;
          site_val[slot] = v;
          lane[l] = v;
        }
        break;
      }
      case OpCode::kCall:
        for (std::size_t l = 0; l < L; ++l) {
          lane[l] = expr.apply_call(ins.b, a[l]);
        }
        break;
    }
  }
  const double* const root = slab + (n - 1) * L;
  for (std::size_t l = 0; l < L; ++l) out[l] = root[l];
}

class Avx512Backend final : public EvalBackend {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "avx512";
  }
  [[nodiscard]] bool available() const noexcept override {
    const CpuFeatures& features = cpu_features();
    return features.avx512f && features.avx512dq && features.avx512vl;
  }
  [[nodiscard]] int priority() const noexcept override { return 2; }
  [[nodiscard]] std::size_t default_lane_width() const noexcept override {
    return 16;
  }
  [[nodiscard]] bool supports_lane_width(
      std::size_t width) const noexcept override {
    return width == 8 || width == 16;
  }

  void run_block(const CompiledExpr& expr, const double* points,
                 std::size_t dim, std::size_t width, double* out,
                 CompiledExpr::LaneScratch& scratch) const override {
    switch (width) {
      case 8: forward_block<8>(expr, points, dim, out, scratch); break;
      default: forward_block<16>(expr, points, dim, out, scratch); break;
    }
  }

  void run_block_with_gradients(
      const CompiledExpr& expr, const double* points, std::size_t dim,
      std::size_t width, double* values, double* gradients,
      CompiledExpr::LaneScratch& scratch) const override {
    run_block(expr, points, dim, width, values, scratch);
    expr.run_generic_adjoint_block(dim, width, gradients, scratch);
  }
};

}  // namespace

namespace detail {

std::unique_ptr<EvalBackend> make_avx512_backend() {
  return std::make_unique<Avx512Backend>();
}

}  // namespace detail

}  // namespace safeopt::expr

#else  // no AVX-512 support in this TU

namespace safeopt::expr::detail {

std::unique_ptr<EvalBackend> make_avx512_backend() { return nullptr; }

}  // namespace safeopt::expr::detail

#endif
