// Vector-forward-mode automatic differentiation. A Dual carries a value plus
// the gradient with respect to a fixed ordered list of free parameters; all
// directional derivatives propagate in one evaluation pass. Used to give the
// optimization layer exact gradients of parameterized hazard probabilities
// (paper Eqs. 3-6) instead of finite differences.
#ifndef SAFEOPT_EXPR_DUAL_H
#define SAFEOPT_EXPR_DUAL_H

#include <cmath>
#include <cstddef>
#include <vector>

#include "safeopt/support/contracts.h"

namespace safeopt::expr {

/// Value + gradient pair for forward-mode autodiff.
class Dual {
 public:
  Dual() = default;
  /// A constant: value with zero gradient in `dims` directions.
  Dual(double value, std::size_t dims) : value_(value), grad_(dims, 0.0) {}
  /// A seed variable: unit derivative in direction `index`.
  static Dual variable(double value, std::size_t dims, std::size_t index) {
    SAFEOPT_EXPECTS(index < dims);
    Dual d(value, dims);
    d.grad_[index] = 1.0;
    return d;
  }

  [[nodiscard]] double value() const noexcept { return value_; }
  [[nodiscard]] const std::vector<double>& grad() const noexcept {
    return grad_;
  }
  [[nodiscard]] double grad(std::size_t i) const noexcept {
    SAFEOPT_EXPECTS(i < grad_.size());
    return grad_[i];
  }
  [[nodiscard]] std::size_t dims() const noexcept { return grad_.size(); }

  friend Dual operator+(const Dual& a, const Dual& b) {
    SAFEOPT_EXPECTS(a.dims() == b.dims());
    Dual r = a;
    r.value_ += b.value_;
    for (std::size_t i = 0; i < r.grad_.size(); ++i) r.grad_[i] += b.grad_[i];
    return r;
  }

  friend Dual operator-(const Dual& a, const Dual& b) {
    SAFEOPT_EXPECTS(a.dims() == b.dims());
    Dual r = a;
    r.value_ -= b.value_;
    for (std::size_t i = 0; i < r.grad_.size(); ++i) r.grad_[i] -= b.grad_[i];
    return r;
  }

  friend Dual operator-(const Dual& a) {
    Dual r = a;
    r.value_ = -r.value_;
    for (double& g : r.grad_) g = -g;
    return r;
  }

  friend Dual operator*(const Dual& a, const Dual& b) {
    SAFEOPT_EXPECTS(a.dims() == b.dims());
    Dual r(a.value_ * b.value_, a.dims());
    for (std::size_t i = 0; i < r.grad_.size(); ++i) {
      r.grad_[i] = a.grad_[i] * b.value_ + a.value_ * b.grad_[i];
    }
    return r;
  }

  friend Dual operator/(const Dual& a, const Dual& b) {
    SAFEOPT_EXPECTS(a.dims() == b.dims());
    Dual r(a.value_ / b.value_, a.dims());
    const double inv_b2 = 1.0 / (b.value_ * b.value_);
    for (std::size_t i = 0; i < r.grad_.size(); ++i) {
      r.grad_[i] =
          (a.grad_[i] * b.value_ - a.value_ * b.grad_[i]) * inv_b2;
    }
    return r;
  }

  /// Chain rule for a scalar function: f(a) with derivative df at a.value().
  [[nodiscard]] Dual chain(double f_value, double df) const {
    Dual r(f_value, dims());
    for (std::size_t i = 0; i < r.grad_.size(); ++i) {
      r.grad_[i] = df * grad_[i];
    }
    return r;
  }

 private:
  double value_ = 0.0;
  std::vector<double> grad_;
};

inline Dual exp(const Dual& a) {
  const double e = std::exp(a.value());
  return a.chain(e, e);
}

inline Dual log(const Dual& a) {
  return a.chain(std::log(a.value()), 1.0 / a.value());
}

inline Dual sqrt(const Dual& a) {
  const double s = std::sqrt(a.value());
  return a.chain(s, 0.5 / s);
}

inline Dual pow(const Dual& a, double p) {
  return a.chain(std::pow(a.value(), p), p * std::pow(a.value(), p - 1.0));
}

/// min/max propagate the gradient of the selected branch (a subgradient at
/// the tie point, where we arbitrarily pick the first argument).
inline Dual min(const Dual& a, const Dual& b) {
  return a.value() <= b.value() ? a : b;
}

inline Dual max(const Dual& a, const Dual& b) {
  return a.value() >= b.value() ? a : b;
}

}  // namespace safeopt::expr

#endif  // SAFEOPT_EXPR_DUAL_H
