#include "safeopt/elbtunnel/elbtunnel_model.h"

#include <cmath>
#include <memory>

#include "safeopt/stats/distribution.h"
#include "safeopt/support/contracts.h"

namespace safeopt::elbtunnel {

using expr::constant;
using expr::Expr;
using expr::parameter;

ElbtunnelModel::ElbtunnelModel(ModelParameters parameters)
    : params_(parameters) {
  SAFEOPT_EXPECTS(params_.transit_sigma_min > 0.0);
  SAFEOPT_EXPECTS(params_.hv_left_rate_per_min > 0.0);
  SAFEOPT_EXPECTS(params_.timer_lower_min < params_.timer_upper_min);
}

core::ParameterSpace ElbtunnelModel::parameter_space() const {
  return core::ParameterSpace{
      {"T1", params_.timer_lower_min, params_.timer_upper_min, "min",
       "runtime of timer 1 (LBpost arming window)"},
      {"T2", params_.timer_lower_min, params_.timer_upper_min, "min",
       "runtime of timer 2 (ODfinal arming window)"}};
}

expr::ParameterAssignment ElbtunnelModel::engineers_guess() const {
  return {{"T1", params_.engineers_timer_guess_min},
          {"T2", params_.engineers_timer_guess_min}};
}

Expr ElbtunnelModel::transit_survival(const char* name) const {
  const auto transit = std::make_shared<stats::TruncatedNormal>(
      stats::TruncatedNormal::nonnegative(params_.transit_mean_min,
                                          params_.transit_sigma_min));
  // P(OT)(T) = 1 − P(Time <= T): paper §IV-C.
  return expr::survival(transit, parameter(name));
}

Expr ElbtunnelModel::p_overtime1() const { return transit_survival("T1"); }
Expr ElbtunnelModel::p_overtime2() const { return transit_survival("T2"); }

Expr ElbtunnelModel::p_fd_lbpost() const {
  return expr::poisson_exposure(params_.fd_lbpost_rate_per_min,
                                parameter("T1"));
}

Expr ElbtunnelModel::p_hv_odfinal(Design design) const {
  const double rate = params_.hv_left_rate_per_min;
  switch (design) {
    case Design::kBaseline:
      // ODfinal armed for the full timer runtime after an LBpost passage.
      return expr::poisson_exposure(rate, parameter("T2"));
    case Design::kWithLB4: {
      // The tube-4 light barrier stops timer 2 when the OHV leaves zone 2:
      // the armed window is min(T2, D) with D the zone-2 transit time, so
      // P = E_D[1 − exp(−λ·min(T2, D))], evaluated by Simpson quadrature
      // over the truncated-normal transit density.
      const stats::TruncatedNormal transit =
          stats::TruncatedNormal::nonnegative(params_.transit_mean_min,
                                              params_.transit_sigma_min);
      const auto expectation = [rate, transit](double t2) {
        if (t2 <= 0.0) return 0.0;
        constexpr int kIntervals = 512;  // even; Simpson's rule
        const double h = t2 / kIntervals;
        double integral = 0.0;
        for (int i = 0; i <= kIntervals; ++i) {
          const double t = static_cast<double>(i) * h;
          const double weight =
              (i == 0 || i == kIntervals) ? 1.0 : (i % 2 == 1 ? 4.0 : 2.0);
          integral += weight * (1.0 - std::exp(-rate * t)) * transit.pdf(t);
        }
        integral *= h / 3.0;
        // Transits longer than T2 keep the window at the full T2.
        return integral +
               (1.0 - std::exp(-rate * t2)) * (1.0 - transit.cdf(t2));
      };
      return expr::function1("E_minT2_exposure", expectation, {},
                             parameter("T2"));
    }
    case Design::kLightBarrierAtODfinal:
      // ODfinal consulted only while an OHV occupies the light barrier at
      // its location: a fixed exposure window, independent of T2.
      return constant(1.0 -
                      std::exp(-rate * params_.lb_passage_window_min));
  }
  SAFEOPT_ASSERT(false);
  return constant(0.0);
}

Expr ElbtunnelModel::collision_probability() const {
  const Expr ot1 = p_overtime1();
  const Expr ot2 = p_overtime2();
  // Paper §IV-B.3: P(HCol) = Pconst1 + P(OHVcrit)·P(OT1)
  //                        + P(OHVcrit)·(1 − P(OT1))·P(OT2).
  return constant(params_.p_const1) +
         params_.p_ohv_critical * (ot1 + (1.0 - ot1) * ot2);
}

Expr ElbtunnelModel::false_alarm_probability(Design design) const {
  // Pconstraint1 = P(OHV) + (1 − P(OHV))·P(FDLBpre)·P(FDLBpost)(T1).
  const Expr armed = constant(params_.p_ohv) +
                     (1.0 - params_.p_ohv) * params_.p_fd_lbpre *
                         p_fd_lbpost();
  return constant(params_.p_const2) + armed * p_hv_odfinal(design);
}

Expr ElbtunnelModel::false_alarm_given_ohv(Design design) const {
  // Fig. 6: the constraint probability P(OHV) is forced to 1; the residual
  // Pconst2 and the FD path are negligible against it and dropped, exactly
  // as in the paper's figure.
  return p_hv_odfinal(design);
}

core::CostModel ElbtunnelModel::cost_model() const {
  core::CostModel model;
  model.add_hazard(
      {"HCol", collision_probability(), params_.cost_collision});
  model.add_hazard(
      {"HAlr", false_alarm_probability(), params_.cost_false_alarm});
  return model;
}

core::SafetyOptimizer ElbtunnelModel::optimizer() const {
  return core::SafetyOptimizer(cost_model(), parameter_space());
}

fta::FaultTree ElbtunnelModel::collision_tree() const {
  fta::FaultTree tree("HCol");
  const auto residual = tree.add_basic_event(
      "OtherCollisionCauses",
      "accumulated residual cut sets (Pconst1): sensor misdetections, "
      "signal failures, drivers ignoring the emergency halt");
  const auto ot1 = tree.add_basic_event(
      "OT1", "OHV needs longer than timer 1 through zone 1 (traffic jam)");
  const auto ot2 = tree.add_basic_event(
      "OT2", "OHV needs longer than timer 2 through zone 2 (traffic jam)");
  const auto critical = tree.add_condition(
      "OHVcritical", "an OHV is driving towards the west or mid tube");
  const auto g1 = tree.add_inhibit("OT1_critical", ot1, critical);
  const auto g2 = tree.add_inhibit("OT2_critical", ot2, critical);
  const auto top =
      tree.add_or("Collision", {residual, g1, g2});
  tree.set_top(top);
  return tree;
}

fta::FaultTree ElbtunnelModel::false_alarm_tree() const {
  fta::FaultTree tree("HAlr");
  const auto residual = tree.add_basic_event(
      "OtherFalseAlarmCauses",
      "accumulated residual cut sets (Pconst2): HVODleft, FDODleft, "
      "FDODfinal");
  const auto hv = tree.add_basic_event(
      "HVODfinal",
      "a high vehicle on a left lane is interpreted as an OHV by ODfinal");
  const auto armed = tree.add_condition(
      "ODfinalArmed",
      "ODfinal is active: an OHV armed it, or both light barriers had "
      "false detections");
  const auto gate = tree.add_inhibit("HVODfinal_whileArmed", hv, armed);
  const auto top = tree.add_or("FalseAlarm", {residual, gate});
  tree.set_top(top);
  return tree;
}

core::ParameterizedQuantification ElbtunnelModel::collision_quantification(
    const fta::FaultTree& tree) const {
  core::ParameterizedQuantification q(tree);
  q.set_event_probability("OtherCollisionCauses", constant(params_.p_const1));
  q.set_event_probability("OT1", p_overtime1());
  q.set_event_probability("OT2", p_overtime2());
  q.set_condition_probability("OHVcritical",
                              constant(params_.p_ohv_critical));
  return q;
}

core::ParameterizedQuantification ElbtunnelModel::false_alarm_quantification(
    const fta::FaultTree& tree) const {
  core::ParameterizedQuantification q(tree);
  q.set_event_probability("OtherFalseAlarmCauses",
                          constant(params_.p_const2));
  q.set_event_probability("HVODfinal", p_hv_odfinal(Design::kBaseline));
  // The constraint probability of §IV-B.3, attached to the INHIBIT
  // condition exactly as the paper attaches it to the cut set.
  q.set_condition_probability(
      "ODfinalArmed", constant(params_.p_ohv) +
                          (1.0 - params_.p_ohv) * params_.p_fd_lbpre *
                              p_fd_lbpost());
  return q;
}

sim::TrafficConfig ElbtunnelModel::traffic_config(double t1_min, double t2_min,
                                                  Design design) const {
  SAFEOPT_EXPECTS(t1_min > 0.0 && t2_min > 0.0);
  sim::TrafficConfig config;
  config.zone_transit_mean_min = params_.transit_mean_min;
  config.zone_transit_sigma_min = params_.transit_sigma_min;
  config.timer1_min = t1_min;
  config.timer2_min = t2_min;
  config.hv_left_lane_rate_per_min = params_.hv_left_rate_per_min;
  config.ohv_wrong_route_fraction = params_.p_ohv_critical;
  config.od_miss_detection_prob = params_.p_od_miss;
  config.lb_passage_window_min = params_.lb_passage_window_min;
  config.variant = to_sim_variant(design);
  return config;
}

sim::DesignVariant to_sim_variant(Design design) noexcept {
  switch (design) {
    case Design::kBaseline: return sim::DesignVariant::kBaseline;
    case Design::kWithLB4: return sim::DesignVariant::kWithLB4;
    case Design::kLightBarrierAtODfinal:
      return sim::DesignVariant::kLightBarrierAtODfinal;
  }
  return sim::DesignVariant::kBaseline;
}

}  // namespace safeopt::elbtunnel
