#include "safeopt/fta/probability.h"

#include <algorithm>
#include <cmath>

#include "safeopt/support/contracts.h"

namespace safeopt::fta {
namespace {

bool all_probabilities(const std::vector<double>& values) noexcept {
  return std::all_of(values.begin(), values.end(),
                     [](double p) { return p >= 0.0 && p <= 1.0; });
}

double clamp01(double p) noexcept { return std::clamp(p, 0.0, 1.0); }

}  // namespace

QuantificationInput QuantificationInput::for_tree(const FaultTree& tree,
                                                  double default_event_p) {
  SAFEOPT_EXPECTS(default_event_p >= 0.0 && default_event_p <= 1.0);
  QuantificationInput input;
  input.basic_event_probability.assign(tree.basic_event_count(),
                                       default_event_p);
  input.condition_probability.assign(tree.condition_count(), 1.0);
  return input;
}

void QuantificationInput::set(const FaultTree& tree, std::string_view name,
                              double p) {
  SAFEOPT_EXPECTS(p >= 0.0 && p <= 1.0);
  const auto id = tree.find(name);
  SAFEOPT_EXPECTS(id.has_value());
  switch (tree.kind(*id)) {
    case NodeKind::kBasicEvent:
      basic_event_probability[tree.basic_event_ordinal(*id)] = p;
      break;
    case NodeKind::kCondition:
      condition_probability[tree.condition_ordinal(*id)] = p;
      break;
    case NodeKind::kGate:
      SAFEOPT_EXPECTS(false && "cannot assign a probability to a gate");
  }
}

bool QuantificationInput::is_valid_for(const FaultTree& tree) const noexcept {
  return basic_event_probability.size() == tree.basic_event_count() &&
         condition_probability.size() == tree.condition_count() &&
         all_probabilities(basic_event_probability) &&
         all_probabilities(condition_probability);
}

double cut_set_probability(const CutSet& cut_set,
                           const QuantificationInput& input,
                           ConstraintCombination combination) {
  double constraints = 1.0;
  for (const ConditionOrdinal c : cut_set.conditions) {
    SAFEOPT_EXPECTS(c < input.condition_probability.size());
    switch (combination) {
      case ConstraintCombination::kIndependentProduct:
        constraints *= input.condition_probability[c];
        break;
      case ConstraintCombination::kDependentUpperBound:
        constraints = std::min(constraints, input.condition_probability[c]);
        break;
    }
  }
  double p = constraints;
  for (const BasicEventOrdinal e : cut_set.events) {
    SAFEOPT_EXPECTS(e < input.basic_event_probability.size());
    p *= input.basic_event_probability[e];
  }
  return p;
}

double top_event_probability(const CutSetCollection& mcs,
                             const QuantificationInput& input,
                             ProbabilityMethod method,
                             ConstraintCombination combination) {
  switch (method) {
    case ProbabilityMethod::kRareEvent: {
      double sum = 0.0;
      for (const CutSet& cs : mcs) {
        sum += cut_set_probability(cs, input, combination);
      }
      return clamp01(sum);
    }
    case ProbabilityMethod::kMinCutUpperBound: {
      double survive = 1.0;
      for (const CutSet& cs : mcs) {
        survive *= 1.0 - cut_set_probability(cs, input, combination);
      }
      return clamp01(1.0 - survive);
    }
    case ProbabilityMethod::kInclusionExclusion: {
      SAFEOPT_EXPECTS(mcs.size() <= 25);
      // P(∪ CS_i) = Σ_{∅≠S⊆MCS} (−1)^{|S|+1} · P(∩_{i∈S} CS_i); for
      // independent leaves the intersection probability is the product over
      // the union of the involved events/conditions.
      const std::size_t m = mcs.size();
      double total = 0.0;
      for (std::uint64_t subset = 1; subset < (1ULL << m); ++subset) {
        std::vector<BasicEventOrdinal> events;
        std::vector<ConditionOrdinal> conditions;
        int bits = 0;
        for (std::size_t i = 0; i < m; ++i) {
          if ((subset & (1ULL << i)) == 0) continue;
          ++bits;
          events.insert(events.end(), mcs[i].events.begin(),
                        mcs[i].events.end());
          conditions.insert(conditions.end(), mcs[i].conditions.begin(),
                            mcs[i].conditions.end());
        }
        std::sort(events.begin(), events.end());
        events.erase(std::unique(events.begin(), events.end()), events.end());
        std::sort(conditions.begin(), conditions.end());
        conditions.erase(std::unique(conditions.begin(), conditions.end()),
                         conditions.end());
        double p = 1.0;
        for (const BasicEventOrdinal e : events) {
          p *= input.basic_event_probability[e];
        }
        for (const ConditionOrdinal c : conditions) {
          p *= input.condition_probability[c];
        }
        total += (bits % 2 == 1) ? p : -p;
      }
      return clamp01(total);
    }
  }
  SAFEOPT_ASSERT(false);
  return 0.0;
}

double exact_probability_bruteforce(const FaultTree& tree,
                                    const QuantificationInput& input) {
  SAFEOPT_EXPECTS(tree.has_top());
  SAFEOPT_EXPECTS(input.is_valid_for(tree));
  const std::size_t n_events = tree.basic_event_count();
  const std::size_t n_conditions = tree.condition_count();
  const std::size_t n_total = n_events + n_conditions;
  SAFEOPT_EXPECTS(n_total <= 24);

  double total = 0.0;
  std::vector<bool> basic(n_events, false);
  std::vector<bool> cond(n_conditions, false);
  for (std::uint64_t mask = 0; mask < (1ULL << n_total); ++mask) {
    double weight = 1.0;
    for (std::size_t i = 0; i < n_events; ++i) {
      const bool on = (mask & (1ULL << i)) != 0;
      basic[i] = on;
      const double p = input.basic_event_probability[i];
      weight *= on ? p : 1.0 - p;
    }
    for (std::size_t i = 0; i < n_conditions; ++i) {
      const bool on = (mask & (1ULL << (n_events + i))) != 0;
      cond[i] = on;
      const double p = input.condition_probability[i];
      weight *= on ? p : 1.0 - p;
    }
    if (weight == 0.0) continue;
    if (tree.evaluate(basic, cond)) total += weight;
  }
  return clamp01(total);
}

}  // namespace safeopt::fta
