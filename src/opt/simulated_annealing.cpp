#include "safeopt/opt/simulated_annealing.h"

#include <algorithm>
#include <cmath>

#include "safeopt/stats/special_functions.h"
#include "safeopt/support/contracts.h"
#include "safeopt/support/rng.h"

namespace safeopt::opt {

SimulatedAnnealing::SimulatedAnnealing(Schedule schedule, std::uint64_t seed,
                                       StoppingCriteria stopping)
    : schedule_(schedule), seed_(seed), stopping_(stopping) {
  SAFEOPT_EXPECTS(schedule.initial_temperature > 0.0);
  SAFEOPT_EXPECTS(schedule.cooling_factor > 0.0 &&
                  schedule.cooling_factor < 1.0);
  SAFEOPT_EXPECTS(schedule.steps_per_epoch >= 1);
}

OptimizationResult SimulatedAnnealing::minimize(const Problem& problem) const {
  const std::size_t dim = problem.bounds.dimension();
  SAFEOPT_EXPECTS(dim >= 1);

  OptimizationResult result;
  Rng rng(seed_);

  std::vector<double> current(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    current[i] =
        uniform(rng, problem.bounds.lower[i], problem.bounds.upper[i]);
  }
  double f_current = problem.objective(current);
  ++result.evaluations;
  std::vector<double> best = current;
  double f_best = f_current;

  double temperature = schedule_.initial_temperature;
  // Proposal scale shrinks with temperature: wide exploration early, local
  // refinement late.
  while (temperature > schedule_.final_temperature &&
         result.iterations < stopping_.max_iterations) {
    ++result.iterations;
    const double relative_scale =
        std::sqrt(temperature / schedule_.initial_temperature);
    for (std::size_t step = 0; step < schedule_.steps_per_epoch; ++step) {
      std::vector<double> proposal(dim);
      for (std::size_t i = 0; i < dim; ++i) {
        const double sigma =
            0.25 * relative_scale * std::max(problem.bounds.width(i), 1e-12);
        // Box–Muller-free normal draw via the quantile of a uniform.
        const double u = std::clamp(uniform01(rng), 1e-15, 1.0 - 1e-15);
        proposal[i] = current[i] + sigma * stats::normal_quantile(u);
      }
      proposal = problem.bounds.project(proposal);
      const double f_proposal = problem.objective(proposal);
      ++result.evaluations;
      const double delta = f_proposal - f_current;
      if (delta <= 0.0 ||
          uniform01(rng) < std::exp(-delta / temperature)) {
        current = std::move(proposal);
        f_current = f_proposal;
        if (f_current < f_best) {
          best = current;
          f_best = f_current;
        }
      }
    }
    temperature *= schedule_.cooling_factor;
  }

  result.argmin = std::move(best);
  result.value = f_best;
  result.converged = temperature <= schedule_.final_temperature;
  result.message = result.converged ? "cooled to final temperature"
                                    : "iteration budget exhausted";
  return result;
}

}  // namespace safeopt::opt
