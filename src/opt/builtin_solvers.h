// Private bridge between the registry (solver.cpp) and the nine solver
// translation units. Each solver .cpp defines its make_*_solver() factory
// next to the numeric method it adapts; solver.cpp references them all when
// seeding the registry. Routing the references through named functions (not
// static registrar objects) keeps registration reliable under static-archive
// linking, where an object file whose only content is a self-registering
// global would be dropped.
#ifndef SAFEOPT_OPT_BUILTIN_SOLVERS_H
#define SAFEOPT_OPT_BUILTIN_SOLVERS_H

#include <memory>

#include "safeopt/opt/solver.h"

namespace safeopt::opt::detail {

std::unique_ptr<Solver> make_coordinate_descent_solver();
std::unique_ptr<Solver> make_differential_evolution_solver();
std::unique_ptr<Solver> make_golden_section_solver();
std::unique_ptr<Solver> make_gradient_descent_solver();
std::unique_ptr<Solver> make_grid_search_solver();
std::unique_ptr<Solver> make_hooke_jeeves_solver();
std::unique_ptr<Solver> make_multi_start_solver();
std::unique_ptr<Solver> make_nelder_mead_solver();
std::unique_ptr<Solver> make_simulated_annealing_solver();

}  // namespace safeopt::opt::detail

#endif  // SAFEOPT_OPT_BUILTIN_SOLVERS_H
