// Robust safety optimization — the paper's §V research direction made
// concrete: "An interesting connection is to reduce the whole optimization
// problem to a problem of stochastic programming, which is a branch of
// mathematical optimization that deals with probability distributions."
//
// Model constants (constraint probabilities, rates, costs) are rarely known
// exactly. A ScenarioSet holds sampled "worlds" — one cost expression per
// draw of the uncertain constants — and the robust optimizer minimizes
// either the *expected* cost across scenarios (two-stage stochastic program
// with here-and-now parameters) or the *worst-case* cost (minimax), both
// over the same compact parameter box.
#ifndef SAFEOPT_CORE_ROBUST_OPTIMIZER_H
#define SAFEOPT_CORE_ROBUST_OPTIMIZER_H

#include <functional>
#include <vector>

#include "safeopt/core/parameter_space.h"
#include "safeopt/core/safety_optimizer.h"
#include "safeopt/expr/expr.h"
#include "safeopt/support/rng.h"

namespace safeopt::core {

/// A set of equally likely model scenarios (cost expressions over the same
/// free parameters).
class ScenarioSet {
 public:
  /// Builds `count` scenarios by calling `generator` with a scenario RNG;
  /// the generator returns that world's cost expression. Deterministic for
  /// a fixed seed. Precondition: count >= 2.
  ScenarioSet(std::size_t count,
              const std::function<expr::Expr(Rng&)>& generator,
              std::uint64_t seed = 0x5ce9a);

  /// Wraps explicit scenario expressions. Precondition: non-empty.
  explicit ScenarioSet(std::vector<expr::Expr> scenarios);

  [[nodiscard]] std::size_t size() const noexcept {
    return scenarios_.size();
  }
  [[nodiscard]] const expr::Expr& operator[](std::size_t i) const;

  /// The expected-cost expression (1/N)·Σ scenarios — the stochastic-program
  /// objective. Still a symbolic expression: exact gradients remain
  /// available.
  [[nodiscard]] expr::Expr expected_cost() const;

  /// max over scenarios (folded with expr::max) — the minimax objective.
  [[nodiscard]] expr::Expr worst_case_cost() const;

 private:
  std::vector<expr::Expr> scenarios_;
};

enum class RobustCriterion {
  kExpectedValue,  // minimize E[cost]
  kWorstCase,      // minimize max cost
};

/// Result of a robust optimization: the chosen configuration plus the
/// per-scenario costs there (for regret/spread reporting).
struct RobustOptimizationResult {
  opt::OptimizationResult optimization;
  expr::ParameterAssignment optimal_parameters;
  std::vector<double> scenario_costs;
  double expected_cost = 0.0;
  double worst_case_cost = 0.0;
};

class RobustSafetyOptimizer {
 public:
  RobustSafetyOptimizer(ScenarioSet scenarios, ParameterSpace space);

  /// Minimizes the chosen criterion with any registered solver — the robust
  /// loop is a registry consumer, so every solver (and every future
  /// registration) can drive it.
  [[nodiscard]] RobustOptimizationResult optimize(
      RobustCriterion criterion, std::string_view solver,
      const opt::SolverConfig& config = {}) const;

  /// Deprecated-enum shim; bit-identical to the historic dispatch.
  [[nodiscard]] RobustOptimizationResult optimize(
      RobustCriterion criterion = RobustCriterion::kExpectedValue,
      Algorithm algorithm = Algorithm::kMultiStartNelderMead) const;

  /// The price of robustness at a configuration chosen for some other
  /// criterion: max over scenarios of (cost − that scenario's own optimal
  /// cost), the standard regret measure. The named registry solver drives
  /// the per-scenario optimizations.
  [[nodiscard]] double max_regret(
      const expr::ParameterAssignment& configuration, std::string_view solver,
      const opt::SolverConfig& config = {}) const;

  /// Deprecated-enum shim; bit-identical to the historic dispatch.
  [[nodiscard]] double max_regret(
      const expr::ParameterAssignment& configuration,
      Algorithm algorithm = Algorithm::kNelderMead) const;

  [[nodiscard]] const ScenarioSet& scenarios() const noexcept {
    return scenarios_;
  }

 private:
  ScenarioSet scenarios_;
  ParameterSpace space_;
};

}  // namespace safeopt::core

#endif  // SAFEOPT_CORE_ROBUST_OPTIMIZER_H
