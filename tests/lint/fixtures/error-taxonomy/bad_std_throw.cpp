// Fixture: raw std exception throws that bypass the safeopt::Error taxonomy.
#include <stdexcept>

void f(bool broken) {
  if (broken) throw std::runtime_error("engine failed");
  throw std::logic_error("unreachable state");
}
