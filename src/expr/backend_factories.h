// Internal: factory functions for the built-in evaluation backends. The
// registry calls these exactly once at first use — explicit factories, not
// static registrar objects, so static archives cannot drop them (see the
// ROADMAP architecture notes). The intrinsic factories return nullptr when
// their kernel TU was compiled without the matching ISA support.
#ifndef SAFEOPT_EXPR_BACKEND_FACTORIES_H
#define SAFEOPT_EXPR_BACKEND_FACTORIES_H

#include <memory>

#include "safeopt/expr/eval_backend.h"

namespace safeopt::expr::detail {

std::unique_ptr<EvalBackend> make_generic_backend();
std::unique_ptr<EvalBackend> make_avx2_backend();
std::unique_ptr<EvalBackend> make_avx512_backend();

}  // namespace safeopt::expr::detail

#endif  // SAFEOPT_EXPR_BACKEND_FACTORIES_H
