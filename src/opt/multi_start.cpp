#include "safeopt/opt/multi_start.h"

#include "safeopt/support/contracts.h"
#include "safeopt/support/rng.h"
#include "safeopt/support/thread_pool.h"

namespace safeopt::opt {

MultiStart::MultiStart(LocalSolverFactory factory, std::size_t starts,
                       std::uint64_t seed, ThreadPool* pool)
    : factory_(std::move(factory)), starts_(starts), seed_(seed), pool_(pool) {
  SAFEOPT_EXPECTS(starts >= 1);
  SAFEOPT_EXPECTS(static_cast<bool>(factory_));
}

OptimizationResult MultiStart::minimize(const Problem& problem) const {
  const std::size_t dim = problem.bounds.dimension();
  SAFEOPT_EXPECTS(dim >= 1);
  Rng rng(seed_);

  // Draw every start before any solve runs, so the start list (and with it
  // the whole result) does not depend on scheduling. Start 0 is the box
  // center (the "engineer's default"); the rest are uniform random points.
  std::vector<std::vector<double>> starts(starts_,
                                          std::vector<double>(dim));
  starts[0] = problem.bounds.center();
  for (std::size_t s = 1; s < starts_; ++s) {
    for (std::size_t i = 0; i < dim; ++i) {
      starts[s][i] =
          uniform(rng, problem.bounds.lower[i], problem.bounds.upper[i]);
    }
  }
  // Factories may be stateful, so build the solvers sequentially too.
  std::vector<std::unique_ptr<Optimizer>> solvers(starts_);
  for (std::size_t s = 0; s < starts_; ++s) {
    solvers[s] = factory_(std::move(starts[s]));
    SAFEOPT_ASSERT(solvers[s] != nullptr);
  }

  std::vector<OptimizationResult> results(starts_);
  const auto run_range = [&](std::size_t begin, std::size_t end) {
    for (std::size_t s = begin; s < end; ++s) {
      results[s] = solvers[s]->minimize(problem);
    }
  };
  if (pool_ != nullptr) {
    pool_->parallel_for(starts_, run_range);
  } else {
    run_range(0, starts_);
  }

  // Sequential reduction with a strict '<' — same winner (first best) as
  // the original one-at-a-time loop.
  OptimizationResult best;
  std::size_t total_evaluations = 0;
  std::size_t total_iterations = 0;
  bool first = true;
  for (OptimizationResult& result : results) {
    total_evaluations += result.evaluations;
    total_iterations += result.iterations;
    if (first || result.value < best.value) {
      best = std::move(result);
      first = false;
    }
  }
  best.evaluations = total_evaluations;
  best.iterations = total_iterations;
  best.message = "best of " + std::to_string(starts_) + " starts: " +
                 best.message;
  return best;
}

}  // namespace safeopt::opt
