// Box-constrained nonlinear minimization (paper §III-B).
//
// The paper restricts free parameters to compact intervals "to guarantee the
// existence of the minimum"; `Box` is exactly that product of intervals.
// Every algorithm in src/opt consumes a `Problem` and produces an
// `OptimizationResult`, so the safety-optimization layer can swap methods
// (the paper: "This problem can then be solved with different methods").
#ifndef SAFEOPT_OPT_PROBLEM_H
#define SAFEOPT_OPT_PROBLEM_H

#include <functional>
#include <span>
#include <string>
#include <vector>

namespace safeopt::opt {

/// A compact axis-aligned box ∏ [lower_i, upper_i]: the feasible set.
struct Box {
  std::vector<double> lower;
  std::vector<double> upper;

  Box() = default;
  /// Precondition: same sizes, lower_i <= upper_i for all i.
  Box(std::vector<double> lo, std::vector<double> hi);
  /// 1-D convenience.
  [[nodiscard]] static Box interval(double lo, double hi);

  [[nodiscard]] std::size_t dimension() const noexcept {
    return lower.size();
  }
  [[nodiscard]] bool contains(std::span<const double> x) const noexcept;
  /// Componentwise projection of x onto the box.
  [[nodiscard]] std::vector<double> project(std::span<const double> x) const;
  [[nodiscard]] std::vector<double> center() const;
  [[nodiscard]] double width(std::size_t i) const;
};

/// Objective value at a point inside the box.
using Objective = std::function<double(std::span<const double>)>;

/// Exact gradient at a point (same dimension as the box). Optional: solvers
/// fall back to central finite differences when absent.
using Gradient = std::function<std::vector<double>(std::span<const double>)>;

/// Evaluates many points in one call: `points` holds out.size() parameter
/// vectors row-major (points.size() == out.size() * dimension) and the
/// objective value of row i is written to out[i]. Contract: produces exactly
/// the values `objective` produces (bitwise), each out[i] depending only on
/// row i — implementations may evaluate rows concurrently, and callers may
/// rely on the result being independent of that choice. The batched
/// call sites (GridSearch rounds, DE generations, sweeps) are where the
/// compiled-expression engine and the thread pool plug into the solvers.
using BatchObjective =
    std::function<void(std::span<const double> points, std::span<double> out)>;

/// Evaluates values *and* gradients at many points in one call: `points` is
/// row-major as in BatchObjective, `values_out[i]` receives the objective at
/// row i and `gradients_out` (row-major, values_out.size() × dimension) the
/// gradient there. The compiled-expression engine implements this as one
/// forward + one adjoint lane sweep per block of rows, which is what feeds
/// population-based gradient consumers without per-point tape traversals.
/// Values must agree bitwise with `objective`; gradients must agree with
/// `gradient` up to floating-point reassociation (both are exact
/// derivatives — forward-mode duals and reverse-mode adjoints associate the
/// chain rule differently).
using BatchGradient =
    std::function<void(std::span<const double> points,
                       std::span<double> values_out,
                       std::span<double> gradients_out)>;

/// A minimization problem: minimize `objective` over `bounds`.
struct Problem {
  Objective objective;
  Box bounds;
  Gradient gradient;                // may be empty
  BatchObjective batch_objective;   // may be empty; must agree with objective
  BatchGradient batch_gradient;     // may be empty; see BatchGradient

  [[nodiscard]] bool has_gradient() const noexcept {
    return static_cast<bool>(gradient);
  }
  [[nodiscard]] bool has_batch_objective() const noexcept {
    return static_cast<bool>(batch_objective);
  }
  [[nodiscard]] bool has_batch_gradient() const noexcept {
    return static_cast<bool>(batch_gradient);
  }

  /// Batch evaluation through `batch_objective` when present, else a serial
  /// loop over `objective`. Precondition: points.size() == out.size() *
  /// bounds.dimension() and objective is callable.
  void evaluate_batch(std::span<const double> points,
                      std::span<double> out) const;

  /// Batched values + gradients through `batch_gradient` when present, else
  /// a serial loop over `objective` + `gradient` (finite differences when
  /// no gradient is available either). Preconditions as above plus
  /// gradients_out.size() == values_out.size() * bounds.dimension().
  void evaluate_batch_with_gradients(std::span<const double> points,
                                     std::span<double> values_out,
                                     std::span<double> gradients_out) const;
};

/// Outcome of one solver run.
struct OptimizationResult {
  std::vector<double> argmin;
  double value = 0.0;
  std::size_t evaluations = 0;  // objective calls
  std::size_t iterations = 0;   // algorithm-specific outer iterations
  bool converged = false;
  std::string message;
};

/// Common stopping-rule knobs honoured by all iterative solvers.
struct StoppingCriteria {
  std::size_t max_iterations = 1000;
  /// Declare convergence when the algorithm-specific scale measure (simplex
  /// spread, step length, temperature step, ...) falls below this.
  double tolerance = 1e-10;
};

/// Interface every solver implements.
class Optimizer {
 public:
  virtual ~Optimizer() = default;
  /// Minimizes the problem. Precondition: problem.objective is callable and
  /// problem.bounds.dimension() >= 1.
  [[nodiscard]] virtual OptimizationResult minimize(
      const Problem& problem) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;

 protected:
  Optimizer() = default;
  Optimizer(const Optimizer&) = default;
  Optimizer& operator=(const Optimizer&) = default;
};

/// Central-difference gradient estimate with per-axis step h_i scaled to the
/// box width; evaluation points are projected into the box (one-sided at the
/// boundary). Adds 2·dim evaluations to `evaluations` if non-null.
[[nodiscard]] std::vector<double> finite_difference_gradient(
    const Objective& objective, const Box& bounds, std::span<const double> x,
    std::size_t* evaluations = nullptr);

/// Same estimate — identical perturbation points, identical values — but the
/// 2·dim probes are evaluated in one Problem::evaluate_batch call, so a
/// problem with a batched (compiled, lane-parallel) objective computes the
/// whole stencil per sweep instead of per point. Bitwise-equal to the
/// Objective overload by the BatchObjective contract.
[[nodiscard]] std::vector<double> finite_difference_gradient(
    const Problem& problem, std::span<const double> x,
    std::size_t* evaluations = nullptr);

}  // namespace safeopt::opt

#endif  // SAFEOPT_OPT_PROBLEM_H
