// Deterministic fault-injection coverage for the resilient-execution layer:
// every cooperative abort path (BDD node budget, BDD/prep deadline, adaptive
// Monte Carlo round-boundary abort, solver cancellation) must hand back a
// well-formed partial result or a categorized safeopt::Error — never a torn
// structure, a crash, or a hang. Faults fire through the FaultInjector's
// scripted controls (tests/testutil/fault_injector.h), so each test pins the
// abort to an exact checkpoint without wall-clock sleeps.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "safeopt/bdd/bdd.h"
#include "safeopt/core/quantification_engine.h"
#include "safeopt/core/study.h"
#include "safeopt/ftio/study_document.h"
#include "safeopt/mc/adaptive_monte_carlo.h"
#include "safeopt/opt/problem.h"
#include "safeopt/opt/solver.h"
#include "safeopt/prep/preprocess.h"
#include "safeopt/support/error.h"
#include "safeopt/support/execution.h"
#include "safeopt/support/strings.h"
#include "testutil/fault_injector.h"

namespace safeopt {
namespace {

using testutil::FaultInjector;

// A coherent tree whose BDD needs well over a handful of decision nodes:
// 3-of-8 voting over independent events.
fta::FaultTree voting_tree() {
  fta::FaultTree tree("voting");
  std::vector<fta::NodeId> leaves;
  for (int i = 0; i < 8; ++i) {
    // concat instead of operator+: gcc 12's -Wrestrict false positive
    // (PR105651) fires on `const char* + std::string&&` under -O3.
    leaves.push_back(tree.add_basic_event(concat("e", std::to_string(i))));
  }
  tree.set_top(tree.add_k_of_n("top", 3, std::move(leaves)));
  return tree;
}

fta::QuantificationInput uniform_input(const fta::FaultTree& tree, double p) {
  fta::QuantificationInput input = fta::QuantificationInput::for_tree(tree, p);
  return input;
}

// ------------------------------------------------------------- error basics

TEST(ErrorTaxonomyTest, CategoriesNameAndRecoverability) {
  EXPECT_EQ(category_name(ErrorCategory::kInvalidInput), "invalid_input");
  EXPECT_EQ(category_name(ErrorCategory::kResourceExhausted),
            "resource_exhausted");
  EXPECT_EQ(category_name(ErrorCategory::kDeadlineExceeded),
            "deadline_exceeded");
  EXPECT_EQ(category_name(ErrorCategory::kCancelled), "cancelled");
  EXPECT_EQ(category_name(ErrorCategory::kInternal), "internal");

  EXPECT_TRUE(Error(ErrorCategory::kResourceExhausted, "x").recoverable());
  EXPECT_TRUE(Error(ErrorCategory::kDeadlineExceeded, "x").recoverable());
  EXPECT_FALSE(Error(ErrorCategory::kCancelled, "x").recoverable());
  EXPECT_FALSE(Error(ErrorCategory::kInvalidInput, "x").recoverable());
  EXPECT_FALSE(Error(ErrorCategory::kInternal, "x").recoverable());
}

TEST(ExecutionControlTest, CancellationWinsOverDeadline) {
  ExecutionControl control(Deadline::already_expired());
  EXPECT_EQ(control.status(), ExecutionStatus::kDeadlineExceeded);
  control.token.request_cancel();
  EXPECT_EQ(control.status(), ExecutionStatus::kCancelled);
}

TEST(ExecutionControlTest, ParentControlPropagates) {
  const ExecutionControl parent = FaultInjector::cancelled();
  ExecutionControl child;
  child.parent = &parent;
  EXPECT_EQ(child.status(), ExecutionStatus::kCancelled);
  EXPECT_TRUE(child.should_abort());
}

TEST(ExecutionControlTest, CheckThrowsCategorizedError) {
  const ExecutionControl control = FaultInjector::expired_deadline();
  try {
    control.check("unit test");
    FAIL() << "check() on an expired control must throw";
  } catch (const Error& error) {
    EXPECT_EQ(error.category(), ErrorCategory::kDeadlineExceeded);
    EXPECT_NE(std::string(error.what()).find("unit test"), std::string::npos);
  }
}

// ----------------------------------------------------------- BDD node budget

TEST(BddFaultTest, NodeBudgetAbortsWithConsistentStatistics) {
  bdd::BddOptions options;
  options.node_budget = 4;
  bdd::BddManager manager(16, options);
  bool threw = false;
  try {
    bdd::BddRef f = manager.variable(0);
    for (std::uint32_t v = 1; v < 16; ++v) {
      f = manager.apply_or(f, manager.variable(v));
    }
  } catch (const Error& error) {
    threw = true;
    EXPECT_EQ(error.category(), ErrorCategory::kResourceExhausted);
    EXPECT_TRUE(error.recoverable());
    EXPECT_NE(std::string(error.what()).find("node budget"),
              std::string::npos);
  }
  EXPECT_TRUE(threw);
  // The manager survives the abort in a consistent, queryable state: the
  // statistics invariant (live == peak, no GC) still holds and the counter
  // shows exactly one node past the budget — the allocation that tripped it.
  const bdd::BddStatistics& stats = manager.statistics();
  EXPECT_EQ(stats.decision_node_count(), options.node_budget + 1);
  EXPECT_EQ(stats.node_count, stats.peak_node_count);
}

TEST(BddFaultTest, CompileHonoursNodeBudget) {
  const fta::FaultTree tree = voting_tree();
  bdd::BddOptions options;
  options.node_budget = 3;
  try {
    (void)bdd::compile(tree, options);
    FAIL() << "3-of-8 voting cannot compile within 3 decision nodes";
  } catch (const Error& error) {
    EXPECT_EQ(error.category(), ErrorCategory::kResourceExhausted);
  }
}

TEST(BddFaultTest, CompileChecksDeadlinePerGate) {
  const fta::FaultTree tree = voting_tree();
  const ExecutionControl control = FaultInjector::expired_deadline();
  bdd::BddOptions options;
  options.control = &control;
  try {
    (void)bdd::compile(tree, options);
    FAIL() << "compile under an expired deadline must abort";
  } catch (const Error& error) {
    EXPECT_EQ(error.category(), ErrorCategory::kDeadlineExceeded);
    EXPECT_NE(std::string(error.what()).find("BDD compilation"),
              std::string::npos);
  }
}

TEST(BddFaultTest, CancelledCompileReportsCancellation) {
  const fta::FaultTree tree = voting_tree();
  ExecutionControl control(Deadline::already_expired());
  control.token.request_cancel();  // cancellation outranks the deadline
  bdd::BddOptions options;
  options.control = &control;
  try {
    (void)bdd::compile(tree, options);
    FAIL() << "compile under a cancelled control must abort";
  } catch (const Error& error) {
    EXPECT_EQ(error.category(), ErrorCategory::kCancelled);
  }
}

// ------------------------------------------------------- prep pass pipeline

TEST(PrepFaultTest, DeadlineAbortsBetweenPassesLeavingInputUntouched) {
  const fta::FaultTree tree = voting_tree();
  const std::size_t nodes_before = tree.node_count();
  const ExecutionControl control = FaultInjector::expired_deadline();
  prep::PreprocessOptions options;
  options.control = &control;
  try {
    (void)prep::preprocess(tree, options);
    FAIL() << "preprocess under an expired deadline must abort";
  } catch (const Error& error) {
    EXPECT_EQ(error.category(), ErrorCategory::kDeadlineExceeded);
    EXPECT_NE(std::string(error.what()).find("preprocessing"),
              std::string::npos);
  }
  EXPECT_EQ(tree.node_count(), nodes_before);
  EXPECT_TRUE(tree.validate().empty());
}

// ------------------------------------------- adaptive MC round-boundary abort

mc::AdaptiveOptions small_round_options() {
  mc::AdaptiveOptions options;
  options.batch = 1024;
  options.max_trials = 1 << 20;
  options.target_halfwidth = 1e-12;  // unreachable: the loop never converges
  options.relative = false;
  return options;
}

TEST(McFaultTest, AbortBeforeFirstRoundReportsZeroTrials) {
  const fta::FaultTree tree = voting_tree();
  const ExecutionControl control = FaultInjector::expired_deadline();
  mc::AdaptiveOptions options = small_round_options();
  options.control = &control;
  const mc::AdaptiveMonteCarlo sampler(options);
  const mc::AdaptiveResult result =
      sampler.estimate(tree, uniform_input(tree, 0.2));
  EXPECT_TRUE(result.aborted);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.trials, 0u);
  EXPECT_EQ(result.occurrences, 0u);
}

TEST(McFaultTest, AbortedRunEqualsLastCompletedRoundBitwise) {
  const fta::FaultTree tree = voting_tree();
  const fta::QuantificationInput input = uniform_input(tree, 0.2);

  // Run A: the control lets exactly two round-boundary polls pass, so the
  // run aborts with two completed rounds in the totals.
  FaultInjector injector;
  const ExecutionControl control =
      injector.fire_after_polls(2, ExecutionStatus::kDeadlineExceeded);
  mc::AdaptiveOptions options = small_round_options();
  options.control = &control;
  const mc::AdaptiveResult aborted =
      mc::AdaptiveMonteCarlo(options).estimate(tree, input);

  // Run B: no control, but a trial budget of exactly two rounds. The abort
  // contract says A must be bitwise identical to B in every estimate field —
  // completed rounds are the only observable state an abort can expose.
  mc::AdaptiveOptions capped = small_round_options();
  capped.max_trials = 2 * capped.batch;
  const mc::AdaptiveResult reference =
      mc::AdaptiveMonteCarlo(capped).estimate(tree, input);

  EXPECT_TRUE(aborted.aborted);
  EXPECT_FALSE(reference.aborted);
  EXPECT_FALSE(aborted.converged);
  EXPECT_EQ(aborted.trials, 2 * options.batch);
  EXPECT_EQ(aborted.trials, reference.trials);
  EXPECT_EQ(aborted.occurrences, reference.occurrences);
  EXPECT_EQ(aborted.estimate, reference.estimate);
  EXPECT_EQ(aborted.ci95.lo, reference.ci95.lo);
  EXPECT_EQ(aborted.ci95.hi, reference.ci95.hi);
  EXPECT_EQ(aborted.ess, reference.ess);
}

TEST(McFaultTest, EngineDeadlineYieldsPartialAbortedResult) {
  const fta::FaultTree tree = voting_tree();
  const ExecutionControl control = FaultInjector::cancelled();
  core::EngineConfig config;
  config.control = &control;
  config.mc_trials = 1 << 16;
  const auto engine = core::EngineRegistry::create("mc_adaptive", tree, config);
  const core::QuantificationResult result =
      engine->quantify(uniform_input(tree, 0.2));
  ASSERT_TRUE(result.aborted.has_value());
  EXPECT_TRUE(*result.aborted);
  ASSERT_TRUE(result.converged.has_value());
  EXPECT_FALSE(*result.converged);
  EXPECT_EQ(result.trials, 0u);
}

// ------------------------------------------------------- solver cancellation

opt::Problem quadratic_problem() {
  opt::Problem problem;
  problem.bounds = opt::Box({-4.0, -4.0}, {4.0, 4.0});
  problem.objective = [](std::span<const double> x) {
    return (x[0] - 1.0) * (x[0] - 1.0) + (x[1] + 2.0) * (x[1] + 2.0);
  };
  return problem;
}

TEST(SolverFaultTest, PreCancelledSolveReturnsWithoutEvaluating) {
  const auto solver = opt::SolverRegistry::create("nelder_mead");
  const ExecutionControl control = FaultInjector::cancelled();
  opt::SolverConfig config;
  config.control = &control;
  const opt::OptimizationResult result =
      solver->solve(quadratic_problem(), config);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.evaluations, 0u);
  EXPECT_NE(result.message.find("cancelled"), std::string::npos);
}

TEST(SolverFaultTest, MidRunDeadlineReturnsBestOfCompletedEvaluations) {
  const auto solver = opt::SolverRegistry::create("nelder_mead");
  FaultInjector injector;
  const ExecutionControl control =
      injector.fire_after_polls(25, ExecutionStatus::kDeadlineExceeded);
  opt::SolverConfig config;
  config.control = &control;
  const opt::OptimizationResult result =
      solver->solve(quadratic_problem(), config);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.evaluations, 25u);
  EXPECT_NE(result.message.find("deadline exceeded after 25 evaluations"),
            std::string::npos);
  // The best point seen within the 25 granted evaluations comes back as a
  // genuine partial result: inside the box, with its true objective value.
  ASSERT_EQ(result.argmin.size(), 2u);
  EXPECT_TRUE(opt::Box({-4.0, -4.0}, {4.0, 4.0}).contains(result.argmin));
  EXPECT_EQ(result.value, quadratic_problem().objective(result.argmin));
}

TEST(SolverFaultTest, ArmedButSilentControlDoesNotChangeTheResult) {
  const auto solver = opt::SolverRegistry::create("nelder_mead");
  const opt::OptimizationResult plain =
      solver->solve(quadratic_problem(), {});
  FaultInjector injector;
  const ExecutionControl control = injector.never_fires();
  opt::SolverConfig config;
  config.control = &control;
  const opt::OptimizationResult guarded =
      solver->solve(quadratic_problem(), config);
  EXPECT_GT(injector.polls(), 0u);  // the instrumented path really polled
  EXPECT_EQ(guarded.converged, plain.converged);
  EXPECT_EQ(guarded.value, plain.value);
  EXPECT_EQ(guarded.argmin, plain.argmin);
}

// ---------------------------------------------------- graceful degradation

TEST(DegradationTest, BddBudgetFallsBackToAdaptiveMc) {
  const fta::FaultTree tree = voting_tree();
  core::EngineConfig config;
  config.bdd_node_budget = 3;
  config.fallback = "mc_adaptive";
  config.mc_trials = 1 << 16;
  std::string diagnostic;
  const auto engine =
      core::create_engine_with_fallback("bdd", tree, config, &diagnostic);
  ASSERT_NE(engine, nullptr);
  EXPECT_NE(diagnostic.find("degraded to \"mc_adaptive\""), std::string::npos);
  EXPECT_NE(diagnostic.find("resource_exhausted"), std::string::npos);
  const core::QuantificationResult result =
      engine->quantify(uniform_input(tree, 0.2));
  EXPECT_GT(result.trials, 0u);
  EXPECT_TRUE(result.ci95.has_value());
}

TEST(DegradationTest, NoFallbackRethrowsTheOriginalError) {
  const fta::FaultTree tree = voting_tree();
  core::EngineConfig config;
  config.bdd_node_budget = 3;
  std::string diagnostic;
  EXPECT_THROW((void)core::create_engine_with_fallback("bdd", tree, config,
                                                       &diagnostic),
               Error);
  EXPECT_TRUE(diagnostic.empty());
}

TEST(DegradationTest, CancellationIsNotRecoveredByFallback) {
  const fta::FaultTree tree = voting_tree();
  const ExecutionControl control = FaultInjector::cancelled();
  core::EngineConfig config;
  config.control = &control;
  config.fallback = "mc_adaptive";
  try {
    (void)core::create_engine_with_fallback("bdd", tree, config, nullptr);
    FAIL() << "cancellation must not degrade to another engine";
  } catch (const Error& error) {
    EXPECT_EQ(error.category(), ErrorCategory::kCancelled);
  }
}

TEST(DegradationTest, StudyQuantifyRecordsTheDowngradeInDiagnostics) {
  const ftio::StudyDocument doc = ftio::parse_study(R"(
param p in [0.05, 0.4];

tree T;
toplevel top;
top or a b c;
a prob = p;
b prob = p;
c prob = 0.1;

hazard T cost = 10;
engine bdd bdd_node_budget = 1 fallback = mc_adaptive
    trials = 65536 target_halfwidth = 0.2;
)");
  const core::Study study = core::Study::from_document(doc);
  expr::ParameterAssignment at;
  at.set("p", 0.2);
  const core::QuantificationResult result = study.quantify("T", at);
  ASSERT_FALSE(result.diagnostics.empty());
  EXPECT_NE(result.diagnostics.front().find("degraded to \"mc_adaptive\""),
            std::string::npos);
  EXPECT_GT(result.trials, 0u);
  EXPECT_GT(result.probability, 0.0);
}

}  // namespace
}  // namespace safeopt
