// Experiment: paper Fig. 2 — the collision fault-tree fragment.
// Regenerates the tree structure (text model + GraphViz DOT) and its
// minimal cut sets; the structural assertions live in tests/fta.
#include <cstdio>

#include "safeopt/fta/cut_sets.h"
#include "safeopt/ftio/parser.h"
#include "safeopt/ftio/writer.h"

namespace {

// The fragment exactly as Fig. 2 draws it: Collision <- OR(OHV ignores
// signal, Signal not on), Signal not on <- OR(out of order, not activated),
// with "not activated" the branch the paper keeps expanding ("...").
constexpr const char* kFig2 = R"(
tree Fig2_Collision;
toplevel Collision;
Collision   or OHVIgnoresSignal SignalNotOn;
SignalNotOn or SignalOutOfOrder SignalNotActivated;
SignalNotActivated or ControlFailed Detection;
Detection   inhibit DetectionFailed OHVCritical;
OHVIgnoresSignal  prob = 1e-3;
SignalOutOfOrder  prob = 1e-4;
ControlFailed     prob = 1e-6;
DetectionFailed   prob = 5e-4;
OHVCritical condition prob = 0.011;
)";

}  // namespace

int main() {
  using namespace safeopt;
  std::printf("=== Fig. 2: collision fault tree ===\n\n");
  const ftio::ParsedFaultTree model = ftio::parse_fault_tree(kFig2);

  std::printf("--- model ---\n%s\n",
              ftio::write_fault_tree(model.tree, model.probabilities).c_str());

  const fta::CutSetCollection mcs = fta::minimal_cut_sets(model.tree);
  std::printf("--- minimal cut sets ---\n%s\n\n",
              mcs.to_string(model.tree).c_str());
  std::printf("cut sets: %zu (all single points of failure: %s)\n\n",
              mcs.size(),
              mcs.single_points_of_failure().size() == mcs.size() ? "yes"
                                                                  : "no");

  std::printf("--- GraphViz DOT (paper Fig. 1 symbol shapes) ---\n%s",
              ftio::to_dot(model.tree, &model.probabilities).c_str());
  return 0;
}
