// The pluggable quantification seam: one interface over every way this
// library turns leaf probabilities into a top-event probability.
//
// The paper treats quantification as exchangeable machinery — Eq. 1/2 via
// minimal cut sets is "the" formula, but §II-C notes the bounds involved and
// the validation story (BDD Shannon decomposition is exact, Monte Carlo
// sampling checks the independence assumptions). `QuantificationEngine`
// makes that exchangeability a first-class API: every engine consumes the
// same numeric `fta::QuantificationInput` (produced on the compiled-tape hot
// path by `CompiledQuantification::input_at`) and reports a
// `QuantificationResult` plus capability flags, so callers — `core::Study`,
// cross-validation benches, future sharded backends — can pick a backend by
// name at runtime:
//
//   "fta"  cut-set engine (rare-event / min-cut upper bound /
//          inclusion-exclusion; importance measures supported)
//   "bdd"  exact Shannon decomposition over the compiled ROBDD
//   "mc"   Monte Carlo estimation with Wilson confidence intervals
//
// `EngineRegistry` is the name -> factory table behind
// `Study::engine("bdd")`; `EngineRegistrar` self-registers user engines
// (see docs/extending.md).
#ifndef SAFEOPT_CORE_QUANTIFICATION_ENGINE_H
#define SAFEOPT_CORE_QUANTIFICATION_ENGINE_H

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "safeopt/fta/fault_tree.h"
#include "safeopt/fta/probability.h"
#include "safeopt/stats/estimators.h"

namespace safeopt {
class ThreadPool;
}

namespace safeopt::core {

/// What one engine can and cannot do; checked by callers, not enforced.
struct EngineCapabilities {
  /// No method error: the reported probability is the exact top-event
  /// probability under leaf independence (bdd; fta with inclusion-exclusion).
  bool exact = false;
  /// The result carries sampling error (and a confidence interval).
  bool sampled = false;
  /// The backing method can also rank importance measures (the cut-set
  /// engine: fta::importance_measures shares its mcs + method).
  bool importance = false;
  /// quantify_batch has a real batched implementation (not the base-class
  /// loop); batching is where sharded/distributed engines plug in.
  bool batch = false;
};

/// Outcome of one quantification.
struct QuantificationResult {
  double probability = 0.0;
  /// 95% confidence interval; engines with capabilities().sampled only.
  std::optional<stats::ConfidenceInterval> ci95;
  /// Trials drawn (sampled engines), 0 otherwise.
  std::uint64_t trials = 0;
};

/// Shared engine configuration; each engine reads the fields it understands.
struct EngineConfig {
  /// Cut-set engine: the probability method (rare-event by default — the
  /// paper's Eq. 1/2 — or min-cut upper bound / inclusion-exclusion).
  fta::ProbabilityMethod method = fta::ProbabilityMethod::kRareEvent;
  /// Cut-set engine: how multiple INHIBIT constraints combine.
  fta::ConstraintCombination combination =
      fta::ConstraintCombination::kIndependentProduct;
  /// Monte Carlo engine: trials per quantify() call and base seed.
  std::uint64_t mc_trials = 200000;
  std::uint64_t seed = 0x5a4e0u;
  /// Monte Carlo engine: optional worker pool (chunked jump() streams;
  /// result independent of the thread count). Not owned.
  ThreadPool* pool = nullptr;
};

/// One quantification backend bound to one fault tree. Construction does the
/// per-tree work exactly once (MOCUS, BDD compilation); quantify() is then a
/// per-point evaluation sharing that preprocessing. Engines are not
/// thread-safe (the BDD path memoizes); use one instance per thread.
class QuantificationEngine {
 public:
  virtual ~QuantificationEngine() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  [[nodiscard]] virtual EngineCapabilities capabilities() const noexcept = 0;
  [[nodiscard]] virtual const fta::FaultTree& tree() const noexcept = 0;

  /// P(top event) under `input`. Precondition: input.is_valid_for(tree()).
  [[nodiscard]] virtual QuantificationResult quantify(
      const fta::QuantificationInput& input) = 0;

  /// Quantifies many inputs. The base implementation is a serial loop;
  /// engines with capabilities().batch override it with a real batched path.
  [[nodiscard]] virtual std::vector<QuantificationResult> quantify_batch(
      const std::vector<fta::QuantificationInput>& inputs);

 protected:
  QuantificationEngine() = default;
  QuantificationEngine(const QuantificationEngine&) = default;
  QuantificationEngine& operator=(const QuantificationEngine&) = default;
};

/// Process-wide name -> factory table for quantification engines. "fta",
/// "bdd" and "mc" are pre-registered; add() extends it at runtime (last
/// registration wins). All methods are thread-safe.
class EngineRegistry {
 public:
  using Factory = std::function<std::unique_ptr<QuantificationEngine>(
      const fta::FaultTree& tree, const EngineConfig& config)>;

  /// Registers `factory` under `name`; returns false when it replaced an
  /// existing registration. Precondition: name non-empty, factory callable.
  static bool add(std::string name, Factory factory);

  /// Creates the named engine over `tree` (which must outlive the engine).
  /// Throws std::invalid_argument listing available() for unknown names.
  [[nodiscard]] static std::unique_ptr<QuantificationEngine> create(
      std::string_view name, const fta::FaultTree& tree,
      const EngineConfig& config = {});

  [[nodiscard]] static bool contains(std::string_view name);

  /// Sorted names of every registered engine.
  [[nodiscard]] static std::vector<std::string> available();
};

/// Self-registration helper for user engines, mirroring SolverRegistrar.
struct EngineRegistrar {
  EngineRegistrar(std::string name, EngineRegistry::Factory factory) {
    EngineRegistry::add(std::move(name), std::move(factory));
  }
};

}  // namespace safeopt::core

#endif  // SAFEOPT_CORE_QUANTIFICATION_ENGINE_H
