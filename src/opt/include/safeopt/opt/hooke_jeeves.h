// Hooke–Jeeves pattern search: robust derivative-free descent that combines
// exploratory per-axis probing with pattern moves. Useful when the cost
// function is only piecewise smooth (e.g. hazard models with clamped
// probabilities), where simplex and gradient methods stall.
#ifndef SAFEOPT_OPT_HOOKE_JEEVES_H
#define SAFEOPT_OPT_HOOKE_JEEVES_H

#include "safeopt/opt/problem.h"

namespace safeopt::opt {

class HookeJeeves final : public Optimizer {
 public:
  /// `initial_step` is relative to each axis' box width.
  explicit HookeJeeves(StoppingCriteria stopping = {},
                       std::vector<double> initial = {},
                       double initial_step = 0.25);

  [[nodiscard]] OptimizationResult minimize(
      const Problem& problem) const override;
  [[nodiscard]] std::string name() const override { return "HookeJeeves"; }

 private:
  StoppingCriteria stopping_;
  std::vector<double> initial_;
  double initial_step_;
};

}  // namespace safeopt::opt

#endif  // SAFEOPT_OPT_HOOKE_JEEVES_H
