// Test-only helper: deterministic random fault-tree generation for property
// tests (MOCUS vs brute force vs BDD, probability method orderings, parser
// round-trips). Trees are coherent (AND/OR/k-of-n/INHIBIT) unless XOR gates
// are requested, and every leaf is reachable from the top event.
#ifndef SAFEOPT_TESTS_TESTUTIL_RANDOM_TREE_H
#define SAFEOPT_TESTS_TESTUTIL_RANDOM_TREE_H

#include <optional>
#include <string>
#include <vector>

#include "safeopt/fta/fault_tree.h"
#include "safeopt/fta/probability.h"
#include "safeopt/support/rng.h"
#include "safeopt/support/strings.h"

namespace safeopt::testutil {

struct RandomTreeOptions {
  std::size_t basic_events = 6;
  std::size_t conditions = 1;   // 0 disables INHIBIT gates
  std::size_t gates = 5;
  bool allow_xor = false;
  bool allow_kofn = true;
};

/// Builds a random tree: leaves first, then `gates` random gates whose
/// children are drawn from all previously created nodes, and finally an OR
/// root over every node that is not yet referenced (so everything is
/// reachable).
inline fta::FaultTree random_tree(std::uint64_t seed,
                                  const RandomTreeOptions& options = {}) {
  Rng rng(seed);
  fta::FaultTree tree(concat("random-", std::to_string(seed)));

  std::vector<fta::NodeId> pool;
  for (std::size_t i = 0; i < options.basic_events; ++i) {
    pool.push_back(tree.add_basic_event(concat("e", std::to_string(i))));
  }
  // Condition leaves are created lazily on first INHIBIT use so the tree
  // never contains unreachable conditions (the parser round-trip rejects
  // unreferenced leaves, and reachability is a validate() invariant).
  std::vector<std::optional<fta::NodeId>> condition_pool(options.conditions);
  const auto condition_at = [&](std::size_t i) {
    if (!condition_pool[i].has_value()) {
      condition_pool[i] = tree.add_condition(concat("c", std::to_string(i)));
    }
    return *condition_pool[i];
  };

  std::vector<bool> referenced(pool.size(), false);
  const auto pick_child = [&](std::vector<fta::NodeId>& chosen) {
    for (int attempts = 0; attempts < 16; ++attempts) {
      const auto idx =
          static_cast<std::size_t>(uniform_index(rng, pool.size()));
      const fta::NodeId candidate = pool[idx];
      bool duplicate = false;
      for (const fta::NodeId c : chosen) duplicate = duplicate || c == candidate;
      if (!duplicate) {
        chosen.push_back(candidate);
        referenced[idx] = true;
        return;
      }
    }
  };

  for (std::size_t g = 0; g < options.gates; ++g) {
    const std::string name = concat("g", std::to_string(g));
    // Choose the gate kind before picking children: an INHIBIT gate takes
    // exactly one cause, and every picked child must end up in the gate
    // (picking marks it referenced, which drives root construction below).
    const std::uint64_t kind = uniform_index(rng, 10);
    const bool want_inhibit = kind >= 9 && !condition_pool.empty();

    std::vector<fta::NodeId> children;
    const std::uint64_t arity =
        want_inhibit ? 1 : 2 + uniform_index(rng, 2);  // inhibit: 1, else 2..3
    for (std::uint64_t c = 0; c < arity; ++c) pick_child(children);
    if (children.empty()) continue;

    fta::NodeId gate = 0;
    if (want_inhibit) {
      const auto cond = condition_at(static_cast<std::size_t>(
          uniform_index(rng, condition_pool.size())));
      gate = tree.add_inhibit(name, children.front(), cond);
    } else if (kind < 4) {
      gate = tree.add_or(name, std::move(children));
    } else if (kind < 7 || children.size() < 2) {
      gate = tree.add_and(name, std::move(children));
    } else if (kind < 8 && options.allow_kofn) {
      const auto k = 1 + uniform_index(rng, children.size());
      gate = tree.add_k_of_n(name, static_cast<std::uint32_t>(k),
                             std::move(children));
    } else if (kind < 9 && options.allow_xor) {
      gate = tree.add_xor(name, std::move(children));
    } else {
      gate = tree.add_and(name, std::move(children));
    }
    pool.push_back(gate);
    referenced.push_back(false);
  }

  // Root: OR over every unreferenced node so the whole DAG is reachable.
  std::vector<fta::NodeId> roots;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    if (!referenced[i]) roots.push_back(pool[i]);
  }
  if (roots.empty()) roots.push_back(pool.back());
  tree.set_top(roots.size() == 1 ? roots.front()
                                 : tree.add_or("root", std::move(roots)));
  return tree;
}

/// Random leaf probabilities in [lo, hi], conditions in [0.3, 1].
inline fta::QuantificationInput random_probabilities(
    const fta::FaultTree& tree, std::uint64_t seed, double lo = 0.01,
    double hi = 0.3) {
  Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
  fta::QuantificationInput input =
      fta::QuantificationInput::for_tree(tree, 0.0);
  for (double& p : input.basic_event_probability) p = uniform(rng, lo, hi);
  for (double& p : input.condition_probability) p = uniform(rng, 0.3, 1.0);
  return input;
}

}  // namespace safeopt::testutil

#endif  // SAFEOPT_TESTS_TESTUTIL_RANDOM_TREE_H
