#include "safeopt/expr/dual.h"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "safeopt/expr/expr.h"
#include "safeopt/stats/distribution.h"

namespace safeopt::expr {
namespace {

TEST(DualTest, ConstantsHaveZeroGradient) {
  const Dual c(3.0, 2);
  EXPECT_DOUBLE_EQ(c.value(), 3.0);
  EXPECT_DOUBLE_EQ(c.grad(0), 0.0);
  EXPECT_DOUBLE_EQ(c.grad(1), 0.0);
}

TEST(DualTest, VariablesSeedUnitGradient) {
  const Dual x = Dual::variable(5.0, 3, 1);
  EXPECT_DOUBLE_EQ(x.value(), 5.0);
  EXPECT_DOUBLE_EQ(x.grad(0), 0.0);
  EXPECT_DOUBLE_EQ(x.grad(1), 1.0);
  EXPECT_DOUBLE_EQ(x.grad(2), 0.0);
}

TEST(DualTest, ProductRule) {
  const Dual x = Dual::variable(3.0, 2, 0);
  const Dual y = Dual::variable(4.0, 2, 1);
  const Dual p = x * y;
  EXPECT_DOUBLE_EQ(p.value(), 12.0);
  EXPECT_DOUBLE_EQ(p.grad(0), 4.0);  // ∂(xy)/∂x = y
  EXPECT_DOUBLE_EQ(p.grad(1), 3.0);  // ∂(xy)/∂y = x
}

TEST(DualTest, QuotientRule) {
  const Dual x = Dual::variable(3.0, 2, 0);
  const Dual y = Dual::variable(4.0, 2, 1);
  const Dual q = x / y;
  EXPECT_DOUBLE_EQ(q.value(), 0.75);
  EXPECT_DOUBLE_EQ(q.grad(0), 0.25);          // 1/y
  EXPECT_DOUBLE_EQ(q.grad(1), -3.0 / 16.0);   // −x/y²
}

TEST(DualTest, ChainRuleThroughExp) {
  const Dual x = Dual::variable(2.0, 1, 0);
  const Dual e = exp(x * x);
  EXPECT_NEAR(e.value(), std::exp(4.0), 1e-12);
  EXPECT_NEAR(e.grad(0), 2.0 * 2.0 * std::exp(4.0), 1e-10);
}

TEST(DualTest, MinMaxPickBranchGradient) {
  const Dual x = Dual::variable(1.0, 2, 0);
  const Dual y = Dual::variable(2.0, 2, 1);
  const Dual lo = min(x, y);
  EXPECT_DOUBLE_EQ(lo.grad(0), 1.0);
  EXPECT_DOUBLE_EQ(lo.grad(1), 0.0);
  const Dual hi = max(x, y);
  EXPECT_DOUBLE_EQ(hi.grad(0), 0.0);
  EXPECT_DOUBLE_EQ(hi.grad(1), 1.0);
}

// ------------------------------------------------------------------------
// Property sweep: autodiff gradients of whole expressions must agree with
// central finite differences at several evaluation points.

struct GradientCase {
  std::string name;
  std::function<Expr()> build;
  std::vector<double> at;  // (x, y)
};

class AutodiffVsFiniteDifference
    : public ::testing::TestWithParam<GradientCase> {};

TEST_P(AutodiffVsFiniteDifference, GradientsAgree) {
  const GradientCase& c = GetParam();
  const Expr e = c.build();
  const std::vector<std::string> wrt{"x", "y"};
  ParameterAssignment env{{"x", c.at[0]}, {"y", c.at[1]}};
  const Dual d = e.evaluate_dual(env, wrt);
  EXPECT_NEAR(d.value(), e.evaluate(env), 1e-12);

  const double h = 1e-6;
  for (std::size_t i = 0; i < wrt.size(); ++i) {
    ParameterAssignment up = env;
    ParameterAssignment down = env;
    up.set(wrt[i], c.at[i] + h);
    down.set(wrt[i], c.at[i] - h);
    const double numeric =
        (e.evaluate(up) - e.evaluate(down)) / (2.0 * h);
    const double scale = std::max(1.0, std::abs(numeric));
    EXPECT_NEAR(d.grad(i), numeric, 1e-5 * scale)
        << c.name << " d/d" << wrt[i];
  }
}

Expr hazard_like() {
  const auto transit = std::make_shared<stats::TruncatedNormal>(
      stats::TruncatedNormal::nonnegative(4.0, 2.0));
  const Expr ot1 = survival(transit, parameter("x"));
  const Expr ot2 = survival(transit, parameter("y"));
  // The paper's P(HCol) shape.
  return constant(1e-8) + 0.01 * (ot1 + (1.0 - ot1) * ot2);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, AutodiffVsFiniteDifference,
    ::testing::Values(
        GradientCase{"polynomial",
                     [] {
                       const Expr x = parameter("x");
                       const Expr y = parameter("y");
                       return x * x * y + 3.0 * x - y;
                     },
                     {1.5, -2.0}},
        GradientCase{"rational",
                     [] {
                       const Expr x = parameter("x");
                       const Expr y = parameter("y");
                       return (x + y) / (1.0 + x * x);
                     },
                     {0.7, 2.3}},
        GradientCase{"exp_log",
                     [] {
                       const Expr x = parameter("x");
                       const Expr y = parameter("y");
                       return exp(-0.13 * x) + log(y);
                     },
                     {15.6, 3.0}},
        GradientCase{"sqrt_pow",
                     [] {
                       const Expr x = parameter("x");
                       const Expr y = parameter("y");
                       return sqrt(x) * pow(y, 2.5);
                     },
                     {4.0, 2.0}},
        GradientCase{"poisson_exposure",
                     [] {
                       return poisson_exposure(0.13, parameter("x")) *
                              poisson_exposure(0.05, parameter("y"));
                     },
                     {15.6, 19.0}},
        GradientCase{"truncated_normal_survival", hazard_like, {8.0, 9.0}},
        GradientCase{"cost_function_shape",
                     [] {
                       return 100000.0 * hazard_like() +
                              poisson_exposure(0.13, parameter("y"));
                     },
                     {19.0, 15.6}}),
    [](const ::testing::TestParamInfo<GradientCase>& info) {
      return info.param.name;
    });

TEST(DualExprTest, ParametersNotInWrtAreConstants) {
  const Expr e = parameter("x") * parameter("z");
  const Dual d = e.evaluate_dual({{"x", 2.0}, {"z", 5.0}}, {"x"});
  EXPECT_DOUBLE_EQ(d.value(), 10.0);
  ASSERT_EQ(d.dims(), 1u);
  EXPECT_DOUBLE_EQ(d.grad(0), 5.0);  // z treated as the constant 5
}

TEST(DualExprTest, Function1FallsBackToNumericDerivative) {
  const Expr f = function1(
      "cube", [](double x) { return x * x * x; }, {}, parameter("x"));
  const Dual d = f.evaluate_dual({{"x", 2.0}}, {"x"});
  EXPECT_NEAR(d.grad(0), 12.0, 1e-5);
}

TEST(DualExprTest, Function1UsesAnalyticDerivativeWhenGiven) {
  const Expr f = function1(
      "cube", [](double x) { return x * x * x; },
      [](double x) { return 3.0 * x * x; }, parameter("x"));
  const Dual d = f.evaluate_dual({{"x", 2.0}}, {"x"});
  EXPECT_DOUBLE_EQ(d.grad(0), 12.0);
}

}  // namespace
}  // namespace safeopt::expr
