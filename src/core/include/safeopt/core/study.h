// core::Study — the front door of the library (ROADMAP: "multi-model
// quantification service layer").
//
// The paper's core idea is that safety optimization is a *combination*: any
// fault-tree quantification backend glued to any numeric solver over the
// free parameters X_1..X_l (§III). Study makes the combination explicit and
// swappable at runtime:
//
//   core::Study study(model.cost_model(), model.parameter_space());
//   const auto result = study.solver("multi_start", config)
//                            .observe(progress_callback)
//                            .run();
//
// and, when hazards carry their fault-tree derivations, quantification by
// any registered engine on the compiled-tape hot path:
//
//   study.hazard_tree("HCol", tree, quantification)
//        .engine("bdd");
//   const auto exact = study.quantify("HCol", result.optimal_parameters);
//
// Study subsumes SafetyOptimizer::optimize/evaluate_at/compare (it wraps a
// SafetyOptimizer and shares its once-compiled problem, so repeated run()
// calls reuse one tape) and produces bit-identical results to the legacy
// enum path for equivalent solver selections.
#ifndef SAFEOPT_CORE_STUDY_H
#define SAFEOPT_CORE_STUDY_H

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "safeopt/core/compiled_quantification.h"
#include "safeopt/core/parameterized_fta.h"
#include "safeopt/core/quantification_engine.h"
#include "safeopt/core/safety_optimizer.h"
#include "safeopt/ftio/study_document.h"
#include "safeopt/opt/solver.h"

namespace safeopt::core {

class Study {
 public:
  /// The cost model's expressions may only mention parameters of `space`.
  Study(CostModel model, ParameterSpace space);

  // ---- declarative construction (ftio grammar v2) --------------------------

  /// Assembles a runnable study from a parsed document: the ParameterSpace
  /// from its `param` declarations, one ParameterizedQuantification per
  /// `hazard` tree, the CostModel from Σ cost_i · P(H_i)(X) with each hazard
  /// probability derived from the tree's minimal cut sets (the document's
  /// `formula`, rare-event by default), and hazard_tree registrations so
  /// quantify() works out of the box. The document's `solver`/`engine`
  /// selections are applied when present (reserved solver options
  /// max_iterations / tolerance / max_evaluations / seed map onto the typed
  /// SolverConfig fields, everything else becomes a typed extra; engine
  /// options resolve through the typed option schema — engine_option_docs()
  /// lists every key — onto EngineConfig).
  /// The returned Study owns copies of the document's trees — it does not
  /// reference `document` after returning. Throws std::invalid_argument on
  /// semantic problems (no hazards, unknown engine option, ...).
  [[nodiscard]] static Study from_document(const ftio::StudyDocument& document);

  /// load_study(path) + from_document — the whole pipeline from one file.
  /// Throws ftio::ParseError (with the file name) on parse problems.
  [[nodiscard]] static Study from_file(const std::string& path);

  // (See also the free functions document_solver_selection /
  // document_engine_selection below — the same section mappings
  // from_document applies, exposed for validators and engine-only callers.)

  // ---- fluent configuration (each returns *this) ---------------------------

  /// Selects the numeric solver by registry name. Unknown names surface as
  /// std::invalid_argument from run(). Default: "multi_start" (the legacy
  /// default, multi-start Nelder–Mead).
  Study& solver(std::string name, opt::SolverConfig config = {});

  /// Deprecated-enum convenience: equivalent to solver() with the shim
  /// mapping of safety_optimizer.h.
  Study& algorithm(Algorithm algorithm);

  /// Progress observer for run(); overridden by an observer already present
  /// in the solver config.
  Study& observe(opt::ProgressObserver observer);

  /// Selects the quantification engine (by registry name) used by
  /// quantify(). Default: "fta". Resets engines already built for attached
  /// hazard trees.
  Study& engine(std::string name, EngineConfig config = {});

  /// Attaches the fault-tree derivation of the named hazard so engines can
  /// quantify it. `tree` and `quantification` are referenced, not copied —
  /// they must outlive the Study. The leaf tapes are compiled once (shared
  /// CompiledQuantification) so every engine evaluates parameter points on
  /// the compiled hot path.
  Study& hazard_tree(std::string hazard, const fta::FaultTree& tree,
                     const ParameterizedQuantification& quantification);

  // ---- execution -----------------------------------------------------------

  /// Minimizes f_cost over the parameter box with the configured solver.
  [[nodiscard]] SafetyOptimizationResult run() const;

  /// Evaluates cost and hazard probabilities at a configuration.
  [[nodiscard]] SafetyOptimizationResult evaluate_at(
      const expr::ParameterAssignment& configuration) const;

  /// Baseline-vs-optimum comparison (paper §IV-C.2 reporting).
  [[nodiscard]] ComparisonReport compare(
      const expr::ParameterAssignment& baseline,
      const SafetyOptimizationResult& optimal) const;

  /// Quantifies the named hazard at `at` with the configured engine: leaf
  /// probabilities come off the compiled tapes (CompiledQuantification::
  /// input_at), the engine turns them into a top-event probability. The
  /// hazard must have been attached via hazard_tree() (throws
  /// std::invalid_argument otherwise). Not thread-safe: engines and tapes
  /// are built lazily per Study.
  [[nodiscard]] QuantificationResult quantify(
      std::string_view hazard, const expr::ParameterAssignment& at) const;

  // ---- access --------------------------------------------------------------

  /// The compiled numeric problem; one tape per Study, address-stable.
  /// The rvalue overload returns a copy so a temporary Study cannot hand
  /// out a dangling reference.
  [[nodiscard]] const opt::Problem& problem() const& {
    return optimizer_.problem();
  }
  [[nodiscard]] opt::Problem problem() const&& { return problem(); }
  [[nodiscard]] const CostModel& model() const noexcept {
    return optimizer_.model();
  }
  [[nodiscard]] const ParameterSpace& space() const noexcept {
    return optimizer_.space();
  }
  [[nodiscard]] const std::string& solver_name() const noexcept {
    return solver_name_;
  }
  /// The active solver configuration (document selections included) —
  /// callers layering overrides on top (the CLI's --extra/--seed) start
  /// from this instead of silently dropping document options.
  [[nodiscard]] const opt::SolverConfig& solver_config() const noexcept {
    return solver_config_;
  }
  [[nodiscard]] const std::string& engine_name() const noexcept {
    return engine_name_;
  }
  /// The active engine configuration (document options and the formula-
  /// derived cut-set method included).
  [[nodiscard]] const EngineConfig& engine_config() const noexcept {
    return engine_config_;
  }

 private:
  struct TreeHazard {
    std::string hazard;
    const fta::FaultTree* tree = nullptr;
    const ParameterizedQuantification* quantification = nullptr;
    // Lazily built; mutable state of the (single-threaded) quantify path.
    mutable std::unique_ptr<CompiledQuantification> compiled;
    mutable std::unique_ptr<QuantificationEngine> engine;
    // Non-empty when the engine above is a fallback the configured engine
    // degraded to (budget/deadline blown during construction); appended to
    // every QuantificationResult::diagnostics the engine produces.
    mutable std::string degradation;
    // The resolved evaluation backend, cached alongside `compiled` and
    // stamped on every result's `backend` field; when the `backend=`
    // request degraded, the note is replayed into result diagnostics.
    mutable std::string backend_name;
    mutable std::string backend_note;

    // Copying a Study copies the attachment, not the lazily built caches
    // (each copy rebuilds its own engine — engines memoize and are
    // documented single-threaded).
    TreeHazard() = default;
    TreeHazard(TreeHazard&&) noexcept = default;
    TreeHazard& operator=(TreeHazard&&) noexcept = default;
    TreeHazard(const TreeHazard& other)
        : hazard(other.hazard),
          tree(other.tree),
          quantification(other.quantification) {}
    TreeHazard& operator=(const TreeHazard& other) {
      if (this != &other) {
        hazard = other.hazard;
        tree = other.tree;
        quantification = other.quantification;
        compiled.reset();
        engine.reset();
        degradation.clear();
      }
      return *this;
    }
  };

  /// Backing storage for document-loaded studies: the fault trees and
  /// quantifications the TreeHazard entries reference. Shared (and
  /// address-stable) so Study copies stay cheap and valid.
  struct OwnedModel;

  std::shared_ptr<const OwnedModel> owned_;
  SafetyOptimizer optimizer_;
  std::string solver_name_ = "multi_start";
  opt::SolverConfig solver_config_ =
      algorithm_solver_config(Algorithm::kMultiStartNelderMead);
  std::string engine_name_ = "fta";
  EngineConfig engine_config_;
  opt::ProgressObserver observer_;
  std::vector<TreeHazard> tree_hazards_;
};

/// The solver selection a document's `solver` section requests: the name
/// resolved through resolve_solver (legacy-equivalent defaults preserved),
/// reserved option keys mapped onto the typed SolverConfig fields, the rest
/// stored as typed extras. nullopt when the document has no solver section.
/// Throws std::invalid_argument on unknown names or malformed options —
/// `safeopt validate` surfaces these without building a Study.
[[nodiscard]] std::optional<SolverSelection> document_solver_selection(
    const ftio::StudyDocument& document);

/// The engine selection a document requests: its `engine` section when
/// present, otherwise the default cut-set engine — either way with the
/// `formula`-derived probability method (overridable by an explicit method
/// option). Throws std::invalid_argument on unknown names or malformed
/// options. Lets engine-only callers (quantifying a constant model) share
/// from_document's mapping.
[[nodiscard]] std::pair<std::string, EngineConfig> document_engine_selection(
    const ftio::StudyDocument& document);

/// Applies one `KEY=VALUE` engine option onto `config` with exactly the
/// document `engine` section's key mapping — the CLI's `--engine-opt`
/// surface. Both resolve through one typed option schema (see
/// engine_option_docs()), so unknown or mistyped keys fail with a uniform
/// "did you mean" diagnostic. Numeric-looking values are typed numeric
/// (typos like "8x" rejected); words pass through as text. Throws
/// std::invalid_argument on unknown keys or malformed values.
void set_engine_argument(EngineConfig& config,
                         const std::string& key_equals_value);

/// One row of the engine option schema, for help text and tooling.
struct EngineOptionDoc {
  std::string_view name;
  std::string_view type;  // "enum" | "count" | "number" | "flag"
  std::string_view doc;
};

/// Every engine option the schema knows, in declaration order — the single
/// source of truth behind apply_engine_option / set_engine_argument /
/// `safeopt --engine-opt` diagnostics.
[[nodiscard]] std::vector<EngineOptionDoc> engine_option_docs();

}  // namespace safeopt::core

#endif  // SAFEOPT_CORE_STUDY_H
