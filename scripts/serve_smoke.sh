#!/usr/bin/env bash
# End-to-end smoke test for `safeopt serve` (docs/service.md), registered as
# a Release-leg ctest (label "examples") by CMakeLists.txt:
#
#   * starts the server on an ephemeral port and parses the announced port
#     from its stdout line;
#   * POSTs /v1/quantify, /v1/optimize and /v1/validate with curl and diffs
#     each response body byte-for-byte against the offline CLI's --json
#     output for the same document (quantify == `safeopt quantify`,
#     optimize == `safeopt run --seed 7`, validate == `safeopt validate`);
#   * sends the 1k-corpus document under deadline_ms=1 and requires the
#     HTTP 504 / deadline_exceeded taxonomy mapping;
#   * checks GET /v1/stats still answers afterwards and carries the build
#     info string.
#
# Usage: serve_smoke.sh SAFEOPT_BINARY SOURCE_DIR
# Exit: 0 pass, 1 fail, 127 skip (curl or python3 not on PATH).
set -u

if [ "$#" -ne 2 ]; then
  echo "usage: serve_smoke.sh SAFEOPT_BINARY SOURCE_DIR" >&2
  exit 1
fi
BIN=$1
SRC=$2

command -v curl >/dev/null 2>&1 || { echo "SKIP: curl not found" >&2; exit 127; }
command -v python3 >/dev/null 2>&1 || { echo "SKIP: python3 not found" >&2; exit 127; }

MODEL="$SRC/examples/models/cooling_system.ft"
CORPUS="$SRC/examples/corpus/corpus_1k.ft"
WORK=$(mktemp -d)
SERVER_PID=""

cleanup() {
  if [ -n "$SERVER_PID" ]; then
    kill "$SERVER_PID" 2>/dev/null
    wait "$SERVER_PID" 2>/dev/null
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "FAIL: $1" >&2
  exit 1
}

# JSON-encode a study document into a request body. Extra key=value pairs
# (already JSON-typed) are merged in, e.g. `seed 7` or `deadline_ms 1`.
request_body() {
  python3 - "$@" <<'PYEOF'
import json, sys
path = sys.argv[1]
body = {"document": open(path).read(), "model": path}
extra = sys.argv[2:]
for key, value in zip(extra[0::2], extra[1::2]):
    body[key] = json.loads(value)
print(json.dumps(body))
PYEOF
}

"$BIN" serve --port 0 --threads 2 > "$WORK/serve.log" 2> "$WORK/serve.err" &
SERVER_PID=$!

for _ in $(seq 1 100); do
  grep -q "listening on" "$WORK/serve.log" 2>/dev/null && break
  kill -0 "$SERVER_PID" 2>/dev/null || fail "server exited early: $(cat "$WORK/serve.err")"
  sleep 0.1
done
PORT=$(sed -n 's/.*listening on 127.0.0.1:\([0-9]*\).*/\1/p' "$WORK/serve.log")
[ -n "$PORT" ] || fail "could not parse the announced port from: $(cat "$WORK/serve.log")"
BASE="http://127.0.0.1:$PORT"

# --- quantify: HTTP body == `safeopt quantify --json` ----------------------
request_body "$MODEL" > "$WORK/quantify_req.json"
STATUS=$(curl -s -o "$WORK/quantify_http.json" -w "%{http_code}" \
  -X POST --data-binary @"$WORK/quantify_req.json" "$BASE/v1/quantify")
[ "$STATUS" = "200" ] || fail "POST /v1/quantify returned $STATUS"
"$BIN" quantify "$MODEL" --json > "$WORK/quantify_cli.json" \
  || fail "offline quantify failed"
diff "$WORK/quantify_http.json" "$WORK/quantify_cli.json" \
  || fail "quantify: HTTP body differs from the CLI --json output"

# --- optimize: HTTP body == `safeopt run --json --seed 7` ------------------
request_body "$MODEL" seed 7 > "$WORK/optimize_req.json"
STATUS=$(curl -s -o "$WORK/optimize_http.json" -w "%{http_code}" \
  -X POST --data-binary @"$WORK/optimize_req.json" "$BASE/v1/optimize")
[ "$STATUS" = "200" ] || fail "POST /v1/optimize returned $STATUS"
"$BIN" run "$MODEL" --json --seed 7 > "$WORK/optimize_cli.json" \
  || fail "offline run failed"
diff "$WORK/optimize_http.json" "$WORK/optimize_cli.json" \
  || fail "optimize: HTTP body differs from the CLI --json output"

# --- validate: HTTP body == `safeopt validate --json` ----------------------
request_body "$MODEL" > "$WORK/validate_req.json"
STATUS=$(curl -s -o "$WORK/validate_http.json" -w "%{http_code}" \
  -X POST --data-binary @"$WORK/validate_req.json" "$BASE/v1/validate")
[ "$STATUS" = "200" ] || fail "POST /v1/validate returned $STATUS"
"$BIN" validate "$MODEL" --json > "$WORK/validate_cli.json" \
  || fail "offline validate failed"
diff "$WORK/validate_http.json" "$WORK/validate_cli.json" \
  || fail "validate: HTTP body differs from the CLI --json output"

# --- deadline-exceeded: 1k corpus under a 1 ms deadline → 504 --------------
request_body "$CORPUS" deadline_ms 1 > "$WORK/deadline_req.json"
STATUS=$(curl -s -o "$WORK/deadline_http.json" -w "%{http_code}" \
  -X POST --data-binary @"$WORK/deadline_req.json" "$BASE/v1/quantify")
[ "$STATUS" = "504" ] || fail "deadline_ms=1 quantify returned $STATUS, wanted 504"
grep -q '"category": "deadline_exceeded"' "$WORK/deadline_http.json" \
  || fail "504 body lacks the deadline_exceeded taxonomy category"

# --- the server is still healthy and reports its build ---------------------
STATUS=$(curl -s -o "$WORK/stats.json" -w "%{http_code}" "$BASE/v1/stats")
[ "$STATUS" = "200" ] || fail "GET /v1/stats returned $STATUS"
grep -q '"build":"safeopt' "$WORK/stats.json" \
  || fail "/v1/stats body lacks the build info string"

echo "serve smoke: quantify/optimize/validate parity, 504 deadline, stats OK"
exit 0
