// Epistemic uncertainty propagation (paper §V: "the results of this analysis
// depend a lot on how well the statistical model reflects reality").
//
// Instead of point estimates, each leaf probability carries an *uncertainty
// distribution* (classically a lognormal with an error factor, per the Fault
// Tree Handbook). Sampling leaf probabilities and re-quantifying the tree
// propagates that uncertainty to the top event, yielding percentiles of
// P(hazard) rather than a single number — the quantitative answer to "what
// if our failure statistics are off by 3x?".
#ifndef SAFEOPT_MC_UNCERTAINTY_H
#define SAFEOPT_MC_UNCERTAINTY_H

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "safeopt/fta/cut_sets.h"
#include "safeopt/fta/fault_tree.h"
#include "safeopt/fta/probability.h"
#include "safeopt/stats/distribution.h"

namespace safeopt::mc {

/// Uncertainty distributions for every leaf of one tree. A null entry means
/// the leaf probability is known exactly (its point value is used).
class UncertainQuantification {
 public:
  /// Starts from point estimates; all leaves exact.
  UncertainQuantification(const fta::FaultTree& tree,
                          fta::QuantificationInput point_estimates);

  /// Attaches an uncertainty distribution to a basic event or condition by
  /// name. Samples are clamped into [0, 1].
  void set_uncertainty(std::string_view name,
                       std::shared_ptr<const stats::Distribution> dist);

  /// Classical error-factor model: probability ~ LogNormal with median
  /// `median` and 95th/50th percentile ratio `error_factor` (> 1).
  void set_lognormal_error_factor(std::string_view name, double median,
                                  double error_factor);

  /// Draws one complete QuantificationInput.
  [[nodiscard]] fta::QuantificationInput sample(Rng& rng) const;

  [[nodiscard]] const fta::FaultTree& tree() const noexcept { return tree_; }
  [[nodiscard]] const fta::QuantificationInput& point_estimates()
      const noexcept {
    return point_;
  }

 private:
  const fta::FaultTree& tree_;
  fta::QuantificationInput point_;
  std::vector<std::shared_ptr<const stats::Distribution>> event_dists_;
  std::vector<std::shared_ptr<const stats::Distribution>> condition_dists_;
};

/// Percentile summary of the propagated top-event probability.
struct UncertaintyResult {
  double mean = 0.0;
  double median = 0.0;
  double p05 = 0.0;
  double p95 = 0.0;
  /// P(hazard) at the point estimates, for reference.
  double point_estimate = 0.0;
  std::size_t samples = 0;

  /// Ratio p95/p05 — how many orders of magnitude the model uncertainty
  /// spans at the top event.
  [[nodiscard]] double uncertainty_span() const noexcept {
    return p05 > 0.0 ? p95 / p05 : 0.0;
  }
};

/// Propagates leaf-probability uncertainty to the top event: `samples`
/// draws, each quantified by `method` over the minimal cut sets.
/// Precondition: samples >= 100.
[[nodiscard]] UncertaintyResult propagate_uncertainty(
    const UncertainQuantification& quantification,
    const fta::CutSetCollection& mcs, std::size_t samples,
    std::uint64_t seed = 0xebcu,
    fta::ProbabilityMethod method = fta::ProbabilityMethod::kRareEvent);

}  // namespace safeopt::mc

#endif  // SAFEOPT_MC_UNCERTAINTY_H
