// Registry-completeness acceptance test on the paper's own problem (Fig. 5
// Elbtunnel cost surface): every solver reachable through the registry, the
// deprecated Algorithm enum shim bit-identical to the registry path, and the
// quantification engines agreeing at the optimum.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "safeopt/core/study.h"
#include "safeopt/elbtunnel/elbtunnel_model.h"
#include "safeopt/fta/probability.h"
#include "safeopt/opt/solver.h"

namespace safeopt::elbtunnel {
namespace {

constexpr core::Algorithm kAllAlgorithms[] = {
    core::Algorithm::kGridSearch,
    core::Algorithm::kNelderMead,
    core::Algorithm::kMultiStartNelderMead,
    core::Algorithm::kGradientDescent,
    core::Algorithm::kHookeJeeves,
    core::Algorithm::kCoordinateDescent,
    core::Algorithm::kSimulatedAnnealing,
    core::Algorithm::kDifferentialEvolution,
};

TEST(RegistryParityTest, EnumShimIsBitIdenticalToTheRegistryPath) {
  const ElbtunnelModel model;
  const core::SafetyOptimizer optimizer = model.optimizer();
  core::Study study(model.cost_model(), model.parameter_space());
  for (const core::Algorithm algorithm : kAllAlgorithms) {
    const auto via_enum = optimizer.optimize(algorithm);
    const auto via_name =
        optimizer.optimize(core::algorithm_registry_name(algorithm),
                           core::algorithm_solver_config(algorithm));
    const auto via_study = study.algorithm(algorithm).run();
    for (const auto* result : {&via_name, &via_study}) {
      EXPECT_EQ(via_enum.optimization.argmin, result->optimization.argmin)
          << to_string(algorithm);
      EXPECT_EQ(via_enum.optimization.value, result->optimization.value)
          << to_string(algorithm);
      EXPECT_EQ(via_enum.optimization.evaluations,
                result->optimization.evaluations)
          << to_string(algorithm);
      EXPECT_EQ(via_enum.hazard_probabilities, result->hazard_probabilities)
          << to_string(algorithm);
    }
  }
}

TEST(RegistryParityTest, EveryRegisteredSolverRunsOnTheElbtunnelProblem) {
  const ElbtunnelModel model;
  core::Study study(model.cost_model(), model.parameter_space());
  for (const std::string& name : opt::SolverRegistry::available()) {
    opt::SolverConfig config;
    if (const auto algorithm = core::parse_algorithm(name)) {
      config = core::algorithm_solver_config(*algorithm);
    }
    if (opt::SolverRegistry::create(name)->traits().max_dimension == 1) {
      // 1-D-only solvers must refuse the 2-D timer box with a clear error.
      EXPECT_THROW((void)study.solver(name, config).run(),
                   std::invalid_argument)
          << name;
      continue;
    }
    const auto result = study.solver(name, config).run();
    ASSERT_EQ(result.optimization.argmin.size(), 2u) << name;
    // Every solver must improve on the engineers' guess (cost 0.0046615).
    EXPECT_LT(result.cost, 0.004650) << name;
    if (name == "gradient_descent") continue;
    // The derivative-free and global methods all land on the paper's cost
    // basin (T2* ~ 15.6; the surface is flat along T1, so only the cost is
    // pinned tightly). Projected gradient descent is exempt: it stalls on
    // the plateau partway down — the documented weakness that motivates the
    // other methods (and it behaves identically through the enum path).
    EXPECT_NEAR(result.cost, 0.00462, 5e-5) << name;
    EXPECT_NEAR(result.optimization.argmin[1], 15.76, 0.5) << name;
  }
}

TEST(RegistryParityTest, EnginesAgreeAtThePaperOptimum) {
  const ElbtunnelModel model;
  const fta::FaultTree collision = model.collision_tree();
  const core::ParameterizedQuantification quant =
      model.collision_quantification(collision);

  core::Study study(model.cost_model(), model.parameter_space());
  study.hazard_tree("HCol", collision, quant);
  const auto optimal = study.run();

  // The cut-set engine under the rare-event default reproduces the closed
  // form the optimizer minimized (HCol is assembled rare-event too).
  const double via_fta =
      study.engine("fta").quantify("HCol", optimal.optimal_parameters)
          .probability;
  EXPECT_NEAR(via_fta, optimal.hazard_probabilities[0],
              1e-12 * optimal.hazard_probabilities[0] + 1e-18);

  // The exact BDD value agrees to the rare-event bound's accuracy (the
  // probabilities involved are ~1e-8, so the bound is extremely tight).
  const double via_bdd =
      study.engine("bdd").quantify("HCol", optimal.optimal_parameters)
          .probability;
  EXPECT_NEAR(via_bdd, via_fta, 1e-12);
  EXPECT_LE(via_bdd, via_fta);  // rare event bounds from above

  // Monte Carlo: P(HCol) ~ 4e-8 needs more trials than a unit test should
  // burn, so sample the much likelier false-alarm hazard instead.
  const fta::FaultTree false_alarm = model.false_alarm_tree();
  const core::ParameterizedQuantification alarm_quant =
      model.false_alarm_quantification(false_alarm);
  core::Study alarm_study(model.cost_model(), model.parameter_space());
  alarm_study.hazard_tree("HAlr", false_alarm, alarm_quant);
  core::EngineConfig mc_config;
  mc_config.mc_trials = 400000;
  const auto sampled = alarm_study.engine("mc", mc_config)
                           .quantify("HAlr", optimal.optimal_parameters);
  const double alarm_exact = alarm_study.engine("bdd")
                                 .quantify("HAlr", optimal.optimal_parameters)
                                 .probability;
  ASSERT_TRUE(sampled.ci95.has_value());
  EXPECT_TRUE(sampled.ci95->contains(alarm_exact))
      << "estimate " << sampled.probability << " CI [" << sampled.ci95->lo
      << ", " << sampled.ci95->hi << "] exact " << alarm_exact;
}

}  // namespace
}  // namespace safeopt::elbtunnel
