#include "safeopt/expr/expr.h"

#include <algorithm>
#include <cmath>

#include "safeopt/support/contracts.h"
#include "safeopt/support/strings.h"

namespace safeopt::expr {

// --------------------------------------------------- ParameterAssignment

ParameterAssignment::ParameterAssignment(
    std::initializer_list<std::pair<std::string, double>> entries) {
  for (const auto& [name, value] : entries) set(name, value);
}

void ParameterAssignment::set(std::string name, double value) {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), name,
      [](const auto& entry, const std::string& key) {
        return entry.first < key;
      });
  if (it != entries_.end() && it->first == name) {
    it->second = value;
  } else {
    entries_.insert(it, {std::move(name), value});
  }
}

double ParameterAssignment::get(std::string_view name) const {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), name,
      [](const auto& entry, std::string_view key) {
        return entry.first < key;
      });
  SAFEOPT_EXPECTS(it != entries_.end() && it->first == name);
  return it->second;
}

bool ParameterAssignment::contains(std::string_view name) const noexcept {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), name,
      [](const auto& entry, std::string_view key) {
        return entry.first < key;
      });
  return it != entries_.end() && it->first == name;
}

// ------------------------------------------------------------------ Nodes

namespace detail {

class Node {
 public:
  virtual ~Node() = default;
  [[nodiscard]] virtual double value(const ParameterAssignment& env) const = 0;
  [[nodiscard]] virtual Dual dual(const ParameterAssignment& env,
                                  const std::vector<std::string>& wrt)
      const = 0;
  virtual void collect_parameters(std::set<std::string>& out) const = 0;
  [[nodiscard]] virtual std::string print() const = 0;
};

namespace {

class ConstNode final : public Node {
 public:
  explicit ConstNode(double c) : c_(c) {}
  double value(const ParameterAssignment&) const override { return c_; }
  Dual dual(const ParameterAssignment&,
            const std::vector<std::string>& wrt) const override {
    return Dual(c_, wrt.size());
  }
  void collect_parameters(std::set<std::string>&) const override {}
  std::string print() const override { return format_double(c_); }
  [[nodiscard]] double constant() const noexcept { return c_; }

 private:
  double c_;
};

class ParamNode final : public Node {
 public:
  explicit ParamNode(std::string name) : name_(std::move(name)) {}
  double value(const ParameterAssignment& env) const override {
    return env.get(name_);
  }
  Dual dual(const ParameterAssignment& env,
            const std::vector<std::string>& wrt) const override {
    const double v = env.get(name_);
    const auto it = std::find(wrt.begin(), wrt.end(), name_);
    if (it == wrt.end()) return Dual(v, wrt.size());
    return Dual::variable(v, wrt.size(),
                          static_cast<std::size_t>(it - wrt.begin()));
  }
  void collect_parameters(std::set<std::string>& out) const override {
    out.insert(name_);
  }
  std::string print() const override { return name_; }

 private:
  std::string name_;
};

enum class BinaryOp { kAdd, kSub, kMul, kDiv, kMin, kMax };

class BinaryNode final : public Node {
 public:
  BinaryNode(BinaryOp op, std::shared_ptr<const Node> a,
             std::shared_ptr<const Node> b)
      : op_(op), a_(std::move(a)), b_(std::move(b)) {}

  double value(const ParameterAssignment& env) const override {
    const double x = a_->value(env);
    const double y = b_->value(env);
    switch (op_) {
      case BinaryOp::kAdd: return x + y;
      case BinaryOp::kSub: return x - y;
      case BinaryOp::kMul: return x * y;
      case BinaryOp::kDiv: return x / y;
      case BinaryOp::kMin: return std::min(x, y);
      case BinaryOp::kMax: return std::max(x, y);
    }
    SAFEOPT_ASSERT(false);
    return 0.0;
  }

  Dual dual(const ParameterAssignment& env,
            const std::vector<std::string>& wrt) const override {
    const Dual x = a_->dual(env, wrt);
    const Dual y = b_->dual(env, wrt);
    switch (op_) {
      case BinaryOp::kAdd: return x + y;
      case BinaryOp::kSub: return x - y;
      case BinaryOp::kMul: return x * y;
      case BinaryOp::kDiv: return x / y;
      case BinaryOp::kMin: return min(x, y);
      case BinaryOp::kMax: return max(x, y);
    }
    SAFEOPT_ASSERT(false);
    return Dual(0.0, wrt.size());
  }

  void collect_parameters(std::set<std::string>& out) const override {
    a_->collect_parameters(out);
    b_->collect_parameters(out);
  }

  std::string print() const override {
    switch (op_) {
      case BinaryOp::kAdd: return "(" + a_->print() + " + " + b_->print() + ")";
      case BinaryOp::kSub: return "(" + a_->print() + " - " + b_->print() + ")";
      case BinaryOp::kMul: return "(" + a_->print() + " * " + b_->print() + ")";
      case BinaryOp::kDiv: return "(" + a_->print() + " / " + b_->print() + ")";
      case BinaryOp::kMin: return "min(" + a_->print() + ", " + b_->print() + ")";
      case BinaryOp::kMax: return "max(" + a_->print() + ", " + b_->print() + ")";
    }
    SAFEOPT_ASSERT(false);
    return {};
  }

 private:
  BinaryOp op_;
  std::shared_ptr<const Node> a_;
  std::shared_ptr<const Node> b_;
};

enum class UnaryOp { kNeg, kExp, kLog, kSqrt };

class UnaryNode final : public Node {
 public:
  UnaryNode(UnaryOp op, std::shared_ptr<const Node> a)
      : op_(op), a_(std::move(a)) {}

  double value(const ParameterAssignment& env) const override {
    const double x = a_->value(env);
    switch (op_) {
      case UnaryOp::kNeg: return -x;
      case UnaryOp::kExp: return std::exp(x);
      case UnaryOp::kLog: return std::log(x);
      case UnaryOp::kSqrt: return std::sqrt(x);
    }
    SAFEOPT_ASSERT(false);
    return 0.0;
  }

  Dual dual(const ParameterAssignment& env,
            const std::vector<std::string>& wrt) const override {
    const Dual x = a_->dual(env, wrt);
    switch (op_) {
      case UnaryOp::kNeg: return -x;
      case UnaryOp::kExp: return exp(x);
      case UnaryOp::kLog: return log(x);
      case UnaryOp::kSqrt: return sqrt(x);
    }
    SAFEOPT_ASSERT(false);
    return Dual(0.0, wrt.size());
  }

  void collect_parameters(std::set<std::string>& out) const override {
    a_->collect_parameters(out);
  }

  std::string print() const override {
    switch (op_) {
      case UnaryOp::kNeg: return "(-" + a_->print() + ")";
      case UnaryOp::kExp: return "exp(" + a_->print() + ")";
      case UnaryOp::kLog: return "log(" + a_->print() + ")";
      case UnaryOp::kSqrt: return "sqrt(" + a_->print() + ")";
    }
    SAFEOPT_ASSERT(false);
    return {};
  }

 private:
  UnaryOp op_;
  std::shared_ptr<const Node> a_;
};

class PowNode final : public Node {
 public:
  PowNode(std::shared_ptr<const Node> a, double p) : a_(std::move(a)), p_(p) {}
  double value(const ParameterAssignment& env) const override {
    return std::pow(a_->value(env), p_);
  }
  Dual dual(const ParameterAssignment& env,
            const std::vector<std::string>& wrt) const override {
    return pow(a_->dual(env, wrt), p_);
  }
  void collect_parameters(std::set<std::string>& out) const override {
    a_->collect_parameters(out);
  }
  std::string print() const override {
    return "pow(" + a_->print() + ", " + format_double(p_) + ")";
  }

 private:
  std::shared_ptr<const Node> a_;
  double p_;
};

/// F(arg) or 1 − F(arg) for a distribution F; derivative is ±pdf(arg).
class CdfNode final : public Node {
 public:
  CdfNode(std::shared_ptr<const stats::Distribution> dist,
          std::shared_ptr<const Node> arg, bool survival)
      : dist_(std::move(dist)), arg_(std::move(arg)), survival_(survival) {
    SAFEOPT_EXPECTS(dist_ != nullptr);
  }

  double value(const ParameterAssignment& env) const override {
    const double x = arg_->value(env);
    // survival() is cancellation-free deep in the tail, where 1 − cdf()
    // would round to zero — the regime hazard probabilities live in.
    return survival_ ? dist_->survival(x) : dist_->cdf(x);
  }

  Dual dual(const ParameterAssignment& env,
            const std::vector<std::string>& wrt) const override {
    const Dual x = arg_->dual(env, wrt);
    const double density = dist_->pdf(x.value());
    return survival_ ? x.chain(dist_->survival(x.value()), -density)
                     : x.chain(dist_->cdf(x.value()), density);
  }

  void collect_parameters(std::set<std::string>& out) const override {
    arg_->collect_parameters(out);
  }

  std::string print() const override {
    const std::string fn = survival_ ? "survival" : "cdf";
    return fn + "[" + dist_->name() + "](" + arg_->print() + ")";
  }

 private:
  std::shared_ptr<const stats::Distribution> dist_;
  std::shared_ptr<const Node> arg_;
  bool survival_;
};

/// Opaque numeric function with optional analytic derivative.
class FunctionNode final : public Node {
 public:
  FunctionNode(std::string name, std::function<double(double)> fn,
               std::function<double(double)> derivative,
               std::shared_ptr<const Node> arg)
      : name_(std::move(name)),
        fn_(std::move(fn)),
        derivative_(std::move(derivative)),
        arg_(std::move(arg)) {
    SAFEOPT_EXPECTS(static_cast<bool>(fn_));
  }

  double value(const ParameterAssignment& env) const override {
    return fn_(arg_->value(env));
  }

  Dual dual(const ParameterAssignment& env,
            const std::vector<std::string>& wrt) const override {
    const Dual x = arg_->dual(env, wrt);
    const double f = fn_(x.value());
    double df = 0.0;
    if (derivative_) {
      df = derivative_(x.value());
    } else {
      const double h = 1e-6 * std::max(1.0, std::abs(x.value()));
      df = (fn_(x.value() + h) - fn_(x.value() - h)) / (2.0 * h);
    }
    return x.chain(f, df);
  }

  void collect_parameters(std::set<std::string>& out) const override {
    arg_->collect_parameters(out);
  }

  std::string print() const override {
    return name_ + "(" + arg_->print() + ")";
  }

 private:
  std::string name_;
  std::function<double(double)> fn_;
  std::function<double(double)> derivative_;
  std::shared_ptr<const Node> arg_;
};

/// Returns the folded constant if the node is a ConstNode, else nullptr.
const ConstNode* as_constant(const std::shared_ptr<const Node>& node) {
  return dynamic_cast<const ConstNode*>(node.get());
}

Expr make_binary(BinaryOp op, Expr a, Expr b) {
  const ConstNode* ca = as_constant(a.node());
  const ConstNode* cb = as_constant(b.node());
  if (ca != nullptr && cb != nullptr) {
    const ParameterAssignment empty;
    const auto node =
        std::make_shared<BinaryNode>(op, a.node(), b.node());
    return constant(node->value(empty));
  }
  return Expr(std::make_shared<BinaryNode>(op, a.node(), b.node()));
}

}  // namespace
}  // namespace detail

// ------------------------------------------------------------------- Expr

Expr::Expr() : node_(std::make_shared<detail::ConstNode>(0.0)) {}

Expr::Expr(std::shared_ptr<const detail::Node> node)
    : node_(std::move(node)) {
  SAFEOPT_EXPECTS(node_ != nullptr);
}

double Expr::evaluate(const ParameterAssignment& env) const {
  return node_->value(env);
}

Dual Expr::evaluate_dual(const ParameterAssignment& env,
                         const std::vector<std::string>& wrt) const {
  return node_->dual(env, wrt);
}

std::set<std::string> Expr::parameters() const {
  std::set<std::string> out;
  node_->collect_parameters(out);
  return out;
}

std::string Expr::to_string() const { return node_->print(); }

bool Expr::is_constant() const { return parameters().empty(); }

// ----------------------------------------------------------- constructors

Expr constant(double c) {
  return Expr(std::make_shared<detail::ConstNode>(c));
}

Expr parameter(std::string name) {
  SAFEOPT_EXPECTS(!name.empty());
  return Expr(std::make_shared<detail::ParamNode>(std::move(name)));
}

Expr cdf(std::shared_ptr<const stats::Distribution> dist, Expr arg) {
  return Expr(
      std::make_shared<detail::CdfNode>(std::move(dist), arg.node(), false));
}

Expr survival(std::shared_ptr<const stats::Distribution> dist, Expr arg) {
  return Expr(
      std::make_shared<detail::CdfNode>(std::move(dist), arg.node(), true));
}

// -------------------------------------------------------------- operators

using detail::BinaryOp;
using detail::UnaryOp;

Expr operator+(Expr a, Expr b) {
  return detail::make_binary(BinaryOp::kAdd, std::move(a), std::move(b));
}
Expr operator-(Expr a, Expr b) {
  return detail::make_binary(BinaryOp::kSub, std::move(a), std::move(b));
}
Expr operator*(Expr a, Expr b) {
  return detail::make_binary(BinaryOp::kMul, std::move(a), std::move(b));
}
Expr operator/(Expr a, Expr b) {
  return detail::make_binary(BinaryOp::kDiv, std::move(a), std::move(b));
}
Expr operator-(Expr a) {
  return Expr(std::make_shared<detail::UnaryNode>(UnaryOp::kNeg, a.node()));
}

Expr operator+(double a, Expr b) { return constant(a) + std::move(b); }
Expr operator+(Expr a, double b) { return std::move(a) + constant(b); }
Expr operator-(double a, Expr b) { return constant(a) - std::move(b); }
Expr operator-(Expr a, double b) { return std::move(a) - constant(b); }
Expr operator*(double a, Expr b) { return constant(a) * std::move(b); }
Expr operator*(Expr a, double b) { return std::move(a) * constant(b); }
Expr operator/(double a, Expr b) { return constant(a) / std::move(b); }
Expr operator/(Expr a, double b) { return std::move(a) / constant(b); }

// -------------------------------------------------------------- functions

Expr exp(Expr a) {
  return Expr(std::make_shared<detail::UnaryNode>(UnaryOp::kExp, a.node()));
}
Expr log(Expr a) {
  return Expr(std::make_shared<detail::UnaryNode>(UnaryOp::kLog, a.node()));
}
Expr sqrt(Expr a) {
  return Expr(std::make_shared<detail::UnaryNode>(UnaryOp::kSqrt, a.node()));
}
Expr pow(Expr a, double p) {
  return Expr(std::make_shared<detail::PowNode>(a.node(), p));
}
Expr min(Expr a, Expr b) {
  return detail::make_binary(BinaryOp::kMin, std::move(a), std::move(b));
}
Expr max(Expr a, Expr b) {
  return detail::make_binary(BinaryOp::kMax, std::move(a), std::move(b));
}
Expr clamp(Expr a, double lo, double hi) {
  SAFEOPT_EXPECTS(lo <= hi);
  return min(max(std::move(a), constant(lo)), constant(hi));
}

Expr poisson_exposure(double rate, Expr window) {
  SAFEOPT_EXPECTS(rate >= 0.0);
  return 1.0 - exp(constant(-rate) * std::move(window));
}

Expr function1(std::string name, std::function<double(double)> fn,
               std::function<double(double)> derivative, Expr arg) {
  return Expr(std::make_shared<detail::FunctionNode>(
      std::move(name), std::move(fn), std::move(derivative), arg.node()));
}

}  // namespace safeopt::expr
