// Fixture: NOT declared checkpointed — the rule only applies to files on
// the declared list or carrying the self-declaration marker.
#include <cstddef>

double sum(const double* values, std::size_t n) {
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) total += values[i];
  return total;
}
