// Experiment: the §IV-A verification result — "With formal verification
// using the SMV-tool we discovered a design flaw, which resulted in a
// possible hazard if two OHVs passed LBpre simultaneously. After presenting
// solutions to this problem, we could proof functional correctness for the
// collision hazards."
//
// Regenerated here with the explicit-state model checker: the original
// design must yield a collision counterexample with >= 2 OHVs, the revised
// design must verify for 1..3 OHVs.
#include <cstdio>

#include "safeopt/modelcheck/height_control_model.h"

int main() {
  using namespace safeopt::modelcheck;

  std::printf("=== §IV-A: height-control logic verification ===\n\n");
  std::printf("%-10s %6s %-24s %10s\n", "design", "OHVs", "verdict",
              "states");
  struct Row {
    ControlDesign design;
    int ohvs;
    bool expect_safe;
  };
  const Row rows[] = {
      {ControlDesign::kOriginal, 1, true},
      {ControlDesign::kOriginal, 2, false},
      {ControlDesign::kOriginal, 3, false},
      {ControlDesign::kRevised, 1, true},
      {ControlDesign::kRevised, 2, true},
      {ControlDesign::kRevised, 3, true},
  };
  bool all_as_expected = true;
  for (const Row& row : rows) {
    const HeightControlModel model(row.design, row.ohvs);
    const CheckResult result = model.verify();
    const bool as_expected = result.holds == row.expect_safe;
    all_as_expected = all_as_expected && as_expected;
    std::printf("%-10s %6d %-24s %10zu%s\n",
                row.design == ControlDesign::kOriginal ? "original"
                                                       : "revised",
                row.ohvs,
                result.holds ? "collision unreachable"
                             : "COLLISION REACHABLE",
                result.states_explored, as_expected ? "" : "  << UNEXPECTED");
  }

  const HeightControlModel flawed(ControlDesign::kOriginal, 2);
  const CheckResult result = flawed.verify();
  std::printf("\nshortest counterexample (original design, two OHVs):\n%s",
              format_trace(flawed, result.counterexample).c_str());
  std::printf("\npaper-vs-measured: %s\n",
              all_as_expected
                  ? "all verdicts match the paper's §IV-A account"
                  : "MISMATCH with the paper's account");
  return 0;
}
