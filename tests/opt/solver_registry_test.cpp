#include "safeopt/opt/solver.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "safeopt/opt/golden_section.h"
#include "safeopt/opt/nelder_mead.h"

namespace safeopt::opt {
namespace {

/// Smooth convex bowl with its minimum at (0.3, −0.2): every solver must
/// find it.
Problem bowl_2d() {
  Problem problem;
  problem.bounds = Box({-1.0, -1.0}, {1.0, 1.0});
  problem.objective = [](std::span<const double> x) {
    const double a = x[0] - 0.3;
    const double b = x[1] + 0.2;
    return a * a + 2.0 * b * b;
  };
  return problem;
}

Problem bowl_1d() {
  Problem problem;
  problem.bounds = Box({-1.0}, {1.0});
  problem.objective = [](std::span<const double> x) {
    const double a = x[0] - 0.3;
    return a * a;
  };
  return problem;
}

constexpr const char* kBuiltins[] = {
    "coordinate_descent", "differential_evolution", "golden_section",
    "gradient_descent",   "grid_search",            "hooke_jeeves",
    "multi_start",        "nelder_mead",            "simulated_annealing",
};

TEST(SolverRegistryTest, ListsEveryBuiltinSolver) {
  const std::vector<std::string> available = SolverRegistry::available();
  for (const char* name : kBuiltins) {
    EXPECT_TRUE(std::find(available.begin(), available.end(), name) !=
                available.end())
        << name;
    EXPECT_TRUE(SolverRegistry::contains(name)) << name;
  }
}

TEST(SolverRegistryTest, CreateReportsNameAndUnknownNamesThrow) {
  for (const char* name : kBuiltins) {
    EXPECT_EQ(SolverRegistry::create(name)->name(), name);
  }
  try {
    (void)SolverRegistry::create("no_such_solver");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("available"), std::string::npos);
    EXPECT_NE(std::string(error.what()).find("nelder_mead"),
              std::string::npos);
  }
}

TEST(SolverRegistryTest, EveryBuiltinFindsTheBowlMinimum) {
  for (const char* name : kBuiltins) {
    const auto solver = SolverRegistry::create(name);
    const bool one_dimensional = solver->traits().max_dimension == 1;
    const Problem problem = one_dimensional ? bowl_1d() : bowl_2d();
    const OptimizationResult result = solver->solve(problem);
    EXPECT_NEAR(result.argmin[0], 0.3, 0.05) << name;
    if (!one_dimensional) {
      EXPECT_NEAR(result.argmin[1], -0.2, 0.05) << name;
    }
  }
}

TEST(SolverRegistryTest, GoldenSectionRejectsMultiDimensionalBoxes) {
  const auto solver = SolverRegistry::create("golden_section");
  EXPECT_EQ(solver->traits().max_dimension, 1u);
  try {
    (void)solver->solve(bowl_2d());
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("1-dimensional"),
              std::string::npos);
    EXPECT_NE(std::string(error.what()).find("2 dimensions"),
              std::string::npos);
  }
}

TEST(SolverRegistryTest, GoldenSectionMatchesTheDirectClassBitwise) {
  const Problem problem = bowl_1d();
  const OptimizationResult direct = GoldenSection().minimize(problem);
  const OptimizationResult registry =
      SolverRegistry::create("golden_section")->solve(problem);
  EXPECT_EQ(direct.argmin, registry.argmin);
  EXPECT_EQ(direct.value, registry.value);
  EXPECT_EQ(direct.evaluations, registry.evaluations);
}

TEST(SolverRegistryTest, RegistrarRegistersACustomSolver) {
  struct CenterSolver final : Solver {
    [[nodiscard]] std::string_view name() const noexcept override {
      return "test_center";
    }
    [[nodiscard]] OptimizationResult run(
        const Problem& problem, const SolverConfig&) const override {
      OptimizationResult result;
      result.argmin = problem.bounds.center();
      result.value = problem.objective(result.argmin);
      result.evaluations = 1;
      result.converged = true;
      return result;
    }
  };
  const SolverRegistrar registrar("test_center",
                                  [] { return std::make_unique<CenterSolver>(); });
  ASSERT_TRUE(SolverRegistry::contains("test_center"));
  const OptimizationResult result =
      SolverRegistry::create("test_center")->solve(bowl_2d());
  EXPECT_EQ(result.argmin, (std::vector<double>{0.0, 0.0}));
}

TEST(SolverConfigTest, TypedExtrasRoundTrip) {
  SolverConfig config;
  EXPECT_FALSE(config.has("starts"));
  EXPECT_EQ(config.number_or("starts", 8.0), 8.0);
  EXPECT_EQ(config.string_or("inner", "nelder_mead"), "nelder_mead");
  config.set("starts", 4.0).set("inner", std::string("hooke_jeeves"));
  EXPECT_TRUE(config.has("starts"));
  EXPECT_TRUE(config.has("inner"));
  EXPECT_EQ(config.number_or("starts", 8.0), 4.0);
  EXPECT_EQ(config.string_or("inner", "nelder_mead"), "hooke_jeeves");
  EXPECT_EQ(config.stopping().max_iterations, 1000u);
  EXPECT_EQ(config.stopping().tolerance, 1e-10);
}

TEST(SolverConfigTest, CountExtrasRejectNonsenseValues) {
  // Size-typed extras come from user input; a negative/NaN/fractional
  // value must surface as a clear error, never as a double→unsigned cast.
  for (const double bad :
       {-1.0, 0.5, std::nan(""), std::numeric_limits<double>::infinity()}) {
    SolverConfig config;
    config.set("starts", bad);
    EXPECT_THROW((void)config.count_or("starts", 8), std::invalid_argument)
        << bad;
    EXPECT_THROW((void)SolverRegistry::create("multi_start")
                     ->solve(bowl_2d(), config),
                 std::invalid_argument)
        << bad;
  }
  SolverConfig fine;
  fine.set("starts", 3.0);
  EXPECT_EQ(fine.count_or("starts", 8), 3u);
  EXPECT_EQ(fine.count_or("absent", 8), 8u);
}

TEST(SolverConfigTest, SeedIsHonoredByStochasticSolvers) {
  const Problem problem = bowl_2d();
  const auto solve_with_seed = [&](std::uint64_t seed) {
    SolverConfig config;
    config.seed = seed;
    return SolverRegistry::create("simulated_annealing")
        ->solve(problem, config);
  };
  const auto first = solve_with_seed(1);
  const auto again = solve_with_seed(1);
  const auto other = solve_with_seed(2);
  EXPECT_EQ(first.argmin, again.argmin);  // deterministic under a seed
  EXPECT_NE(first.argmin, other.argmin);  // and the seed matters
}

TEST(SolverRegistryTest, MultiStartWrapsAnyInnerSolverByName) {
  SolverConfig config;
  config.set("inner", std::string("hooke_jeeves")).set("starts", 4.0);
  const OptimizationResult result =
      SolverRegistry::create("multi_start")->solve(bowl_2d(), config);
  EXPECT_NEAR(result.argmin[0], 0.3, 1e-4);
  EXPECT_NEAR(result.argmin[1], -0.2, 1e-4);

  SolverConfig bad_inner;
  bad_inner.set("inner", std::string("golden_section"));
  EXPECT_THROW((void)SolverRegistry::create("multi_start")
                   ->solve(bowl_2d(), bad_inner),
               std::invalid_argument);

  // Self-nesting would recurse 8^depth; refused up front.
  SolverConfig recursive;
  recursive.set("inner", std::string("multi_start"));
  EXPECT_THROW((void)SolverRegistry::create("multi_start")
                   ->solve(bowl_2d(), recursive),
               std::invalid_argument);
}

TEST(SolverObserverTest, BestSoFarIsMonotoneAndEvaluationsNondecreasing) {
  for (const char* name : kBuiltins) {
    const auto solver = SolverRegistry::create(name);
    const Problem problem =
        solver->traits().max_dimension == 1 ? bowl_1d() : bowl_2d();
    std::vector<ProgressEvent> events;
    std::vector<std::vector<double>> points;
    SolverConfig config;
    config.observer = [&](const ProgressEvent& event) {
      events.push_back(event);
      points.emplace_back(event.best_point.begin(), event.best_point.end());
    };
    const OptimizationResult result = solver->solve(problem, config);
    ASSERT_FALSE(events.empty()) << name;
    for (std::size_t i = 1; i < events.size(); ++i) {
      EXPECT_LE(events[i].best_value, events[i - 1].best_value) << name;
      EXPECT_GE(events[i].evaluations, events[i - 1].evaluations) << name;
      EXPECT_EQ(events[i].iteration, i) << name;
    }
    // The final best-so-far is at least as good as the reported optimum
    // (solvers may report a point refined with evaluations of their own,
    // never a worse one) and its snapshot evaluates to its value.
    EXPECT_LE(events.back().best_value, result.value + 1e-15) << name;
    EXPECT_EQ(problem.objective(points.back()), events.back().best_value)
        << name;
  }
}

TEST(SolverObserverTest, ObservationDoesNotChangeTheResult) {
  for (const char* name : kBuiltins) {
    const auto solver = SolverRegistry::create(name);
    const Problem problem =
        solver->traits().max_dimension == 1 ? bowl_1d() : bowl_2d();
    const OptimizationResult plain = solver->solve(problem);
    SolverConfig config;
    std::size_t calls = 0;
    config.observer = [&calls](const ProgressEvent&) { ++calls; };
    const OptimizationResult observed = solver->solve(problem, config);
    EXPECT_EQ(plain.argmin, observed.argmin) << name;
    EXPECT_EQ(plain.value, observed.value) << name;
    EXPECT_GT(calls, 0u) << name;
  }
}

TEST(SolverBudgetTest, EvaluationCountsNeverExceedTheBudget) {
  constexpr std::size_t kBudget = 37;
  for (const char* name : kBuiltins) {
    const auto solver = SolverRegistry::create(name);
    const Problem problem =
        solver->traits().max_dimension == 1 ? bowl_1d() : bowl_2d();
    SolverConfig config;
    config.max_evaluations = kBudget;
    const OptimizationResult result = solver->solve(problem, config);
    EXPECT_LE(result.evaluations, kBudget) << name;
    // Every builtin needs more than 37 evaluations on the bowl, so the
    // budget must have been the binding constraint.
    EXPECT_FALSE(result.converged) << name;
    EXPECT_NE(result.message.find("budget"), std::string::npos) << name;
    // The returned point is the best one actually evaluated.
    EXPECT_EQ(problem.objective(result.argmin), result.value) << name;
  }
}

TEST(SolverBudgetTest, ExactFitBudgetIsANormalCompletion) {
  // A budget equal to what the run needs anyway must not flip the result
  // to "budget exhausted" — nothing was ever refused.
  const Problem problem = bowl_2d();
  const auto solver = SolverRegistry::create("nelder_mead");
  const OptimizationResult free_run = solver->solve(problem);
  ASSERT_TRUE(free_run.converged);
  SolverConfig config;
  config.max_evaluations = free_run.evaluations;
  const OptimizationResult fitted = solver->solve(problem, config);
  EXPECT_TRUE(fitted.converged);
  EXPECT_EQ(fitted.argmin, free_run.argmin);
  EXPECT_EQ(fitted.value, free_run.value);
  EXPECT_EQ(fitted.evaluations, free_run.evaluations);
}

TEST(SolverBudgetTest, BudgetedRunsStayDeterministic) {
  SolverConfig config;
  config.max_evaluations = 50;
  const Problem problem = bowl_2d();
  const auto first =
      SolverRegistry::create("nelder_mead")->solve(problem, config);
  const auto again =
      SolverRegistry::create("nelder_mead")->solve(problem, config);
  EXPECT_EQ(first.argmin, again.argmin);
  EXPECT_EQ(first.value, again.value);
  EXPECT_EQ(first.evaluations, again.evaluations);
}

}  // namespace
}  // namespace safeopt::opt
