// Minimal cut sets (paper §II-B) and the MOCUS top-down generation algorithm.
//
// A cut set pairs the basic events whose joint occurrence threatens the
// hazard with the INHIBIT conditions that must additionally hold — the
// "constraints" of paper §II-D.1. Keeping the two apart is what allows
// quantification to apply Eq. 2, P(CS) = P(Constraints)·∏ P(PF).
//
// MOCUS (Fussell & Vesely 1972) expands the tree top-down: an OR gate splits
// a working set into one set per child, an AND gate replaces the gate by all
// of its children, k-of-n expands to every k-subset, XOR is expanded as OR
// (its coherent hull) and INHIBIT contributes both its cause and condition.
// Absorption (dropping supersets) afterwards yields the *minimal* cut sets.
#ifndef SAFEOPT_FTA_CUT_SETS_H
#define SAFEOPT_FTA_CUT_SETS_H

#include <cstddef>
#include <string>
#include <vector>

#include "safeopt/fta/fault_tree.h"

namespace safeopt::fta {

/// One cut set: sorted, duplicate-free ordinals of its basic events and of
/// the conditions constraining it.
struct CutSet {
  std::vector<BasicEventOrdinal> events;
  std::vector<ConditionOrdinal> conditions;

  [[nodiscard]] std::size_t order() const noexcept { return events.size(); }
  [[nodiscard]] bool is_single_point_of_failure() const noexcept {
    return events.size() == 1;
  }
  /// True if this cut set's events+conditions are a subset of `other`'s.
  [[nodiscard]] bool subsumes(const CutSet& other) const noexcept;

  friend bool operator==(const CutSet&, const CutSet&) = default;
  /// Orders by size, then lexicographically — stable report order.
  [[nodiscard]] static bool less(const CutSet& a, const CutSet& b) noexcept;
};

/// The set of minimal cut sets of one hazard (paper notation: MCSS_Hi).
class CutSetCollection {
 public:
  CutSetCollection() = default;
  explicit CutSetCollection(std::vector<CutSet> sets);

  [[nodiscard]] std::size_t size() const noexcept { return sets_.size(); }
  [[nodiscard]] bool empty() const noexcept { return sets_.empty(); }
  [[nodiscard]] const CutSet& operator[](std::size_t i) const;
  [[nodiscard]] const std::vector<CutSet>& sets() const noexcept {
    return sets_;
  }
  [[nodiscard]] auto begin() const noexcept { return sets_.begin(); }
  [[nodiscard]] auto end() const noexcept { return sets_.end(); }

  /// Largest cut-set order (0 for an empty collection).
  [[nodiscard]] std::size_t max_order() const noexcept;
  /// Number of cut sets of exactly the given order.
  [[nodiscard]] std::size_t count_of_order(std::size_t order) const noexcept;
  /// All single-point-of-failure event ordinals, sorted.
  [[nodiscard]] std::vector<BasicEventOrdinal> single_points_of_failure()
      const;

  /// Removes non-minimal sets (any set subsuming another is dropped) and
  /// sorts canonically. Idempotent.
  void minimize();

  /// True if every set is minimal w.r.t. every other (the MCS invariant the
  /// property tests assert).
  [[nodiscard]] bool is_minimal() const noexcept;

  /// Renders e.g. "{OT1}, {OT2}, {FDpre, FDpost | OHV_present}".
  [[nodiscard]] std::string to_string(const FaultTree& tree) const;

 private:
  std::vector<CutSet> sets_;
};

/// Generates the minimal cut sets of `tree` with MOCUS + absorption.
/// Precondition: tree.has_top() and tree.validate() is clean.
[[nodiscard]] CutSetCollection minimal_cut_sets(const FaultTree& tree);

/// Reference implementation for testing: enumerates all assignments of the
/// basic events (conditions forced true), keeps the minimal true ones.
/// Precondition: tree.basic_event_count() <= 24.
[[nodiscard]] CutSetCollection minimal_cut_sets_bruteforce(
    const FaultTree& tree);

/// Minimal *path* sets: the smallest sets of primary failures whose joint
/// absence guarantees the hazard cannot occur — the success-tree dual of
/// minimal cut sets (computed by swapping AND<->OR and k-of-n -> (n−k+1)-of-n
/// and running MOCUS on the dual). Every minimal path set intersects every
/// minimal cut set; maintenance planning reads them as "keep all of these
/// healthy and the system is safe".
/// Precondition: coherent tree (no XOR); INHIBIT dualizes like AND.
[[nodiscard]] CutSetCollection minimal_path_sets(const FaultTree& tree);

}  // namespace safeopt::fta

#endif  // SAFEOPT_FTA_CUT_SETS_H
