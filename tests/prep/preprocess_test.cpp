// Property tests for the preprocessing pipeline (src/prep): the structure
// passes must preserve the top-event function *bitwise* on the BDD path
// (they keep the DFS leaf order, and the ROBDD is canonical), and the
// modularized cut-set path must reproduce MOCUS exactly. Random trees give
// breadth (25 seeds, all gate kinds), the shipped example models give
// realistic shapes, and the scaling corpus's 1k tier gives a tree large
// enough for modularization to actually bite.
#include "safeopt/prep/preprocess.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "../../tools/corpus.h"
#include "../testutil/random_tree.h"
#include "safeopt/bdd/bdd.h"
#include "safeopt/fta/cut_sets.h"
#include "safeopt/ftio/study_document.h"
#include "safeopt/support/strings.h"

namespace safeopt::prep {
namespace {

constexpr std::uint64_t kSeeds = 25;

testutil::RandomTreeOptions big_tree_options() {
  testutil::RandomTreeOptions options;
  options.basic_events = 14;
  options.conditions = 2;
  options.gates = 12;
  return options;
}

std::vector<fta::CutSet> canonical_mcs(fta::CutSetCollection collection) {
  collection.minimize();  // idempotent: sorts canonically
  return collection.sets();
}

// --- The headline property: structure passes are bitwise lossless. -------

TEST(PreprocessPropertyTest, PassesPreserveProbabilityBitwise) {
  // With modularization off, preprocessing rewrites the tree but keeps the
  // DFS first-visit leaf order. Canonicity then forces the *same* decision
  // diagram, so the Shannon probability is bitwise equal — EXPECT_EQ on
  // doubles, not EXPECT_NEAR.
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    const fta::FaultTree tree = testutil::random_tree(seed);
    const fta::QuantificationInput input =
        testutil::random_probabilities(tree, seed);

    bdd::CompiledFaultTree plain = bdd::compile(tree);
    const double expected = plain.probability(input);

    PreprocessOptions options;
    options.modularize = false;
    const PreprocessedTree preprocessed = preprocess(tree, options);
    ASSERT_EQ(preprocessed.subtrees.size(), 1u) << "seed " << seed;
    const ModularBddResult result = quantify_bdd(preprocessed, input);
    EXPECT_EQ(result.probability, expected) << "seed " << seed;
  }
}

TEST(PreprocessPropertyTest, ModularizedProbabilityAgreesToRounding) {
  // Modularization is exact under leaf independence but re-associates the
  // floating-point product, so the contract weakens from bitwise to
  // last-ulp agreement.
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    const fta::FaultTree tree = testutil::random_tree(seed, big_tree_options());
    const fta::QuantificationInput input =
        testutil::random_probabilities(tree, seed);

    bdd::CompiledFaultTree plain = bdd::compile(tree);
    const double expected = plain.probability(input);

    PreprocessOptions options;
    options.module_min_leaves = 2;  // small trees: extract aggressively
    const ModularBddResult result =
        quantify_bdd(preprocess(tree, options), input);
    EXPECT_NEAR(result.probability, expected, 1e-12 * std::abs(expected))
        << "seed " << seed;
  }
}

TEST(PreprocessPropertyTest, ModularizedCutSetsEqualMocus) {
  // The composed modular MCS must be *equal* to MOCUS on the original tree
  // — same sets, same canonical order — for every coherent random tree.
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    const fta::FaultTree tree = testutil::random_tree(seed, big_tree_options());

    PreprocessOptions options;
    options.module_min_leaves = 2;
    const std::vector<fta::CutSet> modular =
        canonical_mcs(minimal_cut_sets(preprocess(tree, options)));
    const std::vector<fta::CutSet> mocus =
        canonical_mcs(fta::minimal_cut_sets(tree));
    EXPECT_EQ(modular, mocus) << "seed " << seed;
  }
}

TEST(PreprocessPropertyTest, ExampleModelsCutSetsEqualMocus) {
  const std::string base = std::string(SAFEOPT_SOURCE_DIR) + "/examples/models/";
  for (const char* name : {"cooling_system.ft", "elbtunnel.ft",
                           "pressure_vessel.ft", "railroad_crossing.ft"}) {
    const ftio::StudyDocument document = ftio::load_study(base + name);
    for (const ftio::TreeModel& model : document.trees) {
      PreprocessOptions options;
      options.module_min_leaves = 2;
      const std::vector<fta::CutSet> modular =
          canonical_mcs(minimal_cut_sets(preprocess(model.tree, options)));
      const std::vector<fta::CutSet> mocus =
          canonical_mcs(fta::minimal_cut_sets(model.tree));
      EXPECT_EQ(modular, mocus)
          << name << " tree " << model.tree.name();
    }
  }
}

TEST(PreprocessPropertyTest, CorpusTierQuantifiesLikePlainBdd) {
  // The smallest committed corpus tier end to end: 1008 events, a 25-of-50
  // top vote, INHIBIT clusters — the shape the pipeline was built for.
  const corpus::CorpusModel model =
      corpus::make_corpus(corpus::tier_by_name("1k"));

  bdd::BddOptions geometry;
  geometry.initial_table_size = std::size_t{1} << 16;
  geometry.cache_size = std::size_t{1} << 18;
  bdd::CompiledFaultTree plain = bdd::compile(model.tree, geometry);
  const double expected = plain.probability(model.input);

  const PreprocessedTree preprocessed = preprocess(model.tree, {});
  const ModularBddResult result =
      quantify_bdd(preprocessed, model.input, geometry);
  EXPECT_GT(preprocessed.statistics.modules, 50u);
  EXPECT_NEAR(result.probability, expected, 1e-9 * expected);
  // The ablation the bench gates: an order of magnitude fewer nodes.
  EXPECT_LT(result.decision_nodes * 10,
            plain.manager.statistics().decision_node_count());
}

// --- Per-pass unit tests on hand-built trees. ----------------------------

TEST(PreprocessPassTest, NormalizeExpandsEveryKofN) {
  fta::FaultTree tree("kofn");
  std::vector<fta::NodeId> leaves;
  for (int i = 0; i < 6; ++i) {
    leaves.push_back(tree.add_basic_event(concat("e", std::to_string(i))));
  }
  tree.set_top(tree.add_k_of_n("top", 3, std::move(leaves)));

  PreprocessOptions options;
  options.modularize = false;
  const PreprocessedTree preprocessed = preprocess(tree, options);
  const fta::FaultTree& out = preprocessed.top().tree;
  for (fta::NodeId id = 0; id < out.node_count(); ++id) {
    if (out.kind(id) == fta::NodeKind::kGate) {
      EXPECT_NE(out.gate_type(id), fta::GateType::kKofN)
          << "k-of-n gate survived normalization: " << out.node_name(id);
    }
  }
}

TEST(PreprocessPassTest, PropagateDegeneratesTrivialVotes) {
  // 1-of-n is an OR and n-of-n is an AND; propagate rewrites both before
  // normalization ever sees them (its rewrite count proves it ran).
  fta::FaultTree tree("votes");
  const auto e0 = tree.add_basic_event("e0");
  const auto e1 = tree.add_basic_event("e1");
  const auto e2 = tree.add_basic_event("e2");
  const auto one = tree.add_k_of_n("one", 1, {e0, e1});
  const auto all = tree.add_k_of_n("all", 2, {e1, e2});
  tree.set_top(tree.add_and("top", {one, all}));

  PreprocessOptions options;
  options.normalize = false;
  options.modularize = false;
  const PreprocessedTree preprocessed = preprocess(tree, options);
  const fta::FaultTree& out = preprocessed.top().tree;
  bool saw_or = false;
  bool saw_and = false;
  for (fta::NodeId id = 0; id < out.node_count(); ++id) {
    if (out.kind(id) != fta::NodeKind::kGate) continue;
    EXPECT_NE(out.gate_type(id), fta::GateType::kKofN);
    saw_or = saw_or || out.gate_type(id) == fta::GateType::kOr;
    saw_and = saw_and || out.gate_type(id) == fta::GateType::kAnd;
  }
  EXPECT_TRUE(saw_or);
  EXPECT_TRUE(saw_and);
}

TEST(PreprocessPassTest, FlattenSplicesSameOpChains) {
  // OR(OR(OR(e0,e1),e2),e3) with single-parent inner gates collapses to one
  // OR over four leaves.
  fta::FaultTree tree("chain");
  const auto e0 = tree.add_basic_event("e0");
  const auto e1 = tree.add_basic_event("e1");
  const auto e2 = tree.add_basic_event("e2");
  const auto e3 = tree.add_basic_event("e3");
  const auto inner = tree.add_or("inner", {e0, e1});
  const auto mid = tree.add_or("mid", {inner, e2});
  tree.set_top(tree.add_or("top", {mid, e3}));

  PreprocessOptions options;
  options.modularize = false;
  const PreprocessedTree preprocessed = preprocess(tree, options);
  const fta::FaultTree& out = preprocessed.top().tree;
  ASSERT_EQ(out.gate_count(), 1u);
  const fta::NodeId top = *out.find("top");
  EXPECT_EQ(out.gate_type(top), fta::GateType::kOr);
  EXPECT_EQ(out.children(top).size(), 4u);
}

TEST(PreprocessPassTest, MergeHashConsesIdenticalGates) {
  // Two AND gates over the same children merge into one; the surviving
  // top-level OR then deduplicates to a single child and aliases away.
  fta::FaultTree tree("twins");
  const auto e0 = tree.add_basic_event("e0");
  const auto e1 = tree.add_basic_event("e1");
  const auto left = tree.add_and("left", {e0, e1});
  const auto right = tree.add_and("right", {e0, e1});
  tree.set_top(tree.add_or("top", {left, right}));

  PreprocessOptions options;
  options.modularize = false;
  const PreprocessedTree preprocessed = preprocess(tree, options);
  EXPECT_EQ(preprocessed.top().tree.gate_count(), 1u);
  bool merged = false;
  for (const PassStats& pass : preprocessed.statistics.passes) {
    merged = merged || (pass.name == "merge" && pass.rewrites > 0);
  }
  EXPECT_TRUE(merged);
}

TEST(PreprocessPassTest, PassSequenceEndsWithCleanupPropagate) {
  const fta::FaultTree tree = testutil::random_tree(7);
  const PreprocessedTree preprocessed = preprocess(tree, {});
  std::vector<std::string> names;
  for (const PassStats& pass : preprocessed.statistics.passes) {
    names.push_back(pass.name);
    EXPECT_GE(pass.nodes_before, pass.nodes_after) << pass.name;
  }
  EXPECT_EQ(names, (std::vector<std::string>{
                       "propagate", "normalize", "flatten", "merge",
                       "propagate"}));
}

TEST(PreprocessPassTest, ModulePseudoLeafReusesGateName) {
  // An AND over four private leaves under an OR top is a textbook module:
  // it must be extracted, and its pseudo-leaf in the parent must carry the
  // gate's name with LeafOrigin::Kind::kModule.
  fta::FaultTree tree("mod");
  std::vector<fta::NodeId> module_leaves;
  for (int i = 0; i < 4; ++i) {
    module_leaves.push_back(tree.add_basic_event(concat("m", std::to_string(i))));
  }
  const auto module_gate = tree.add_and("engine_room", std::move(module_leaves));
  const auto other = tree.add_basic_event("other");
  tree.set_top(tree.add_or("top", {module_gate, other}));

  const PreprocessedTree preprocessed = preprocess(tree, {});
  ASSERT_EQ(preprocessed.subtrees.size(), 2u);
  EXPECT_EQ(preprocessed.subtrees.front().name, "engine_room");

  const Subtree& top = preprocessed.top();
  const auto pseudo = top.tree.find("engine_room");
  ASSERT_TRUE(pseudo.has_value());
  EXPECT_EQ(top.tree.kind(*pseudo), fta::NodeKind::kBasicEvent);
  bool found_module_origin = false;
  for (const LeafOrigin& origin : top.basic_origin) {
    found_module_origin =
        found_module_origin || origin.kind == LeafOrigin::Kind::kModule;
  }
  EXPECT_TRUE(found_module_origin);
}

TEST(PreprocessPassTest, InhibitConditionsSurviveExtraction) {
  // INHIBIT gates carry condition leaves; input_for must route the original
  // condition probability into whichever subtree the gate lands in.
  fta::FaultTree tree("inhibit");
  const auto e0 = tree.add_basic_event("e0");
  const auto e1 = tree.add_basic_event("e1");
  const auto e2 = tree.add_basic_event("e2");
  const auto e3 = tree.add_basic_event("e3");
  const auto cause = tree.add_or("cause", {e0, e1, e2, e3});
  const auto cond = tree.add_condition("maintenance");
  const auto guarded = tree.add_inhibit("guarded", cause, cond);
  const auto other = tree.add_basic_event("other");
  tree.set_top(tree.add_or("top", {guarded, other}));

  fta::QuantificationInput input =
      fta::QuantificationInput::for_tree(tree, 0.1);
  input.condition_probability[0] = 0.25;

  bdd::CompiledFaultTree plain = bdd::compile(tree);
  const double expected = plain.probability(input);
  const ModularBddResult result = quantify_bdd(preprocess(tree, {}), input);
  EXPECT_NEAR(result.probability, expected, 1e-15);
}

TEST(PreprocessPassTest, StatisticsCountEventsAndModules) {
  const corpus::CorpusModel model =
      corpus::make_corpus(corpus::tier_by_name("1k"));
  const PreprocessedTree preprocessed = preprocess(model.tree, {});
  const PreprocessStatistics& stats = preprocessed.statistics;
  EXPECT_EQ(stats.events_before, model.tree.basic_event_count() +
                                     model.tree.condition_count());
  EXPECT_EQ(stats.modules, preprocessed.subtrees.size() - 1);
  EXPECT_EQ(stats.events_after,
            preprocessed.top().tree.basic_event_count() +
                preprocessed.top().tree.condition_count());
  // The whole point: the top subtree sees ~50 module pseudo-leaves instead
  // of ~1000 raw events.
  EXPECT_LT(stats.events_after * 10, stats.events_before);
}

TEST(PreprocessPassTest, DisabledPipelineIsIdentityShape) {
  const fta::FaultTree tree = testutil::random_tree(3);
  PreprocessOptions off;
  off.propagate = off.normalize = off.flatten = off.merge = off.modularize =
      false;
  const PreprocessedTree preprocessed = preprocess(tree, off);
  EXPECT_TRUE(preprocessed.statistics.passes.empty());
  ASSERT_EQ(preprocessed.subtrees.size(), 1u);

  const fta::QuantificationInput input =
      testutil::random_probabilities(tree, 3);
  bdd::CompiledFaultTree plain = bdd::compile(tree);
  const ModularBddResult result = quantify_bdd(preprocessed, input);
  EXPECT_EQ(result.probability, plain.probability(input));
}

}  // namespace
}  // namespace safeopt::prep
