// The pluggable quantification seam: one interface over every way this
// library turns leaf probabilities into a top-event probability.
//
// The paper treats quantification as exchangeable machinery — Eq. 1/2 via
// minimal cut sets is "the" formula, but §II-C notes the bounds involved and
// the validation story (BDD Shannon decomposition is exact, Monte Carlo
// sampling checks the independence assumptions). `QuantificationEngine`
// makes that exchangeability a first-class API: every engine consumes the
// same numeric `fta::QuantificationInput` (produced on the compiled-tape hot
// path by `CompiledQuantification::input_at`) and reports a
// `QuantificationResult` plus capability flags, so callers — `core::Study`,
// cross-validation benches, future sharded backends — can pick a backend by
// name at runtime:
//
//   "fta"         cut-set engine (rare-event / min-cut upper bound /
//                 inclusion-exclusion; importance measures supported)
//   "bdd"         exact Shannon decomposition over the compiled ROBDD
//   "mc"          fixed-budget Monte Carlo estimation with Wilson intervals
//   "mc_adaptive" adaptive Monte Carlo: sequential batched sampling to a
//                 target CI half-width, with optional importance sampling
//                 (per-leaf proposal tilting) for rare events
//
// `EngineRegistry` is the name -> factory table behind
// `Study::engine("bdd")`; `EngineRegistrar` self-registers user engines
// (see docs/extending.md).
#ifndef SAFEOPT_CORE_QUANTIFICATION_ENGINE_H
#define SAFEOPT_CORE_QUANTIFICATION_ENGINE_H

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "safeopt/bdd/bdd.h"
#include "safeopt/fta/fault_tree.h"
#include "safeopt/fta/probability.h"
#include "safeopt/stats/estimators.h"

namespace safeopt {
class ThreadPool;
class ExecutionControl;  // support/execution.h
}

namespace safeopt::core {

/// What one engine can and cannot do; checked by callers, not enforced.
struct EngineCapabilities {
  /// No method error: the reported probability is the exact top-event
  /// probability under leaf independence (bdd; fta with inclusion-exclusion).
  bool exact = false;
  /// The result carries sampling error (and a confidence interval).
  bool sampled = false;
  /// The backing method can also rank importance *measures* (the cut-set
  /// engine: fta::importance_measures shares its mcs + method).
  bool importance = false;
  /// quantify_batch has a real batched implementation (not the base-class
  /// loop); batching is where sharded/distributed engines plug in.
  bool batch = false;
  /// Sampling runs under a tilted proposal with likelihood-ratio
  /// reweighting (the adaptive MC engine with tilt > 1); the result's `ess`
  /// diagnostic is then meaningfully smaller than `trials`.
  bool importance_sampling = false;
};

/// What preprocessing did to the tree an engine quantifies — filled by the
/// "fta"/"bdd" engines when EngineConfig::preprocess is set, surfaced by
/// `safeopt quantify --json` next to the sampling diagnostics.
struct PreprocessSummary {
  /// Independent modules extracted (each quantified once per input and
  /// substituted as a pseudo-leaf).
  std::size_t modules = 0;
  /// Leaves of the original tree vs. leaves of the final top-level tree
  /// (module pseudo-leaves count as one each).
  std::size_t events_before = 0;
  std::size_t events_after = 0;
  std::size_t gates_before = 0;
  std::size_t gates_after = 0;
  /// Pass names in execution order, e.g. {"propagate", "normalize", ...}.
  std::vector<std::string> passes;
};

/// Outcome of one quantification.
struct QuantificationResult {
  double probability = 0.0;
  /// 95% confidence interval; engines with capabilities().sampled only.
  std::optional<stats::ConfidenceInterval> ci95;
  /// Trials drawn (sampled engines), 0 otherwise.
  std::uint64_t trials = 0;
  /// Effective sample size: `trials` for unweighted sampling, (Σw)²/Σw²
  /// for importance-sampled estimates. Sampled engines only.
  std::optional<double> ess;
  /// Adaptive engines only: whether the target precision was reached
  /// within the trial budget.
  std::optional<bool> converged;
  /// Engines running the preprocessing pipeline only (fta/bdd with
  /// EngineConfig::preprocess): what the pass pipeline did.
  std::optional<PreprocessSummary> preprocess;
  /// Engines honoring a deadline/cancellation control (mc_adaptive): true
  /// when the run was cut short at a round boundary — the estimate then
  /// describes the last completed round, with converged = false.
  std::optional<bool> aborted;
  /// Human-readable robustness notes, e.g. the degradation chain's
  /// "engine \"bdd\" degraded to \"mc_adaptive\" ..." record. Empty in the
  /// happy path; surfaced verbatim by `safeopt quantify --json`.
  std::vector<std::string> diagnostics;
  /// The expr::EvalBackend that evaluated the compiled tapes (e.g.
  /// "generic", "avx2"), so perf numbers are attributable to a backend.
  /// Structured on purpose: diagnostics stay "something went wrong" (the
  /// serve cache refuses to store results that carry any), while the
  /// backend name is routine attribution present on every Study result.
  /// Empty when quantification never touched a compiled tape.
  std::string backend;

  /// CI half-width, the adaptive stopping quantity; 0 without a ci95.
  [[nodiscard]] double halfwidth() const noexcept {
    return ci95.has_value() ? 0.5 * ci95->width() : 0.0;
  }
};

/// Shared engine configuration; each engine reads the fields it understands.
struct EngineConfig {
  /// Cut-set engine: the probability method (rare-event by default — the
  /// paper's Eq. 1/2 — or min-cut upper bound / inclusion-exclusion).
  fta::ProbabilityMethod method = fta::ProbabilityMethod::kRareEvent;
  /// Cut-set engine: how multiple INHIBIT constraints combine.
  fta::ConstraintCombination combination =
      fta::ConstraintCombination::kIndependentProduct;
  /// Monte Carlo engines: trials per quantify() call ("mc"), and the trial
  /// budget cap for "mc_adaptive" (document/CLI option `trials` or
  /// `budget`); base seed for both.
  std::uint64_t mc_trials = 200000;
  std::uint64_t seed = 0x5a4e0u;
  /// Monte Carlo engines: optional worker pool (chunked jump() streams;
  /// result independent of the thread count). Not owned.
  ThreadPool* pool = nullptr;
  /// Adaptive MC engine: target 95% CI half-width — absolute, or relative
  /// to the running estimate when `relative` is set.
  double target_halfwidth = 0.05;
  bool relative = true;
  /// Adaptive MC engine: trials per adaptive round (the stopping rule runs
  /// between rounds).
  std::uint64_t batch = 1 << 16;
  /// Adaptive MC engine: importance-sampling proposal tilt — every leaf
  /// with p < 1/2 is sampled at q = min(1/2, tilt·p) and reweighted by the
  /// exact likelihood ratio. Values <= 1 disable importance sampling.
  double tilt = 0.0;
  /// fta/bdd engines: run the preprocessing pass pipeline (normalize /
  /// flatten / merge / propagate / modularize) before compilation. Off by
  /// default: results are then bit-identical to the historical engines;
  /// turn it on for large trees (document option `preprocess = true` or
  /// `--engine-opt preprocess=true`).
  bool preprocess = false;
  /// With `preprocess`: extract independent modules (quantified once each
  /// and substituted as pseudo-leaves), the big lever on industrial trees.
  bool modularize = true;
  /// With `modularize`: minimum leaf span for a detected module to be
  /// worth extracting.
  std::size_t module_min_leaves = 4;
  /// bdd engine: structural variable-ordering heuristic for compilation.
  bdd::VariableOrdering ordering = bdd::VariableOrdering::kDfs;
  /// bdd engine: unique-table buckets reserved up front and direct-mapped
  /// ITE cache entries (rounded up to a power of two).
  std::size_t bdd_table_size = 1u << 12;
  std::size_t bdd_cache_size = 1u << 16;
  /// bdd engine: maximum unique decision nodes before compilation aborts
  /// with Error(kResourceExhausted) — the admission control that keeps a
  /// pathological tree from eating the process. 0 = unlimited (document/CLI
  /// option `bdd_node_budget`).
  std::size_t bdd_node_budget = 0;
  /// Wall-clock budget in milliseconds for each expensive engine operation:
  /// compilation at engine construction (fta/bdd, including the prep
  /// pipeline) and each quantify() call (mc_adaptive, which aborts at a
  /// round boundary with a partial result instead of throwing). 0 = none
  /// (document/CLI option `deadline_ms`).
  std::uint64_t deadline_ms = 0;
  /// Degradation chain: when engine construction fails with a *recoverable*
  /// Error (resource_exhausted / deadline_exceeded), Study::quantify and
  /// create_engine_with_fallback retry once with this engine instead,
  /// recording the downgrade in QuantificationResult::diagnostics. Empty =
  /// fail hard (document/CLI option `fallback`, e.g. `fallback =
  /// mc_adaptive`).
  std::string fallback;
  /// Evaluation backend for the compiled expression tapes (document/CLI
  /// option `backend`, e.g. `backend = avx2`): a expr::BackendRegistry name,
  /// or empty/"auto" for runtime dispatch. A registered-but-unavailable
  /// name degrades to the best available backend at resolve time with a
  /// diagnostic (never an error): the same document runs on any host.
  std::string backend;
  /// Caller-provided cancellation/deadline control, chained as the parent
  /// of any per-operation control the engine derives from `deadline_ms`.
  /// Programmatic only (no document option). Not owned; must outlive the
  /// engine. nullptr = unbounded.
  const ExecutionControl* control = nullptr;

  /// The BddOptions slice of this config (the bdd engine's constructor
  /// argument for both the plain and the per-module compilation paths).
  /// `control` is wired separately by the engine — it derives a
  /// per-construction deadline control and points BddOptions::control at
  /// that, not at this config's caller-level control.
  [[nodiscard]] bdd::BddOptions bdd_options() const noexcept {
    bdd::BddOptions options{ordering, bdd_table_size, bdd_cache_size};
    options.node_budget = bdd_node_budget;
    return options;
  }
};

/// One quantification backend bound to one fault tree. Construction does the
/// per-tree work exactly once (MOCUS, BDD compilation); quantify() is then a
/// per-point evaluation sharing that preprocessing. Engines are not
/// thread-safe (the BDD path memoizes); use one instance per thread.
class QuantificationEngine {
 public:
  virtual ~QuantificationEngine() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  [[nodiscard]] virtual EngineCapabilities capabilities() const noexcept = 0;
  [[nodiscard]] virtual const fta::FaultTree& tree() const noexcept = 0;

  /// P(top event) under `input`. Precondition: input.is_valid_for(tree()).
  [[nodiscard]] virtual QuantificationResult quantify(
      const fta::QuantificationInput& input) = 0;

  /// Quantifies many inputs. The base implementation is a serial loop;
  /// engines with capabilities().batch override it with a real batched path.
  [[nodiscard]] virtual std::vector<QuantificationResult> quantify_batch(
      const std::vector<fta::QuantificationInput>& inputs);

 protected:
  QuantificationEngine() = default;
  QuantificationEngine(const QuantificationEngine&) = default;
  QuantificationEngine& operator=(const QuantificationEngine&) = default;
};

/// Process-wide name -> factory table for quantification engines. "fta",
/// "bdd" and "mc" are pre-registered; add() extends it at runtime (last
/// registration wins). All methods are thread-safe.
class EngineRegistry {
 public:
  using Factory = std::function<std::unique_ptr<QuantificationEngine>(
      const fta::FaultTree& tree, const EngineConfig& config)>;

  /// Registers `factory` under `name`; returns false when it replaced an
  /// existing registration. Precondition: name non-empty, factory callable.
  static bool add(std::string name, Factory factory);

  /// Creates the named engine over `tree` (which must outlive the engine).
  /// Throws std::invalid_argument listing available() for unknown names.
  [[nodiscard]] static std::unique_ptr<QuantificationEngine> create(
      std::string_view name, const fta::FaultTree& tree,
      const EngineConfig& config = {});

  [[nodiscard]] static bool contains(std::string_view name);

  /// Sorted names of every registered engine.
  [[nodiscard]] static std::vector<std::string> available();
};

/// Self-registration helper for user engines, mirroring SolverRegistrar.
struct EngineRegistrar {
  EngineRegistrar(std::string name, EngineRegistry::Factory factory) {
    EngineRegistry::add(std::move(name), std::move(factory));
  }
};

/// EngineRegistry::create with the degradation chain applied: when building
/// `name` throws a *recoverable* safeopt::Error (resource_exhausted /
/// deadline_exceeded — not cancellation, not invalid input) and
/// config.fallback names a different engine, the fallback engine is built
/// instead (same config) and `*diagnostic` (when non-null) records the
/// downgrade, category first, for QuantificationResult::diagnostics. The
/// chain is one link long on purpose: a fallback that also fails propagates
/// its error. Study::quantify and the CLI's constant-model path share this.
[[nodiscard]] std::unique_ptr<QuantificationEngine>
create_engine_with_fallback(std::string_view name, const fta::FaultTree& tree,
                            const EngineConfig& config,
                            std::string* diagnostic = nullptr);

}  // namespace safeopt::core

#endif  // SAFEOPT_CORE_QUANTIFICATION_ENGINE_H
