// The "avx2" evaluation backend: explicit 256-bit kernels for the lane
// loops. Compiled with -mavx2 -ffp-contract=off (see CMakeLists.txt); on
// targets where that is not possible the factory returns nullptr and the
// backend is simply not registered.
//
// Bitwise contract (eval_backend.h): every result must equal the "generic"
// interpreter bit-for-bit. The kernel therefore only vectorizes operations
// that are IEEE-exact per lane:
//   * +, -, *, /, sqrt — correctly rounded in SIMD, identical to scalar;
//   * min/max — VMINPD/VMAXPD return the *second* source on NaN and on
//     ±0 ties, so min(a,b) is computed as _mm256_min_pd(b, a): "b < a ? b
//     : a, else a" is exactly std::min(a, b) including NaN propagation
//     and the positional tie rule (likewise max);
//   * neg — a sign-bit XOR, the same bit flip as scalar negation.
// Everything else — exp/log/pow (with the uniform-lane broadcast), the
// cdf/survival argument memo, opaque kCall functions — runs the exact
// scalar call sequence of the generic kernel. -ffp-contract=off keeps the
// compiler from fusing any a*b+c into an FMA behind our back.
//
// Everything here has internal linkage (anonymous namespace): an inline
// helper compiled with -mavx2 must never be merged by the linker over a
// baseline-ISA instantiation from another TU, or the generic path could
// fault on machines without AVX2.
#include "backend_factories.h"
#include "safeopt/expr/cpu_features.h"
#include "safeopt/expr/eval_backend.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>

namespace safeopt::expr {

namespace {

// Direct-mapped memo index for a distribution argument — the same
// multiplicative hash as the generic kernel (any hash preserves the
// bitwise contract, since hits only replay stored bits; matching the
// generic one keeps hit behavior comparable across backends).
constexpr std::size_t kMemoMask = CompiledExpr::kMemoEntries - 1;
inline std::size_t memo_index(double x) noexcept {
  const std::uint64_t bits =
      std::bit_cast<std::uint64_t>(x) * 0x9e3779b97f4a7c15ULL;
  return static_cast<std::size_t>(bits >> 53) & kMemoMask;
}

/// Uniform-lane broadcast of a pure unary function, mirroring the generic
/// kernel: one call when every lane holds the same bit pattern, else one
/// call per lane.
template <std::size_t L, typename F>
inline void map_lanes_uniform(const double* a, double* lane, F&& f) {
  const std::uint64_t first = std::bit_cast<std::uint64_t>(a[0]);
  bool uniform = true;
  for (std::size_t l = 1; l < L; ++l) {
    uniform &= std::bit_cast<std::uint64_t>(a[l]) == first;
  }
  if (uniform) {
    const double v = f(a[0]);
    for (std::size_t l = 0; l < L; ++l) lane[l] = v;
    return;
  }
  for (std::size_t l = 0; l < L; ++l) lane[l] = f(a[l]);
}

template <std::size_t L>
void forward_block(const CompiledExpr& expr, const double* points,
                   std::size_t dim, double* out,
                   CompiledExpr::LaneScratch& scratch) {
  static_assert(L % 4 == 0);
  using OpCode = CompiledExpr::OpCode;
  const std::span<const CompiledExpr::Instruction> tape = expr.tape();
  const std::size_t n = tape.size();
  double* const slab = scratch.slab.data();
  // Same clamp as the generic kernel: kConst/kParam carry an immediate /
  // parameter index in `a`, and clamping keeps the (unused) operand
  // pointers inside the slab.
  const auto slot_of = [n](std::uint32_t s) {
    return std::min<std::size_t>(s, n - 1);
  };
  for (std::size_t i = 0; i < n; ++i) {
    const CompiledExpr::Instruction& ins = tape[i];
    double* const lane = slab + i * L;
    const double* const a = slab + slot_of(ins.a) * L;
    const double* const b = slab + slot_of(ins.b) * L;
    switch (ins.op) {
      case OpCode::kConst: {
        const __m256d v = _mm256_set1_pd(ins.imm);
        for (std::size_t l = 0; l < L; l += 4) _mm256_storeu_pd(lane + l, v);
        break;
      }
      case OpCode::kParam:
        for (std::size_t l = 0; l < L; ++l) lane[l] = points[l * dim + ins.a];
        break;
      case OpCode::kAdd:
        for (std::size_t l = 0; l < L; l += 4) {
          _mm256_storeu_pd(lane + l, _mm256_add_pd(_mm256_loadu_pd(a + l),
                                                   _mm256_loadu_pd(b + l)));
        }
        break;
      case OpCode::kSub:
        for (std::size_t l = 0; l < L; l += 4) {
          _mm256_storeu_pd(lane + l, _mm256_sub_pd(_mm256_loadu_pd(a + l),
                                                   _mm256_loadu_pd(b + l)));
        }
        break;
      case OpCode::kMul:
        for (std::size_t l = 0; l < L; l += 4) {
          _mm256_storeu_pd(lane + l, _mm256_mul_pd(_mm256_loadu_pd(a + l),
                                                   _mm256_loadu_pd(b + l)));
        }
        break;
      case OpCode::kDiv:
        for (std::size_t l = 0; l < L; l += 4) {
          _mm256_storeu_pd(lane + l, _mm256_div_pd(_mm256_loadu_pd(a + l),
                                                   _mm256_loadu_pd(b + l)));
        }
        break;
      case OpCode::kMin:
        // Operand order swapped: VMINPD(b, a) = "b < a ? b : a, NaN/tie ->
        // a" == std::min(a, b) bit-for-bit (see header comment).
        for (std::size_t l = 0; l < L; l += 4) {
          _mm256_storeu_pd(lane + l, _mm256_min_pd(_mm256_loadu_pd(b + l),
                                                   _mm256_loadu_pd(a + l)));
        }
        break;
      case OpCode::kMax:
        for (std::size_t l = 0; l < L; l += 4) {
          _mm256_storeu_pd(lane + l, _mm256_max_pd(_mm256_loadu_pd(b + l),
                                                   _mm256_loadu_pd(a + l)));
        }
        break;
      case OpCode::kAddImm: {
        const __m256d imm = _mm256_set1_pd(ins.imm);
        for (std::size_t l = 0; l < L; l += 4) {
          _mm256_storeu_pd(lane + l,
                           _mm256_add_pd(_mm256_loadu_pd(a + l), imm));
        }
        break;
      }
      case OpCode::kSubImm: {
        const __m256d imm = _mm256_set1_pd(ins.imm);
        for (std::size_t l = 0; l < L; l += 4) {
          _mm256_storeu_pd(lane + l,
                           _mm256_sub_pd(_mm256_loadu_pd(a + l), imm));
        }
        break;
      }
      case OpCode::kRsubImm: {
        const __m256d imm = _mm256_set1_pd(ins.imm);
        for (std::size_t l = 0; l < L; l += 4) {
          _mm256_storeu_pd(lane + l,
                           _mm256_sub_pd(imm, _mm256_loadu_pd(a + l)));
        }
        break;
      }
      case OpCode::kMulImm: {
        const __m256d imm = _mm256_set1_pd(ins.imm);
        for (std::size_t l = 0; l < L; l += 4) {
          _mm256_storeu_pd(lane + l,
                           _mm256_mul_pd(_mm256_loadu_pd(a + l), imm));
        }
        break;
      }
      case OpCode::kDivImm: {
        const __m256d imm = _mm256_set1_pd(ins.imm);
        for (std::size_t l = 0; l < L; l += 4) {
          _mm256_storeu_pd(lane + l,
                           _mm256_div_pd(_mm256_loadu_pd(a + l), imm));
        }
        break;
      }
      case OpCode::kRdivImm: {
        const __m256d imm = _mm256_set1_pd(ins.imm);
        for (std::size_t l = 0; l < L; l += 4) {
          _mm256_storeu_pd(lane + l,
                           _mm256_div_pd(imm, _mm256_loadu_pd(a + l)));
        }
        break;
      }
      case OpCode::kNeg: {
        const __m256d sign = _mm256_set1_pd(-0.0);
        for (std::size_t l = 0; l < L; l += 4) {
          _mm256_storeu_pd(lane + l,
                           _mm256_xor_pd(_mm256_loadu_pd(a + l), sign));
        }
        break;
      }
      case OpCode::kSqrt:
        for (std::size_t l = 0; l < L; l += 4) {
          _mm256_storeu_pd(lane + l, _mm256_sqrt_pd(_mm256_loadu_pd(a + l)));
        }
        break;
      case OpCode::kExp:
        map_lanes_uniform<L>(a, lane, [](double x) { return std::exp(x); });
        break;
      case OpCode::kLog:
        map_lanes_uniform<L>(a, lane, [](double x) { return std::log(x); });
        break;
      case OpCode::kPow:
        map_lanes_uniform<L>(a, lane, [imm = ins.imm](double x) {
          return std::pow(x, imm);
        });
        break;
      case OpCode::kCdf:
      case OpCode::kSurvival: {
        const stats::Distribution& dist = expr.distribution_at(ins.b);
        const bool survival = ins.op == OpCode::kSurvival;
        double* const site_arg =
            scratch.memo_arg.data() +
            static_cast<std::size_t>(ins.c) * CompiledExpr::kMemoEntries;
        double* const site_val =
            scratch.memo_val.data() +
            static_cast<std::size_t>(ins.c) * CompiledExpr::kMemoEntries;
        for (std::size_t l = 0; l < L; ++l) {
          const double x = a[l];
          const std::size_t slot = memo_index(x);
          if (site_arg[slot] == x) {
            lane[l] = site_val[slot];
            continue;
          }
          const double v = survival ? dist.survival(x) : dist.cdf(x);
          site_arg[slot] = x;
          site_val[slot] = v;
          lane[l] = v;
        }
        break;
      }
      case OpCode::kCall:
        for (std::size_t l = 0; l < L; ++l) {
          lane[l] = expr.apply_call(ins.b, a[l]);
        }
        break;
    }
  }
  const double* const root = slab + (n - 1) * L;
  for (std::size_t l = 0; l < L; ++l) out[l] = root[l];
}

class Avx2Backend final : public EvalBackend {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "avx2";
  }
  [[nodiscard]] bool available() const noexcept override {
    return cpu_features().avx2;
  }
  [[nodiscard]] int priority() const noexcept override { return 1; }
  // Wider default blocks than the generic kernel: the per-instruction
  // switch dispatch amortizes over 16 rows, the main lever on top of the
  // 4-wide arithmetic.
  [[nodiscard]] std::size_t default_lane_width() const noexcept override {
    return 16;
  }
  [[nodiscard]] bool supports_lane_width(
      std::size_t width) const noexcept override {
    return width == 4 || width == 8 || width == 16;
  }

  void run_block(const CompiledExpr& expr, const double* points,
                 std::size_t dim, std::size_t width, double* out,
                 CompiledExpr::LaneScratch& scratch) const override {
    switch (width) {
      case 4: forward_block<4>(expr, points, dim, out, scratch); break;
      case 8: forward_block<8>(expr, points, dim, out, scratch); break;
      default: forward_block<16>(expr, points, dim, out, scratch); break;
    }
  }

  void run_block_with_gradients(
      const CompiledExpr& expr, const double* points, std::size_t dim,
      std::size_t width, double* values, double* gradients,
      CompiledExpr::LaneScratch& scratch) const override {
    // Intrinsic forward sweep fills the slab; the adjoint sweep is shared
    // with the generic backend (it is already plain vectorizable loops,
    // and sharing it keeps gradients trivially bitwise-identical).
    run_block(expr, points, dim, width, values, scratch);
    expr.run_generic_adjoint_block(dim, width, gradients, scratch);
  }
};

}  // namespace

namespace detail {

std::unique_ptr<EvalBackend> make_avx2_backend() {
  return std::make_unique<Avx2Backend>();
}

}  // namespace detail

}  // namespace safeopt::expr

#else  // !defined(__AVX2__)

namespace safeopt::expr::detail {

std::unique_ptr<EvalBackend> make_avx2_backend() { return nullptr; }

}  // namespace safeopt::expr::detail

#endif
