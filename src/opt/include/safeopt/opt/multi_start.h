// Multi-start wrapper: runs a local solver from several deterministic
// quasi-random starting points and keeps the best result. Turns any local
// method (Nelder–Mead, gradient descent, ...) into a practical global one on
// the compact boxes safety optimization works with.
//
// Starts are independent solves, so they parallelize embarrassingly: pass a
// ThreadPool and they run concurrently. Start points are drawn before any
// solver runs and the reduction is by (value, start index), so the result is
// identical to the sequential run for any thread count — provided the
// problem's objective/gradient are thread-safe (expression evaluation and
// compiled tapes both are).
#ifndef SAFEOPT_OPT_MULTI_START_H
#define SAFEOPT_OPT_MULTI_START_H

#include <cstdint>
#include <functional>
#include <memory>

#include "safeopt/opt/problem.h"

namespace safeopt {
class ThreadPool;
}

namespace safeopt::opt {

class MultiStart final : public Optimizer {
 public:
  /// Factory invoked once per start with that start's initial point.
  using LocalSolverFactory =
      std::function<std::unique_ptr<Optimizer>(std::vector<double> initial)>;

  /// `pool` (optional, not owned, must outlive the optimizer) runs the
  /// starts concurrently; nullptr keeps them sequential.
  MultiStart(LocalSolverFactory factory, std::size_t starts,
             std::uint64_t seed = 0x5eedbed, ThreadPool* pool = nullptr);

  [[nodiscard]] OptimizationResult minimize(
      const Problem& problem) const override;
  [[nodiscard]] std::string name() const override { return "MultiStart"; }

 private:
  LocalSolverFactory factory_;
  std::size_t starts_;
  std::uint64_t seed_;
  ThreadPool* pool_;
};

}  // namespace safeopt::opt

#endif  // SAFEOPT_OPT_MULTI_START_H
