// Fixture: the annotated wrapper and non-mutex std types must not trip.
#include <atomic>
#include <condition_variable>

#include "safeopt/support/mutex.h"
#include "safeopt/support/thread_annotations.h"

class Counter {
 public:
  void bump() {
    const safeopt::MutexLock lock(mutex_);
    ++value_;
    changed_.notify_all();
  }

 private:
  safeopt::Mutex mutex_;
  int value_ SAFEOPT_GUARDED_BY(mutex_) = 0;
  // condition_variable and atomics are fine; only the lock types are banned.
  std::condition_variable changed_;
  std::atomic<int> epoch_{0};
};

// safeopt-lint: allow(raw-mutex) — documented interop with a C library
extern std::mutex* legacy_handle();
