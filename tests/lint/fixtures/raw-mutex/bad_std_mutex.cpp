// Fixture: raw std synchronization primitives outside the wrapper.
#include <mutex>
#include <shared_mutex>

std::mutex g_mutex;
std::shared_mutex g_rw;

void f() {
  const std::lock_guard<std::mutex> lock(g_mutex);
  std::unique_lock<std::mutex> other(g_mutex, std::defer_lock);
  const std::shared_lock<std::shared_mutex> reader(g_rw);
}
