// Experiment (cross-validation, our addition): the paper's quantification
// rests on Eq. 1/2's independence assumptions plus the rare-event
// approximation. This harness checks the whole analytic pipeline against
// two independent references on the Elbtunnel hazard models:
//   * exact BDD evaluation (no rare-event approximation),
//   * Monte Carlo sampling of the fault trees,
//   * the discrete-event traffic simulation (for the parameterized
//     overtime and exposure probabilities).
#include <cmath>
#include <cstdio>

#include "safeopt/bdd/bdd.h"
#include "safeopt/core/compiled_quantification.h"
#include "safeopt/elbtunnel/elbtunnel_model.h"
#include "safeopt/mc/monte_carlo.h"
#include "safeopt/sim/traffic.h"
#include "safeopt/stats/distribution.h"
#include "safeopt/support/thread_pool.h"

int main() {
  using namespace safeopt;
  const elbtunnel::ElbtunnelModel model;

  std::printf("=== analytic vs exact vs sampled hazard probabilities ===\n\n");
  std::printf("false-alarm hazard, P(OHV) forced to 1 (Fig. 6 regime):\n");
  std::printf("%6s %14s %14s %14s %10s\n", "T2", "rare-event", "BDD exact",
              "Monte Carlo", "in CI?");
  const fta::FaultTree alarm_tree = model.false_alarm_tree();
  const auto quantification = model.false_alarm_quantification(alarm_tree);
  // Leaf probabilities come off compiled tapes (bitwise-identical to the
  // symbolic walk) and the MC trials run on the deterministic parallel
  // estimator — the compiled quantification seam end to end.
  const core::CompiledQuantification compiled_q(quantification);
  const fta::CutSetCollection alarm_mcs = fta::minimal_cut_sets(alarm_tree);
  for (const double t2 : {5.0, 10.0, 15.6, 20.0, 30.0}) {
    fta::QuantificationInput input =
        compiled_q.input_at({{"T1", 30.0}, {"T2", t2}});
    input.condition_probability[0] = 1.0;  // OHV present
    const double rare = fta::top_event_probability(alarm_mcs, input);
    bdd::CompiledFaultTree compiled = bdd::compile(alarm_tree);
    const double exact = compiled.probability(input);
    const auto sampled = mc::estimate_hazard_probability(
        alarm_tree, input, 1000000, ThreadPool::shared());
    std::printf("%6.1f %14.6e %14.6e %14.6e %10s\n", t2, rare, exact,
                sampled.estimate,
                sampled.consistent_with(exact) ? "yes" : "NO");
  }

  std::printf("\novertime probabilities vs 60 simulated days of traffic:\n");
  std::printf("%6s %6s %16s %16s\n", "T1", "T2", "analytic P(OT1)",
              "simulated");
  const stats::TruncatedNormal transit = stats::TruncatedNormal::nonnegative(
      model.parameters().transit_mean_min,
      model.parameters().transit_sigma_min);
  for (const double timer : {5.0, 6.5, 8.0, 10.0}) {
    sim::TrafficConfig config =
        model.traffic_config(timer, timer, elbtunnel::Design::kBaseline);
    config.ohv_arrival_rate_per_min = 0.05;
    config.horizon_minutes = 60.0 * 24.0 * 60.0;
    const auto stats = sim::simulate_height_control(config, 0xca11);
    std::printf("%6.1f %6.1f %16.6f %16.6f\n", timer, timer,
                transit.survival(timer), stats.overtime1_fraction());
  }

  std::printf("\ncorrect-OHV alarm fraction, analytic vs DES:\n");
  std::printf("%6s %16s %16s\n", "T2", "1-exp(-0.13 T2)", "simulated");
  for (const double t2 : {8.0, 15.6, 25.0}) {
    sim::TrafficConfig config =
        model.traffic_config(30.0, t2, elbtunnel::Design::kBaseline);
    config.ohv_arrival_rate_per_min = 0.02;
    config.horizon_minutes = 60.0 * 24.0 * 60.0;
    const auto stats = sim::simulate_height_control(config, 0xf1a6);
    std::printf("%6.1f %16.4f %16.4f\n", t2,
                1.0 - std::exp(-model.parameters().hv_left_rate_per_min * t2),
                stats.correct_ohv_alarm_fraction());
  }
  return 0;
}
