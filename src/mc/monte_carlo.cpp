#include "safeopt/mc/monte_carlo.h"

#include <algorithm>
#include <vector>

#include "safeopt/support/contracts.h"
#include "safeopt/support/rng.h"
#include "safeopt/support/thread_pool.h"

namespace safeopt::mc {
namespace {

MonteCarloResult from_estimator(const stats::ProportionEstimator& estimator) {
  MonteCarloResult result;
  result.trials = estimator.trials();
  result.occurrences = estimator.successes();
  result.estimate = estimator.estimate();
  result.ci95 = estimator.wilson(0.95);
  return result;
}

}  // namespace

MonteCarloResult estimate_hazard_probability(
    const fta::FaultTree& tree, const fta::QuantificationInput& input,
    std::uint64_t trials, std::uint64_t seed) {
  SAFEOPT_EXPECTS(tree.has_top());
  SAFEOPT_EXPECTS(input.is_valid_for(tree));
  SAFEOPT_EXPECTS(trials >= 1);

  Rng rng(seed);
  stats::ProportionEstimator estimator;
  std::vector<bool> basic(tree.basic_event_count());
  std::vector<bool> condition(tree.condition_count());
  for (std::uint64_t t = 0; t < trials; ++t) {
    for (std::size_t i = 0; i < basic.size(); ++i) {
      basic[i] = bernoulli(rng, input.basic_event_probability[i]);
    }
    for (std::size_t i = 0; i < condition.size(); ++i) {
      condition[i] = bernoulli(rng, input.condition_probability[i]);
    }
    estimator.add(tree.evaluate(basic, condition));
  }
  return from_estimator(estimator);
}

MonteCarloResult estimate_hazard_probability(
    const fta::FaultTree& tree, const fta::QuantificationInput& input,
    std::uint64_t trials, ThreadPool& pool, std::uint64_t seed) {
  SAFEOPT_EXPECTS(tree.has_top());
  SAFEOPT_EXPECTS(input.is_valid_for(tree));
  SAFEOPT_EXPECTS(trials >= 1);

  // Fixed chunking: the trial → chunk mapping depends only on `trials`, so
  // the occurrence total (a sum, order-independent) is the same no matter
  // how chunks land on threads.
  constexpr std::uint64_t kChunkTrials = 1u << 14;
  const std::uint64_t chunks = (trials + kChunkTrials - 1) / kChunkTrials;

  // One generator stream per chunk, spaced 2^128 states apart.
  std::vector<Rng> streams;
  streams.reserve(chunks);
  Rng stream(seed);
  for (std::uint64_t c = 0; c < chunks; ++c) {
    streams.push_back(stream);
    stream.jump();
  }

  std::vector<std::uint64_t> occurrences(chunks, 0);
  pool.parallel_for(chunks, [&](std::size_t begin, std::size_t end) {
    std::vector<bool> basic(tree.basic_event_count());
    std::vector<bool> condition(tree.condition_count());
    for (std::size_t c = begin; c < end; ++c) {
      Rng rng = streams[c];
      const std::uint64_t chunk_trials =
          std::min<std::uint64_t>(kChunkTrials, trials - c * kChunkTrials);
      std::uint64_t hits = 0;
      for (std::uint64_t t = 0; t < chunk_trials; ++t) {
        for (std::size_t i = 0; i < basic.size(); ++i) {
          basic[i] = bernoulli(rng, input.basic_event_probability[i]);
        }
        for (std::size_t i = 0; i < condition.size(); ++i) {
          condition[i] = bernoulli(rng, input.condition_probability[i]);
        }
        if (tree.evaluate(basic, condition)) ++hits;
      }
      occurrences[c] = hits;
    }
  });

  stats::ProportionEstimator estimator;
  for (std::uint64_t c = 0; c < chunks; ++c) {
    const std::uint64_t chunk_trials =
        std::min<std::uint64_t>(kChunkTrials, trials - c * kChunkTrials);
    estimator.add_batch(chunk_trials, occurrences[c]);
  }
  return from_estimator(estimator);
}

MonteCarloResult estimate_until(const fta::FaultTree& tree,
                                const fta::QuantificationInput& input,
                                double relative_halfwidth,
                                std::uint64_t max_trials, std::uint64_t seed) {
  SAFEOPT_EXPECTS(tree.has_top());
  SAFEOPT_EXPECTS(input.is_valid_for(tree));
  SAFEOPT_EXPECTS(relative_halfwidth > 0.0 && relative_halfwidth < 1.0);
  SAFEOPT_EXPECTS(max_trials >= 1);

  Rng rng(seed);
  stats::ProportionEstimator estimator;
  std::vector<bool> basic(tree.basic_event_count());
  std::vector<bool> condition(tree.condition_count());
  constexpr std::uint64_t kCheckInterval = 4096;
  for (std::uint64_t t = 0; t < max_trials; ++t) {
    for (std::size_t i = 0; i < basic.size(); ++i) {
      basic[i] = bernoulli(rng, input.basic_event_probability[i]);
    }
    for (std::size_t i = 0; i < condition.size(); ++i) {
      condition[i] = bernoulli(rng, input.condition_probability[i]);
    }
    estimator.add(tree.evaluate(basic, condition));
    if ((t + 1) % kCheckInterval == 0 && estimator.successes() >= 8) {
      const auto ci = estimator.wilson(0.95);
      const double halfwidth = 0.5 * ci.width();
      if (halfwidth <= relative_halfwidth * estimator.estimate()) break;
    }
  }
  return from_estimator(estimator);
}

}  // namespace safeopt::mc
