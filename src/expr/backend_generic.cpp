// The "generic" evaluation backend: the portable lane-blocked interpreter
// living in compiled.cpp, wrapped in the EvalBackend interface. This is the
// bitwise oracle — every other backend must match it bit-for-bit — and the
// floor runtime dispatch can always fall back to.
#include "backend_factories.h"
#include "safeopt/expr/eval_backend.h"

namespace safeopt::expr {

namespace {

class GenericBackend final : public EvalBackend {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "generic";
  }
  [[nodiscard]] bool available() const noexcept override { return true; }
  [[nodiscard]] int priority() const noexcept override { return 0; }
  [[nodiscard]] std::size_t default_lane_width() const noexcept override {
    return CompiledExpr::kDefaultLaneWidth;
  }
  [[nodiscard]] bool supports_lane_width(
      std::size_t width) const noexcept override {
    return width == 4 || width == 8 || width == 16;
  }

  void run_block(const CompiledExpr& expr, const double* points,
                 std::size_t dim, std::size_t width, double* out,
                 CompiledExpr::LaneScratch& scratch) const override {
    expr.run_generic_block(points, dim, width, out, scratch);
  }

  void run_block_with_gradients(
      const CompiledExpr& expr, const double* points, std::size_t dim,
      std::size_t width, double* values, double* gradients,
      CompiledExpr::LaneScratch& scratch) const override {
    expr.run_generic_block(points, dim, width, values, scratch);
    expr.run_generic_adjoint_block(dim, width, gradients, scratch);
  }
};

}  // namespace

namespace detail {

std::unique_ptr<EvalBackend> make_generic_backend() {
  return std::make_unique<GenericBackend>();
}

}  // namespace detail

}  // namespace safeopt::expr
