// Exhaustive grid evaluation with iterative zoom. The paper (§III-B) notes
// that even when the problem is "neither analytically nor numerically
// solvable, this method can yield some results by testing possible
// combinations ... in very short time"; GridSearch is that method, upgraded
// with refinement rounds that shrink the box around the incumbent. It is also
// what regenerates the Fig. 5 surface.
#ifndef SAFEOPT_OPT_GRID_SEARCH_H
#define SAFEOPT_OPT_GRID_SEARCH_H

#include "safeopt/opt/problem.h"

namespace safeopt::opt {

class GridSearch final : public Optimizer {
 public:
  /// `points_per_dimension` grid lines per axis per round (>= 2);
  /// `refinement_rounds` zoom-ins (1 = plain single grid). Each refinement
  /// re-grids a box of one grid-cell half-width around the incumbent.
  explicit GridSearch(std::size_t points_per_dimension = 21,
                      std::size_t refinement_rounds = 4);

  [[nodiscard]] OptimizationResult minimize(
      const Problem& problem) const override;
  [[nodiscard]] std::string name() const override { return "GridSearch"; }

 private:
  std::size_t points_per_dimension_;
  std::size_t refinement_rounds_;
};

/// A full tabulation of an objective over a 2-D grid — the exact artifact
/// behind the paper's Fig. 5 3-D plot. Row-major: value(i, j) is at
/// x = xs[i], y = ys[j].
struct GridTable {
  std::vector<double> xs;
  std::vector<double> ys;
  std::vector<double> values;  // xs.size() * ys.size(), row-major

  [[nodiscard]] double value(std::size_t i, std::size_t j) const;
  /// Grid argmin as (i, j).
  [[nodiscard]] std::pair<std::size_t, std::size_t> argmin() const;
};

/// Tabulates a 2-D objective over an nx × ny grid spanning `bounds`.
/// Precondition: bounds.dimension() == 2, nx, ny >= 2.
[[nodiscard]] GridTable tabulate_2d(const Objective& objective,
                                    const Box& bounds, std::size_t nx,
                                    std::size_t ny);

/// Same surface through the problem's batch path (compiled tapes, thread
/// pool) — use this for large figure-quality grids. Values are identical to
/// the Objective overload over problem.bounds.
[[nodiscard]] GridTable tabulate_2d(const Problem& problem, std::size_t nx,
                                    std::size_t ny);

}  // namespace safeopt::opt

#endif  // SAFEOPT_OPT_GRID_SEARCH_H
