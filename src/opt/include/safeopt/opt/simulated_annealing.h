// Simulated annealing over a box: a global stochastic baseline for cost
// functions with multiple local minima (the paper's future-work section asks
// "in which cases the resulting optimization problem stays solvable" — SA is
// the fallback when smoothness assumptions fail). Fully deterministic under a
// fixed seed.
#ifndef SAFEOPT_OPT_SIMULATED_ANNEALING_H
#define SAFEOPT_OPT_SIMULATED_ANNEALING_H

#include <cstdint>

#include "safeopt/opt/problem.h"

namespace safeopt::opt {

class SimulatedAnnealing final : public Optimizer {
 public:
  struct Schedule {
    double initial_temperature = 1.0;
    double cooling_factor = 0.95;      // geometric cooling per epoch
    std::size_t steps_per_epoch = 50;  // proposals at each temperature
    double final_temperature = 1e-8;
  };

  SimulatedAnnealing() : SimulatedAnnealing(Schedule{}) {}
  explicit SimulatedAnnealing(Schedule schedule, std::uint64_t seed = 0x5afe0u,
                              StoppingCriteria stopping = {});

  [[nodiscard]] OptimizationResult minimize(
      const Problem& problem) const override;
  [[nodiscard]] std::string name() const override {
    return "SimulatedAnnealing";
  }

 private:
  Schedule schedule_;
  std::uint64_t seed_;
  StoppingCriteria stopping_;
};

}  // namespace safeopt::opt

#endif  // SAFEOPT_OPT_SIMULATED_ANNEALING_H
