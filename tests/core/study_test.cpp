#include "safeopt/core/study.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "safeopt/fta/fault_tree.h"
#include "safeopt/fta/probability.h"

namespace safeopt::core {
namespace {

using expr::parameter;

/// The synthetic two-hazard system of safety_optimizer_test:
///   f_cost = 50·e^{-x} + 0.01·x, argmin x* = ln(5000).
CostModel synthetic_model() {
  CostModel model;
  model.add_hazard({"H1", expr::exp(-parameter("x")), 50.0});
  model.add_hazard({"H2", 0.01 * parameter("x"), 1.0});
  return model;
}

ParameterSpace synthetic_space() {
  return ParameterSpace{{"x", 0.1, 20.0, "", "free parameter"}};
}

void expect_identical(const SafetyOptimizationResult& a,
                      const SafetyOptimizationResult& b) {
  EXPECT_EQ(a.optimization.argmin, b.optimization.argmin);
  EXPECT_EQ(a.optimization.value, b.optimization.value);
  EXPECT_EQ(a.optimization.evaluations, b.optimization.evaluations);
  EXPECT_EQ(a.hazard_probabilities, b.hazard_probabilities);
  EXPECT_EQ(a.cost, b.cost);
}

TEST(StudyTest, DefaultRunMatchesTheLegacyDefaultBitwise) {
  const SafetyOptimizer legacy(synthetic_model(), synthetic_space());
  Study study(synthetic_model(), synthetic_space());
  expect_identical(study.run(), legacy.optimize());
  EXPECT_EQ(study.solver_name(), "multi_start");
}

TEST(StudyTest, SolverByNameMatchesTheEnumPathBitwise) {
  const SafetyOptimizer legacy(synthetic_model(), synthetic_space());
  for (const Algorithm algorithm :
       {Algorithm::kGridSearch, Algorithm::kNelderMead,
        Algorithm::kHookeJeeves, Algorithm::kDifferentialEvolution}) {
    Study by_enum(synthetic_model(), synthetic_space());
    by_enum.algorithm(algorithm);
    Study by_name(synthetic_model(), synthetic_space());
    by_name.solver(std::string(algorithm_registry_name(algorithm)),
                   algorithm_solver_config(algorithm));
    const auto expected = legacy.optimize(algorithm);
    expect_identical(by_enum.run(), expected);
    expect_identical(by_name.run(), expected);
  }
}

TEST(StudyTest, GoldenSectionIsReachableByName) {
  Study study(synthetic_model(), synthetic_space());
  const auto result = study.solver("golden_section").run();
  EXPECT_NEAR(result.optimization.argmin[0], std::log(5000.0), 1e-6);
}

TEST(StudyTest, UnknownSolverNameThrowsFromRun) {
  Study study(synthetic_model(), synthetic_space());
  study.solver("definitely_not_registered");
  EXPECT_THROW((void)study.run(), std::invalid_argument);
}

TEST(StudyTest, CompiledProblemIsCachedPerInstance) {
  Study study(synthetic_model(), synthetic_space());
  // One tape per study: problem() is address-stable ...
  const opt::Problem& first = study.problem();
  const opt::Problem& second = study.problem();
  EXPECT_EQ(&first, &second);
  // ... and consecutive runs (which use it) are reproducible.
  study.solver("nelder_mead");
  const auto run_a = study.run();
  const auto run_b = study.run();
  expect_identical(run_a, run_b);

  const SafetyOptimizer optimizer(synthetic_model(), synthetic_space());
  EXPECT_EQ(&optimizer.problem(), &optimizer.problem());
}

TEST(StudyTest, ProblemFromATemporaryIsASafeCopy) {
  // The rvalue overload returns a copy sharing the tape, so binding a
  // reference to a temporary's problem() cannot dangle.
  const auto& from_temporary =
      SafetyOptimizer(synthetic_model(), synthetic_space()).problem();
  const std::vector<double> at{3.0};
  EXPECT_NEAR(from_temporary.objective(at), 50.0 * std::exp(-3.0) + 0.03,
              1e-12);
  const opt::Problem from_study =
      Study(synthetic_model(), synthetic_space()).problem();
  EXPECT_EQ(from_study.objective(at), from_temporary.objective(at));
}

TEST(StudyTest, ObserverReceivesMonotoneProgress) {
  Study study(synthetic_model(), synthetic_space());
  std::size_t events = 0;
  double last_best = std::numeric_limits<double>::infinity();
  study.solver("hooke_jeeves").observe([&](const opt::ProgressEvent& event) {
    EXPECT_LE(event.best_value, last_best);
    last_best = event.best_value;
    ++events;
  });
  const auto result = study.run();
  EXPECT_GT(events, 0u);
  EXPECT_LE(last_best, result.cost + 1e-15);
}

TEST(StudyTest, EvaluateAtAndCompareMatchSafetyOptimizer) {
  const SafetyOptimizer legacy(synthetic_model(), synthetic_space());
  Study study(synthetic_model(), synthetic_space());
  const expr::ParameterAssignment baseline{{"x", 2.0}};
  expect_identical(study.evaluate_at(baseline), legacy.evaluate_at(baseline));
  const auto optimal = study.solver("nelder_mead").run();
  const auto report = study.compare(baseline, optimal);
  const auto legacy_report =
      legacy.compare(baseline, legacy.optimize(Algorithm::kNelderMead));
  EXPECT_EQ(report.baseline_cost, legacy_report.baseline_cost);
  EXPECT_EQ(report.optimal_cost, legacy_report.optimal_cost);
}

TEST(StudyTest, QuantifyRequiresAnAttachedTree) {
  Study study(synthetic_model(), synthetic_space());
  EXPECT_THROW((void)study.quantify("H1", {{"x", 1.0}}),
               std::invalid_argument);
}

TEST(StudyTest, QuantifyRunsEveryEngineOnTheCompiledLeafTapes) {
  // A redundant pair whose failure probability depends on the free
  // parameter x, quantified through the fault tree.
  fta::FaultTree tree("Loss");
  const auto a = tree.add_basic_event("A");
  const auto b = tree.add_basic_event("B");
  tree.set_top(tree.add_and("Both", {a, b}));
  ParameterizedQuantification quant(tree);
  const expr::Expr p_leaf = 0.1 * parameter("x");
  quant.set_event_probability("A", p_leaf);
  quant.set_event_probability("B", p_leaf);

  CostModel model;
  model.add_hazard({"Loss", quant.hazard_expression(), 10.0});
  model.add_hazard({"Burden", 0.001 * parameter("x"), 1.0});
  ParameterSpace space{{"x", 0.1, 1.0, "", ""}};

  Study study(std::move(model), std::move(space));
  study.hazard_tree("Loss", tree, quant);
  const expr::ParameterAssignment at{{"x", 0.5}};
  // P(Loss) = (0.05)^2 exactly; both deterministic engines nail it, and the
  // expression path (rare event over the single cut set {A, B}) agrees.
  const double expected = 0.05 * 0.05;
  EXPECT_NEAR(study.engine("fta").quantify("Loss", at).probability, expected,
              1e-15);
  EXPECT_NEAR(study.engine("bdd").quantify("Loss", at).probability, expected,
              1e-15);
  const auto sampled = study.engine("mc").quantify("Loss", at);
  ASSERT_TRUE(sampled.ci95.has_value());
  EXPECT_TRUE(sampled.ci95->contains(expected));
  EXPECT_GT(sampled.trials, 0u);
  // Attaching a hazard the cost model does not know is a contract violation
  // caught eagerly (hazard_by_name aborts); unknown hazards at quantify
  // time throw.
  EXPECT_THROW((void)study.quantify("NotAttached", at),
               std::invalid_argument);
}

TEST(ParseAlgorithmTest, RoundTripsDisplayAndRegistryNames) {
  constexpr Algorithm kAll[] = {
      Algorithm::kGridSearch,       Algorithm::kNelderMead,
      Algorithm::kMultiStartNelderMead, Algorithm::kGradientDescent,
      Algorithm::kHookeJeeves,      Algorithm::kCoordinateDescent,
      Algorithm::kSimulatedAnnealing,
      Algorithm::kDifferentialEvolution,
  };
  for (const Algorithm algorithm : kAll) {
    EXPECT_EQ(parse_algorithm(to_string(algorithm)), algorithm);
    EXPECT_EQ(parse_algorithm(algorithm_registry_name(algorithm)), algorithm);
  }
  EXPECT_EQ(parse_algorithm("golden_section"), std::nullopt);
  EXPECT_EQ(parse_algorithm("rubbish"), std::nullopt);
  EXPECT_EQ(parse_algorithm(""), std::nullopt);
}

TEST(ParseAlgorithmTest, ResolveSolverCoversDisplayRegistryAndUnknownNames) {
  // Legacy display name -> registry name + the legacy knobs.
  const auto legacy = resolve_solver("GridSearch");
  ASSERT_TRUE(legacy.has_value());
  EXPECT_EQ(legacy->name, "grid_search");
  EXPECT_EQ(legacy->config.number_or("points_per_dimension", 0.0), 33.0);
  // Enum-equivalent registry names keep the legacy knobs too.
  const auto by_registry_name = resolve_solver("multi_start");
  ASSERT_TRUE(by_registry_name.has_value());
  EXPECT_EQ(by_registry_name->name, "multi_start");
  EXPECT_EQ(by_registry_name->config.number_or("starts", 0.0), 8.0);
  // Registry-only names resolve with a default config.
  const auto registry_only = resolve_solver("golden_section");
  ASSERT_TRUE(registry_only.has_value());
  EXPECT_EQ(registry_only->name, "golden_section");
  EXPECT_FALSE(registry_only->config.has("starts"));
  EXPECT_EQ(resolve_solver("rubbish"), std::nullopt);
}

}  // namespace
}  // namespace safeopt::core
