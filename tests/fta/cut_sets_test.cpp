#include "safeopt/fta/cut_sets.h"

#include <gtest/gtest.h>

#include "../testutil/random_tree.h"

namespace safeopt::fta {
namespace {

TEST(CutSetTest, SubsumptionIsSubsetRelation) {
  const CutSet small{{0, 2}, {}};
  const CutSet big{{0, 1, 2}, {}};
  EXPECT_TRUE(small.subsumes(big));
  EXPECT_FALSE(big.subsumes(small));
  EXPECT_TRUE(small.subsumes(small));
}

TEST(CutSetTest, SubsumptionRespectsConditions) {
  const CutSet unconditioned{{0}, {}};
  const CutSet conditioned{{0}, {0}};
  EXPECT_TRUE(unconditioned.subsumes(conditioned));
  EXPECT_FALSE(conditioned.subsumes(unconditioned));
}

TEST(CutSetCollectionTest, MinimizeDropsSupersets) {
  CutSetCollection collection({CutSet{{0}, {}}, CutSet{{0, 1}, {}},
                               CutSet{{1, 2}, {}}});
  collection.minimize();
  EXPECT_EQ(collection.size(), 2u);
  EXPECT_TRUE(collection.is_minimal());
}

TEST(MocusTest, SingleOrGate) {
  FaultTree tree("or");
  const NodeId a = tree.add_basic_event("a");
  const NodeId b = tree.add_basic_event("b");
  tree.set_top(tree.add_or("top", {a, b}));
  const CutSetCollection mcs = minimal_cut_sets(tree);
  ASSERT_EQ(mcs.size(), 2u);
  EXPECT_EQ(mcs[0].events, (std::vector<BasicEventOrdinal>{0}));
  EXPECT_EQ(mcs[1].events, (std::vector<BasicEventOrdinal>{1}));
  EXPECT_EQ(mcs.count_of_order(1), 2u);
}

TEST(MocusTest, SingleAndGate) {
  FaultTree tree("and");
  const NodeId a = tree.add_basic_event("a");
  const NodeId b = tree.add_basic_event("b");
  tree.set_top(tree.add_and("top", {a, b}));
  const CutSetCollection mcs = minimal_cut_sets(tree);
  ASSERT_EQ(mcs.size(), 1u);
  EXPECT_EQ(mcs[0].events, (std::vector<BasicEventOrdinal>{0, 1}));
}

TEST(MocusTest, TwoOutOfThreeVote) {
  FaultTree tree("vote");
  const NodeId a = tree.add_basic_event("a");
  const NodeId b = tree.add_basic_event("b");
  const NodeId c = tree.add_basic_event("c");
  tree.set_top(tree.add_k_of_n("top", 2, {a, b, c}));
  const CutSetCollection mcs = minimal_cut_sets(tree);
  EXPECT_EQ(mcs.size(), 3u);  // {a,b}, {a,c}, {b,c}
  EXPECT_EQ(mcs.count_of_order(2), 3u);
}

TEST(MocusTest, SharedEventAbsorbs) {
  // top = AND(OR(s, a), OR(s, b)): MCS = {s}, {a, b}.
  FaultTree tree("diamond");
  const NodeId s = tree.add_basic_event("s");
  const NodeId a = tree.add_basic_event("a");
  const NodeId b = tree.add_basic_event("b");
  const NodeId or1 = tree.add_or("or1", {s, a});
  const NodeId or2 = tree.add_or("or2", {s, b});
  tree.set_top(tree.add_and("top", {or1, or2}));
  const CutSetCollection mcs = minimal_cut_sets(tree);
  ASSERT_EQ(mcs.size(), 2u);
  EXPECT_EQ(mcs[0].events, (std::vector<BasicEventOrdinal>{0}));        // {s}
  EXPECT_EQ(mcs[1].events, (std::vector<BasicEventOrdinal>{1, 2}));    // {a,b}
}

TEST(MocusTest, InhibitConditionsLandInCutSetConditions) {
  // The Elbtunnel §IV-B.2 shape: OR(residual, INHIBIT(OT1|crit),
  // INHIBIT(OT2|crit)).
  FaultTree tree("HCol");
  const NodeId residual = tree.add_basic_event("residual");
  const NodeId ot1 = tree.add_basic_event("OT1");
  const NodeId ot2 = tree.add_basic_event("OT2");
  const NodeId crit = tree.add_condition("OHVcritical");
  const NodeId g1 = tree.add_inhibit("g1", ot1, crit);
  const NodeId g2 = tree.add_inhibit("g2", ot2, crit);
  tree.set_top(tree.add_or("top", {residual, g1, g2}));
  const CutSetCollection mcs = minimal_cut_sets(tree);
  ASSERT_EQ(mcs.size(), 3u);
  // {residual} is unconstrained; {OT1} and {OT2} carry the condition.
  EXPECT_TRUE(mcs[0].conditions.empty());
  EXPECT_EQ(mcs[1].conditions, (std::vector<ConditionOrdinal>{0}));
  EXPECT_EQ(mcs[2].conditions, (std::vector<ConditionOrdinal>{0}));
  // All three are single points of failure — the paper's §IV-B.2 finding.
  EXPECT_EQ(mcs.single_points_of_failure().size(), 3u);
}

TEST(MocusTest, XorExpandsAsOr) {
  FaultTree tree("xor");
  const NodeId a = tree.add_basic_event("a");
  const NodeId b = tree.add_basic_event("b");
  tree.set_top(tree.add_xor("top", {a, b}));
  const CutSetCollection mcs = minimal_cut_sets(tree);
  EXPECT_EQ(mcs.size(), 2u);  // coherent hull: {a}, {b}
}

TEST(MocusTest, ToStringNamesEventsAndConditions) {
  FaultTree tree("t");
  const NodeId a = tree.add_basic_event("failure_a");
  const NodeId c = tree.add_condition("env_cond");
  tree.set_top(tree.add_inhibit("top", a, c));
  const CutSetCollection mcs = minimal_cut_sets(tree);
  EXPECT_EQ(mcs.to_string(tree), "{failure_a | env_cond}");
}

// ------------------------------------------------------------- path sets

TEST(PathSetTest, AndOrDuality) {
  // OR(a, b): only path set is {a, b} (prevent both). AND(a, b): paths
  // {a} and {b} (prevent either).
  FaultTree or_tree("or");
  const NodeId oa = or_tree.add_basic_event("a");
  const NodeId ob = or_tree.add_basic_event("b");
  or_tree.set_top(or_tree.add_or("top", {oa, ob}));
  const CutSetCollection or_paths = minimal_path_sets(or_tree);
  ASSERT_EQ(or_paths.size(), 1u);
  EXPECT_EQ(or_paths[0].events, (std::vector<BasicEventOrdinal>{0, 1}));

  FaultTree and_tree("and");
  const NodeId aa = and_tree.add_basic_event("a");
  const NodeId ab = and_tree.add_basic_event("b");
  and_tree.set_top(and_tree.add_and("top", {aa, ab}));
  const CutSetCollection and_paths = minimal_path_sets(and_tree);
  ASSERT_EQ(and_paths.size(), 2u);
  EXPECT_EQ(and_paths.count_of_order(1), 2u);
}

TEST(PathSetTest, VoteGateDualizesToComplementThreshold) {
  // 2-of-3 fails when 2 fail; it survives when 2 are healthy: path sets
  // are all pairs.
  FaultTree tree("vote");
  const NodeId a = tree.add_basic_event("a");
  const NodeId b = tree.add_basic_event("b");
  const NodeId c = tree.add_basic_event("c");
  tree.set_top(tree.add_k_of_n("top", 2, {a, b, c}));
  const CutSetCollection paths = minimal_path_sets(tree);
  EXPECT_EQ(paths.size(), 3u);
  EXPECT_EQ(paths.count_of_order(2), 3u);
}

TEST(PathSetTest, ConditionsCanBreakConstrainedCutSets) {
  FaultTree tree("inh");
  const NodeId pf = tree.add_basic_event("pf");
  const NodeId env = tree.add_condition("env");
  tree.set_top(tree.add_inhibit("top", pf, env));
  const CutSetCollection paths = minimal_path_sets(tree);
  // Prevent the failure itself, OR prevent the enabling condition.
  ASSERT_EQ(paths.size(), 2u);
  // Canonical order puts the smaller event set first.
  EXPECT_EQ(paths.to_string(tree), "{ | env}, {pf}");
}

class PathSetProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PathSetProperties, EveryPathSetIntersectsEveryCutSet) {
  // The defining duality: a path set must hit every cut set (otherwise a
  // cut set could fire with the whole path set healthy), over combined
  // event/condition identities.
  const FaultTree tree = testutil::random_tree(
      GetParam(), {.basic_events = 6, .conditions = 1, .gates = 5});
  const CutSetCollection cuts = minimal_cut_sets(tree);
  const CutSetCollection paths = minimal_path_sets(tree);
  ASSERT_FALSE(paths.empty());
  for (const CutSet& path : paths.sets()) {
    for (const CutSet& cut : cuts.sets()) {
      bool intersects = false;
      for (const BasicEventOrdinal e : path.events) {
        intersects = intersects ||
                     std::binary_search(cut.events.begin(), cut.events.end(),
                                        e);
      }
      for (const ConditionOrdinal c : path.conditions) {
        intersects = intersects ||
                     std::binary_search(cut.conditions.begin(),
                                        cut.conditions.end(), c);
      }
      EXPECT_TRUE(intersects)
          << "seed " << GetParam() << ": path {" << paths.to_string(tree)
          << "} misses cut {" << cuts.to_string(tree) << "}";
    }
  }
}

TEST_P(PathSetProperties, BlockingAPathSetPreventsTheHazard) {
  // Semantics check through the structure function: set every leaf outside
  // one path set to true — the hazard must still be impossible.
  const FaultTree tree = testutil::random_tree(
      GetParam() + 1000, {.basic_events = 6, .conditions = 1, .gates = 5});
  const CutSetCollection paths = minimal_path_sets(tree);
  for (const CutSet& path : paths.sets()) {
    std::vector<bool> basic(tree.basic_event_count(), true);
    std::vector<bool> cond(tree.condition_count(), true);
    for (const BasicEventOrdinal e : path.events) basic[e] = false;
    for (const ConditionOrdinal c : path.conditions) cond[c] = false;
    EXPECT_FALSE(tree.evaluate(basic, cond)) << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PathSetProperties,
                         ::testing::Range<std::uint64_t>(0, 25));

// -------------------------------------------------------------- properties

class MocusVsBruteForce : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MocusVsBruteForce, AgreeOnRandomTrees) {
  const fta::FaultTree tree = testutil::random_tree(
      GetParam(), {.basic_events = 6, .conditions = 1, .gates = 5});
  const CutSetCollection mocus = minimal_cut_sets(tree);
  const CutSetCollection brute = minimal_cut_sets_bruteforce(tree);
  EXPECT_EQ(mocus.sets(), brute.sets()) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, MocusVsBruteForce,
                         ::testing::Range<std::uint64_t>(0, 40));

class MocusInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MocusInvariants, ResultIsMinimalAndCausesHazard) {
  const fta::FaultTree tree = testutil::random_tree(
      GetParam(), {.basic_events = 8, .conditions = 2, .gates = 7});
  const CutSetCollection mcs = minimal_cut_sets(tree);
  EXPECT_TRUE(mcs.is_minimal());
  // Every cut set, with its conditions enabled, must actually trigger the
  // hazard through the structure function (soundness of MOCUS).
  for (const CutSet& cs : mcs) {
    std::vector<bool> basic(tree.basic_event_count(), false);
    std::vector<bool> cond(tree.condition_count(), false);
    for (const BasicEventOrdinal e : cs.events) basic[e] = true;
    for (const ConditionOrdinal c : cs.conditions) cond[c] = true;
    EXPECT_TRUE(tree.evaluate(basic, cond))
        << "seed " << GetParam() << " cut set " << mcs.to_string(tree);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MocusInvariants,
                         ::testing::Range<std::uint64_t>(100, 130));

}  // namespace
}  // namespace safeopt::fta
