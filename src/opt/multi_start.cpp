#include "safeopt/opt/multi_start.h"

#include <stdexcept>

#include "builtin_solvers.h"

#include "safeopt/support/contracts.h"
#include "safeopt/support/rng.h"
#include "safeopt/support/strings.h"
#include "safeopt/support/thread_pool.h"

namespace safeopt::opt {

MultiStart::MultiStart(LocalSolverFactory factory, std::size_t starts,
                       std::uint64_t seed, ThreadPool* pool)
    : factory_(std::move(factory)), starts_(starts), seed_(seed), pool_(pool) {
  SAFEOPT_EXPECTS(starts >= 1);
  SAFEOPT_EXPECTS(static_cast<bool>(factory_));
}

OptimizationResult MultiStart::minimize(const Problem& problem) const {
  const std::size_t dim = problem.bounds.dimension();
  SAFEOPT_EXPECTS(dim >= 1);
  Rng rng(seed_);

  // Draw every start before any solve runs, so the start list (and with it
  // the whole result) does not depend on scheduling. Start 0 is the box
  // center (the "engineer's default"); the rest are uniform random points.
  std::vector<std::vector<double>> starts(starts_,
                                          std::vector<double>(dim));
  starts[0] = problem.bounds.center();
  for (std::size_t s = 1; s < starts_; ++s) {
    for (std::size_t i = 0; i < dim; ++i) {
      starts[s][i] =
          uniform(rng, problem.bounds.lower[i], problem.bounds.upper[i]);
    }
  }
  // Factories may be stateful, so build the solvers sequentially too.
  std::vector<std::unique_ptr<Optimizer>> solvers(starts_);
  for (std::size_t s = 0; s < starts_; ++s) {
    solvers[s] = factory_(std::move(starts[s]));
    SAFEOPT_ASSERT(solvers[s] != nullptr);
  }

  std::vector<OptimizationResult> results(starts_);
  const auto run_range = [&](std::size_t begin, std::size_t end) {
    for (std::size_t s = begin; s < end; ++s) {
      results[s] = solvers[s]->minimize(problem);
    }
  };
  if (pool_ != nullptr) {
    pool_->parallel_for(starts_, run_range);
  } else {
    run_range(0, starts_);
  }

  // Sequential reduction with a strict '<' — same winner (first best) as
  // the original one-at-a-time loop.
  OptimizationResult best;
  std::size_t total_evaluations = 0;
  std::size_t total_iterations = 0;
  bool first = true;
  for (OptimizationResult& result : results) {
    total_evaluations += result.evaluations;
    total_iterations += result.iterations;
    if (first || result.value < best.value) {
      best = std::move(result);
      first = false;
    }
  }
  best.evaluations = total_evaluations;
  best.iterations = total_iterations;
  best.message = concat("best of ", std::to_string(starts_), " starts: ",
                        best.message);
  return best;
}

// ---- registry adapter -------------------------------------------------------

namespace {

/// The meta-solver: wraps *any* registered solver by name. Extras: "inner"
/// (registry name of the local solver, default "nelder_mead") and "starts"
/// (default 8). Honors config.seed (start-point stream) and config.pool
/// (concurrent starts). The inner solver inherits the stopping rule and the
/// remaining extras; observer/budget instrumentation stays at the outer
/// level, where it already wraps the problem every start evaluates.
class MultiStartSolver final : public Solver {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "multi_start";
  }
  [[nodiscard]] SolverTraits traits() const noexcept override {
    return SolverTraits{.max_dimension = 0, .stochastic = true};
  }

 private:
  [[nodiscard]] OptimizationResult run(
      const Problem& problem, const SolverConfig& config) const override {
    const std::string inner_name = config.string_or("inner", "nelder_mead");
    const std::size_t starts = config.count_or("starts", 8);
    if (starts == 0) {
      throw std::invalid_argument("multi_start: \"starts\" must be >= 1");
    }
    if (inner_name == name()) {
      // The inner config inherits this config's extras — including "inner"
      // — so self-nesting would recurse with 8^depth fan-out.
      throw std::invalid_argument(
          "multi_start cannot wrap itself as the \"inner\" solver");
    }
    // Validate the inner solver against this problem up front: a clear
    // error here beats one thrown later from inside a pool worker.
    SolverRegistry::create(inner_name)->check(problem);
    SolverConfig inner_config = config;
    inner_config.observer = nullptr;
    inner_config.max_evaluations = 0;
    inner_config.pool = nullptr;
    MultiStart multi(
        [&inner_name, &inner_config](
            std::vector<double> start) -> std::unique_ptr<Optimizer> {
          SolverConfig start_config = inner_config;
          start_config.initial = std::move(start);
          return std::make_unique<SolverAdapter>(
              SolverRegistry::create(inner_name), std::move(start_config));
        },
        starts, config.seed.value_or(0x5eedbed), config.pool);
    return multi.minimize(problem);
  }
};

}  // namespace

std::unique_ptr<Solver> detail::make_multi_start_solver() {
  return std::make_unique<MultiStartSolver>();
}

}  // namespace safeopt::opt
