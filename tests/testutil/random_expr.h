// Test-only helper: deterministic random expression-DAG generation for the
// compiled-tape property tests (tape vs tree equivalence, reverse-mode vs
// forward-mode gradients). Generated expressions are domain-safe by
// construction — arguments of log/sqrt/div/pow are clamped into strictly
// positive ranges and exp arguments are bounded — so evaluation never
// produces NaN/inf for parameter values in [0.25, 4].
#ifndef SAFEOPT_TESTS_TESTUTIL_RANDOM_EXPR_H
#define SAFEOPT_TESTS_TESTUTIL_RANDOM_EXPR_H

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "safeopt/expr/expr.h"
#include "safeopt/stats/distribution.h"
#include "safeopt/support/rng.h"

namespace safeopt::testutil {

inline expr::Expr random_expr(Rng& rng,
                              const std::vector<std::string>& params,
                              std::size_t depth) {
  using expr::Expr;
  const auto leaf = [&]() -> Expr {
    if (bernoulli(rng, 0.6)) {
      return expr::parameter(
          params[static_cast<std::size_t>(uniform_index(rng, params.size()))]);
    }
    return expr::constant(uniform(rng, 0.25, 2.0));
  };
  if (depth == 0) return leaf();
  const auto sub = [&]() { return random_expr(rng, params, depth - 1); };

  switch (uniform_index(rng, 14)) {
    case 0: return sub() + sub();
    case 1: return sub() - sub();
    case 2: return sub() * sub();
    case 3: return sub() / expr::clamp(sub(), 0.5, 8.0);
    case 4: return expr::min(sub(), sub());
    case 5: return expr::max(sub(), sub());
    case 6: return -sub();
    case 7: return expr::exp(expr::clamp(sub(), -4.0, 4.0));
    case 8: return expr::log(expr::clamp(sub(), 0.25, 8.0));
    case 9: return expr::sqrt(expr::clamp(sub(), 0.25, 8.0));
    case 10:
      return expr::pow(expr::clamp(sub(), 0.25, 8.0),
                       uniform(rng, 0.5, 3.0));
    case 11: {
      const auto normal = std::make_shared<stats::Normal>(
          uniform(rng, -1.0, 1.0), uniform(rng, 0.5, 2.0));
      return bernoulli(rng, 0.5) ? expr::cdf(normal, sub())
                                 : expr::survival(normal, sub());
    }
    case 12:
      return expr::poisson_exposure(uniform(rng, 0.01, 0.5),
                                    expr::clamp(sub(), 0.0, 8.0));
    default: {
      // Opaque function node; half the time without an analytic derivative
      // so the finite-difference fallback is exercised too.
      const bool with_derivative = bernoulli(rng, 0.5);
      return expr::function1(
          "tanh", [](double x) { return std::tanh(x); },
          with_derivative
              ? std::function<double(double)>([](double x) {
                  const double t = std::tanh(x);
                  return 1.0 - t * t;
                })
              : std::function<double(double)>(),
          expr::clamp(sub(), -6.0, 6.0));
    }
  }
}

inline expr::ParameterAssignment random_assignment(
    Rng& rng, const std::vector<std::string>& params) {
  expr::ParameterAssignment env;
  for (const std::string& name : params) {
    env.set(name, uniform(rng, 0.25, 4.0));
  }
  return env;
}

}  // namespace safeopt::testutil

#endif  // SAFEOPT_TESTS_TESTUTIL_RANDOM_EXPR_H
