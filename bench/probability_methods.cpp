// Ablation B: top-event probability methods — the paper's rare-event sum
// (Eq. 1/2) vs the min-cut upper bound vs exact evaluation — in both speed
// and accuracy. Accuracy is reported as relative error against the exact
// BDD value while scaling the leaf-failure magnitude: the rare-event
// approximation is excellent at 1e-4 and degrades as failures become
// likely, which is precisely the paper's stated applicability condition
// ("failure probabilities are very small").
#include <benchmark/benchmark.h>

#include <cstdio>

#include "../tests/testutil/random_tree.h"
#include "safeopt/bdd/bdd.h"
#include "safeopt/fta/probability.h"

namespace {

using namespace safeopt;

void accuracy_table() {
  std::printf(
      "\n=== accuracy vs exact (mean relative error over 20 random trees) "
      "===\n%12s %14s %14s\n",
      "leaf P", "rare-event", "MCUB");
  for (const double magnitude : {1e-4, 1e-3, 1e-2, 0.05, 0.1, 0.3}) {
    double rare_err = 0.0;
    double mcub_err = 0.0;
    int counted = 0;
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
      const fta::FaultTree tree = testutil::random_tree(
          seed, {.basic_events = 8, .conditions = 1, .gates = 7});
      const fta::QuantificationInput input = testutil::random_probabilities(
          tree, seed, magnitude * 0.5, magnitude);
      const fta::CutSetCollection mcs = fta::minimal_cut_sets(tree);
      bdd::CompiledFaultTree compiled = bdd::compile(tree);
      const double exact = compiled.probability(input);
      if (exact <= 0.0) continue;
      rare_err += std::abs(fta::top_event_probability(
                               mcs, input,
                               fta::ProbabilityMethod::kRareEvent) -
                           exact) /
                  exact;
      mcub_err += std::abs(fta::top_event_probability(
                               mcs, input,
                               fta::ProbabilityMethod::kMinCutUpperBound) -
                           exact) /
                  exact;
      ++counted;
    }
    std::printf("%12.0e %13.4f%% %13.4f%%\n", magnitude,
                100.0 * rare_err / counted, 100.0 * mcub_err / counted);
  }
  std::printf("\n");
}

fta::FaultTree benchmark_tree() {
  return testutil::random_tree(
      7, {.basic_events = 12, .conditions = 2, .gates = 10});
}

void BM_RareEvent(benchmark::State& state) {
  const fta::FaultTree tree = benchmark_tree();
  const auto input = testutil::random_probabilities(tree, 7);
  const auto mcs = fta::minimal_cut_sets(tree);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fta::top_event_probability(
        mcs, input, fta::ProbabilityMethod::kRareEvent));
  }
}
BENCHMARK(BM_RareEvent);

void BM_MinCutUpperBound(benchmark::State& state) {
  const fta::FaultTree tree = benchmark_tree();
  const auto input = testutil::random_probabilities(tree, 7);
  const auto mcs = fta::minimal_cut_sets(tree);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fta::top_event_probability(
        mcs, input, fta::ProbabilityMethod::kMinCutUpperBound));
  }
}
BENCHMARK(BM_MinCutUpperBound);

void BM_InclusionExclusion(benchmark::State& state) {
  const fta::FaultTree tree = benchmark_tree();
  const auto input = testutil::random_probabilities(tree, 7);
  const auto mcs = fta::minimal_cut_sets(tree);
  if (mcs.size() > 20) {
    state.SkipWithError("too many cut sets for inclusion-exclusion");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(fta::top_event_probability(
        mcs, input, fta::ProbabilityMethod::kInclusionExclusion));
  }
}
BENCHMARK(BM_InclusionExclusion);

void BM_BddExactReusingCompilation(benchmark::State& state) {
  const fta::FaultTree tree = benchmark_tree();
  const auto input = testutil::random_probabilities(tree, 7);
  bdd::CompiledFaultTree compiled = bdd::compile(tree);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compiled.probability(input));
  }
}
BENCHMARK(BM_BddExactReusingCompilation);

void BM_BddExactIncludingCompilation(benchmark::State& state) {
  const fta::FaultTree tree = benchmark_tree();
  const auto input = testutil::random_probabilities(tree, 7);
  for (auto _ : state) {
    bdd::CompiledFaultTree compiled = bdd::compile(tree);
    benchmark::DoNotOptimize(compiled.probability(input));
  }
}
BENCHMARK(BM_BddExactIncludingCompilation);

}  // namespace

int main(int argc, char** argv) {
  accuracy_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
