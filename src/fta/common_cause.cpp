#include "safeopt/fta/common_cause.h"

#include <algorithm>
#include <map>

#include "safeopt/support/contracts.h"
#include "safeopt/support/strings.h"

namespace safeopt::fta {

CommonCauseModel apply_beta_factor(
    const FaultTree& tree, const QuantificationInput& probabilities,
    const std::vector<CommonCauseGroup>& groups) {
  SAFEOPT_EXPECTS(tree.has_top());
  SAFEOPT_EXPECTS(probabilities.is_valid_for(tree));

  // Validate groups and index members: event ordinal -> (group index, beta).
  std::map<BasicEventOrdinal, std::size_t> group_of_member;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    const CommonCauseGroup& group = groups[g];
    SAFEOPT_EXPECTS(!group.name.empty());
    SAFEOPT_EXPECTS(group.members.size() >= 2);
    SAFEOPT_EXPECTS(group.beta > 0.0 && group.beta <= 1.0);
    for (const std::string& member : group.members) {
      const auto id = tree.find(member);
      SAFEOPT_EXPECTS(id.has_value());
      SAFEOPT_EXPECTS(tree.kind(*id) == NodeKind::kBasicEvent);
      const BasicEventOrdinal ordinal = tree.basic_event_ordinal(*id);
      SAFEOPT_EXPECTS(!group_of_member.contains(ordinal));  // disjoint
      group_of_member.emplace(ordinal, g);
    }
  }

  CommonCauseModel model{FaultTree(concat(tree.name(), "+ccf")), {}};

  // One shared common-cause event per group; probability β·min over the
  // members' point estimates (symmetric-conservative for mixed groups).
  std::vector<NodeId> ccf_event(groups.size());
  std::vector<double> ccf_probability(groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    double min_p = 1.0;
    for (const std::string& member : groups[g].members) {
      const auto id = tree.find(member);
      min_p = std::min(
          min_p,
          probabilities.basic_event_probability[tree.basic_event_ordinal(
              *id)]);
    }
    ccf_probability[g] = groups[g].beta * min_p;
    ccf_event[g] = model.tree.add_basic_event(
        concat(groups[g].name, ".ccf"),
        "beta-factor common cause failing all group members");
  }

  // Rebuild node by node. Children always have smaller NodeIds than their
  // parents (construction is bottom-up), so a single id-ordered pass works.
  std::vector<NodeId> mapped(tree.node_count());
  std::vector<double> event_probs;  // by new BasicEventOrdinal, appended
  event_probs.assign(ccf_probability.begin(), ccf_probability.end());
  std::vector<double> condition_probs;

  for (NodeId id = 0; id < tree.node_count(); ++id) {
    switch (tree.kind(id)) {
      case NodeKind::kBasicEvent: {
        const BasicEventOrdinal ordinal = tree.basic_event_ordinal(id);
        const double p = probabilities.basic_event_probability[ordinal];
        const auto member = group_of_member.find(ordinal);
        if (member == group_of_member.end()) {
          mapped[id] = model.tree.add_basic_event(tree.node_name(id),
                                                  tree.description(id));
          event_probs.push_back(p);
        } else {
          const std::size_t g = member->second;
          const NodeId independent = model.tree.add_basic_event(
              concat(tree.node_name(id), ".indep"),
              "independent part of a common-cause group member");
          event_probs.push_back((1.0 - groups[g].beta) * p);
          // The OR gate takes the member's original name, so parents (and
          // users) still address the component by its own name.
          mapped[id] = model.tree.add_or(tree.node_name(id),
                                         {independent, ccf_event[g]});
        }
        break;
      }
      case NodeKind::kCondition: {
        mapped[id] = model.tree.add_condition(tree.node_name(id),
                                              tree.description(id));
        condition_probs.push_back(
            probabilities
                .condition_probability[tree.condition_ordinal(id)]);
        break;
      }
      case NodeKind::kGate: {
        std::vector<NodeId> children;
        children.reserve(tree.children(id).size());
        for (const NodeId child : tree.children(id)) {
          children.push_back(mapped[child]);
        }
        const std::string& name = tree.node_name(id);
        switch (tree.gate_type(id)) {
          case GateType::kAnd:
            mapped[id] = model.tree.add_and(name, std::move(children));
            break;
          case GateType::kOr:
            mapped[id] = model.tree.add_or(name, std::move(children));
            break;
          case GateType::kXor:
            mapped[id] = model.tree.add_xor(name, std::move(children));
            break;
          case GateType::kKofN:
            mapped[id] = model.tree.add_k_of_n(name, tree.vote_threshold(id),
                                               std::move(children));
            break;
          case GateType::kInhibit:
            mapped[id] =
                model.tree.add_inhibit(name, children[0], children[1]);
            break;
        }
        break;
      }
    }
  }
  model.tree.set_top(mapped[tree.top()]);

  model.probabilities.basic_event_probability = std::move(event_probs);
  model.probabilities.condition_probability = std::move(condition_probs);
  SAFEOPT_ENSURES(model.probabilities.is_valid_for(model.tree));
  return model;
}

}  // namespace safeopt::fta
