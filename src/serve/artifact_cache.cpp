#include "safeopt/serve/artifact_cache.h"

#include <utility>

#include "safeopt/support/error.h"

namespace safeopt::serve {
namespace {

/// True for exceptions that only make sense for the request whose control
/// raised them — the leader's expired deadline or vanished client says
/// nothing about the computation itself, so waiters must not inherit it.
bool control_tainted(const std::exception_ptr& error) {
  if (!error) return false;
  try {
    std::rethrow_exception(error);
  } catch (const Error& e) {
    return e.category() == ErrorCategory::kDeadlineExceeded ||
           e.category() == ErrorCategory::kCancelled;
  } catch (...) {
    return false;
  }
}

}  // namespace

ArtifactCache::ArtifactCache(std::size_t byte_budget)
    : byte_budget_(byte_budget) {
  // No concurrency yet; locking keeps the declared discipline uniform.
  const MutexLock lock(mutex_);
  stats_.byte_budget = byte_budget;
}

void ArtifactCache::record_locked(const std::string& key, bool hit) {
  const std::size_t colon = key.find(':');
  CachePassStats& pass =
      stats_.passes[key.substr(0, colon == std::string::npos ? key.size()
                                                             : colon)];
  if (hit) {
    ++stats_.hits;
    ++pass.hits;
  } else {
    ++stats_.misses;
    ++pass.misses;
  }
}

void ArtifactCache::evict_over_budget_locked(const std::string& keep) {
  while (stats_.bytes_in_use > byte_budget_ && !lru_.empty()) {
    // Never evict the entry we are inserting for, even when it alone blows
    // the budget — the caller is about to use it.
    std::string victim = lru_.back();
    if (victim == keep) break;
    lru_.pop_back();
    const auto found = entries_.find(victim);
    stats_.bytes_in_use -= found->second.bytes;
    entries_.erase(found);
    ++stats_.evictions;
  }
}

std::shared_ptr<const void> ArtifactCache::get_or_compute(
    const std::string& key, const Factory& make) {
  for (;;) {
    std::shared_ptr<InFlight> flight;
    bool leader = false;
    {
      const MutexLock lock(mutex_);
      const auto found = entries_.find(key);
      if (found != entries_.end()) {
        lru_.splice(lru_.begin(), lru_, found->second.lru);  // touch
        record_locked(key, true);
        return found->second.value;
      }
      const auto racing = in_flight_.find(key);
      if (racing != in_flight_.end()) {
        flight = racing->second;
        ++stats_.single_flight_waits;
      } else {
        flight = std::make_shared<InFlight>();
        in_flight_.emplace(key, flight);
        leader = true;
        record_locked(key, false);
      }
    }

    if (!leader) {
      bool rerun = false;
      std::shared_ptr<const void> value;
      std::exception_ptr error;
      {
        MutexLock lock(flight->mutex);
        while (!flight->done) lock.wait(flight->done_cv);
        if (!flight->shared) {
          // The leader's outcome is valid only under its own request
          // control (deadline fired / client vanished); retry as an
          // innocent request.
          rerun = true;
        } else {
          value = flight->value;
          error = flight->error;
        }
      }
      if (rerun) {
        const MutexLock lock(mutex_);
        ++stats_.single_flight_reruns;
        continue;
      }
      if (error) std::rethrow_exception(error);
      return value;
    }

    CacheEntry entry;
    std::exception_ptr error;
    try {
      entry = make();
    } catch (...) {
      error = std::current_exception();
    }
    const bool shareable =
        error ? !control_tainted(error) : entry.share;

    {
      const MutexLock lock(mutex_);
      in_flight_.erase(key);
      // A factory that succeeded may still opt out of storage; one that
      // threw or produced an artifact larger than the whole budget never
      // stores.
      if (!error && entry.store && entry.bytes <= byte_budget_) {
        lru_.push_front(key);
        Stored stored;
        stored.value = entry.value;
        stored.bytes = entry.bytes;
        stored.lru = lru_.begin();
        entries_.emplace(key, std::move(stored));
        stats_.bytes_in_use += entry.bytes;
        evict_over_budget_locked(key);
      }
    }
    {
      const MutexLock lock(flight->mutex);
      flight->done = true;
      flight->shared = shareable;
      flight->value = entry.value;
      flight->error = error;
    }
    flight->done_cv.notify_all();
    if (error) std::rethrow_exception(error);
    return entry.value;
  }
}

CacheStats ArtifactCache::stats() const {
  const MutexLock lock(mutex_);
  CacheStats out = stats_;
  out.entries = entries_.size();
  return out;
}

void ArtifactCache::clear() {
  const MutexLock lock(mutex_);
  entries_.clear();
  lru_.clear();
  stats_.bytes_in_use = 0;
}

}  // namespace safeopt::serve
