// Fixture: the sanctioned throw forms.
#include <stdexcept>

#include "safeopt/support/error.h"

void f(bool broken, bool bad_arg) {
  using safeopt::Error;
  using safeopt::ErrorCategory;
  if (broken) throw Error(ErrorCategory::kInternal, "engine failed");
  // Precondition violations may use std::invalid_argument directly.
  if (bad_arg) throw std::invalid_argument("n must be positive");
  // Mentioning the banned type in a string is not a throw.
  log("would have been a throw std::runtime_error once");
  // Catching it is fine — only throwing is banned.
  try {
    g();
  } catch (const std::runtime_error&) {
  }
  // safeopt-lint: allow(error-taxonomy) — interop shim for external API
  throw std::runtime_error("legacy boundary");
}
