// Small string utilities shared across modules (parser diagnostics, report
// formatting). Kept deliberately minimal; anything heavier belongs in <format>
// once universally available.
#ifndef SAFEOPT_SUPPORT_STRINGS_H
#define SAFEOPT_SUPPORT_STRINGS_H

#include <string>
#include <string_view>
#include <vector>

namespace safeopt {

/// Joins `parts` with `sep` ("a", "b" -> "a, b" for sep ", ").
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// Concatenates string-like parts (std::string, string literals,
/// string_view) into one string with a single allocation. Use this instead
/// of `"literal" + std::string(...)` chains: besides saving the
/// intermediate strings, gcc 12's -Wrestrict reports a false-positive
/// overlap inside operator+(const char*, std::string&&) (GCC PR105651),
/// and routing concatenation through append() keeps -Werror viable.
template <typename... Parts>
[[nodiscard]] std::string concat(const Parts&... parts) {
  std::string out;
  out.reserve((std::string_view(parts).size() + ...));
  (out.append(std::string_view(parts)), ...);
  return out;
}

/// Strips ASCII whitespace from both ends.
[[nodiscard]] std::string_view trim(std::string_view text) noexcept;

/// Splits on a single character separator; keeps empty fields.
[[nodiscard]] std::vector<std::string> split(std::string_view text, char sep);

/// True if `text` starts with `prefix`.
[[nodiscard]] bool starts_with(std::string_view text,
                               std::string_view prefix) noexcept;

/// Formats a double with enough digits to round-trip, trimming trailing zeros
/// ("0.25", "1e-06", "19.2").
[[nodiscard]] std::string format_double(double value);

}  // namespace safeopt

#endif  // SAFEOPT_SUPPORT_STRINGS_H
