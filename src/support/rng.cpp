#include "safeopt/support/rng.h"

#include "safeopt/support/contracts.h"

namespace safeopt {

double uniform(Rng& rng, double lo, double hi) noexcept {
  SAFEOPT_EXPECTS(lo <= hi);
  return lo + (hi - lo) * uniform01(rng);
}

bool bernoulli(Rng& rng, double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01(rng) < p;
}

std::uint64_t uniform_index(Rng& rng, std::uint64_t n) noexcept {
  SAFEOPT_EXPECTS(n > 0);
  // Lemire-style rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = rng();
    if (r >= threshold) return r % n;
  }
}

}  // namespace safeopt
