// Finite-state models of the Elbtunnel height control for verification
// (paper §IV-A): "With formal verification using the SMV-tool we discovered
// a design flaw, which resulted in a possible hazard if two OHVs passed
// LBpre simultaneously. After presenting solutions to this problem, we could
// proof functional correctness for the collision hazards."
//
// Two control designs are modelled:
//   kOriginal — LBpost detection is switched off as soon as one OHV has
//               passed LBpost (the pre-fix design): with two OHVs in zone 1
//               the second one travels unprotected -> collision reachable;
//   kRevised  — LBpost stays armed for the full timer runtime (the deployed
//               design of paper Fig. 4): collision unreachable.
//
// Timers are abstracted as non-expiring: timer overtime is a *quantitative*
// failure handled by the FTA/optimization layers (cut sets {OT1}, {OT2});
// the model checker isolates the *logical* flaw, exactly as SMV did.
//
// Vehicle positions: 0 approach, 1 zone 1, 2 zone 2 (right lane),
// 3 left lane at LBpost (heading west tube), 4 inside tube 4 (safe),
// 5 inside an old tube = COLLISION, 6 stopped by emergency halt.
#ifndef SAFEOPT_MODELCHECK_HEIGHT_CONTROL_MODEL_H
#define SAFEOPT_MODELCHECK_HEIGHT_CONTROL_MODEL_H

#include "safeopt/modelcheck/transition_system.h"

namespace safeopt::modelcheck {

enum class ControlDesign {
  kOriginal,  // flawed: LBpost disarmed by the first passage
  kRevised    // fixed: LBpost armed until timer expiry
};

class HeightControlModel final : public TransitionSystem {
 public:
  /// Models `ohv_count` overhigh vehicles (1..3) approaching the northern
  /// entrance concurrently.
  HeightControlModel(ControlDesign design, int ohv_count);

  [[nodiscard]] State initial() const override;
  [[nodiscard]] std::vector<State> successors(
      const State& state) const override;
  [[nodiscard]] std::string describe(const State& state) const override;

  /// The safety invariant: no OHV inside an old tube.
  [[nodiscard]] static bool no_collision(const State& state);

  /// Runs the invariant check for this model.
  [[nodiscard]] CheckResult verify() const;

 private:
  // State layout: [pos_0, ..., pos_{n-1}, lbpost_armed, odfinal_armed].
  [[nodiscard]] int ohv_position(const State& s, int vehicle) const;
  [[nodiscard]] bool lbpost_armed(const State& s) const;
  [[nodiscard]] bool odfinal_armed(const State& s) const;

  ControlDesign design_;
  int ohv_count_;
};

}  // namespace safeopt::modelcheck

#endif  // SAFEOPT_MODELCHECK_HEIGHT_CONTROL_MODEL_H
