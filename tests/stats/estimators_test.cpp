#include "safeopt/stats/estimators.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "safeopt/stats/distribution.h"
#include "safeopt/support/rng.h"

namespace safeopt::stats {
namespace {

TEST(RunningMomentsTest, MatchesDirectComputation) {
  const std::vector<double> data{1.0, 2.0, 4.0, 8.0, 16.0};
  RunningMoments m;
  for (const double x : data) m.add(x);
  EXPECT_EQ(m.count(), data.size());
  EXPECT_DOUBLE_EQ(m.mean(), 6.2);
  // Unbiased sample variance computed by hand: Σ(x−x̄)²/(n−1) = 37.2.
  EXPECT_NEAR(m.variance(), 37.2, 1e-12);
  EXPECT_DOUBLE_EQ(m.min(), 1.0);
  EXPECT_DOUBLE_EQ(m.max(), 16.0);
}

TEST(RunningMomentsTest, IsNumericallyStableForLargeOffsets) {
  RunningMoments m;
  // Classic catastrophic-cancellation case: tiny variance on a huge mean.
  for (int i = 0; i < 10000; ++i) {
    m.add(1e9 + (i % 2 == 0 ? 0.5 : -0.5));
  }
  EXPECT_NEAR(m.mean(), 1e9, 1e-3);
  // Unbiased estimator: 0.25·n/(n−1); the point is no catastrophic
  // cancellation, so demand it to near machine precision.
  EXPECT_NEAR(m.variance(), 0.25 * 10000.0 / 9999.0, 1e-9);
}

TEST(RunningMomentsTest, MergeEqualsSequential) {
  Rng rng(42);
  RunningMoments all;
  RunningMoments left;
  RunningMoments right;
  for (int i = 0; i < 1000; ++i) {
    const double x = uniform(rng, -5.0, 5.0);
    all.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningMomentsTest, MergeWithEmptyIsIdentity) {
  RunningMoments a;
  a.add(1.0);
  a.add(3.0);
  RunningMoments empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(RunningMomentsTest, ConfidenceIntervalContainsTrueMean) {
  // 95% CI should cover the true mean in roughly 95% of repetitions.
  Rng rng(7);
  int covered = 0;
  constexpr int kRepetitions = 400;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    RunningMoments m;
    for (int i = 0; i < 200; ++i) m.add(uniform(rng, 0.0, 1.0));
    if (m.mean_confidence(0.95).contains(0.5)) ++covered;
  }
  EXPECT_GT(covered, kRepetitions * 0.90);
  EXPECT_LT(covered, kRepetitions * 0.99);
}

TEST(ProportionEstimatorTest, PointEstimate) {
  ProportionEstimator p;
  for (int i = 0; i < 30; ++i) p.add(i < 12);
  EXPECT_EQ(p.trials(), 30u);
  EXPECT_EQ(p.successes(), 12u);
  EXPECT_DOUBLE_EQ(p.estimate(), 0.4);
}

TEST(ProportionEstimatorTest, WilsonIsSaneAtZeroSuccesses) {
  ProportionEstimator p;
  for (int i = 0; i < 100; ++i) p.add(false);
  const auto ci = p.wilson(0.95);
  EXPECT_DOUBLE_EQ(ci.lo, 0.0);
  EXPECT_GT(ci.hi, 0.0);   // still admits a small positive probability
  EXPECT_LT(ci.hi, 0.05);  // ... but a bounded one
  // Wald collapses to a zero-width interval here — the known pathology.
  EXPECT_DOUBLE_EQ(p.wald(0.95).width(), 0.0);
}

TEST(ProportionEstimatorTest, WilsonNarrowerThanWaldNearHalfIsFalse) {
  // Near p = 0.5 with large n the two intervals nearly coincide.
  ProportionEstimator p;
  for (int i = 0; i < 10000; ++i) p.add(i % 2 == 0);
  EXPECT_NEAR(p.wilson().width(), p.wald().width(), 1e-4);
}

TEST(ProportionEstimatorTest, WilsonCoverage) {
  Rng rng(13);
  constexpr double kTrueP = 0.03;  // rare events, the FTA regime
  int covered = 0;
  constexpr int kRepetitions = 300;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    ProportionEstimator p;
    for (int i = 0; i < 500; ++i) p.add(bernoulli(rng, kTrueP));
    if (p.wilson(0.95).contains(kTrueP)) ++covered;
  }
  EXPECT_GT(covered, kRepetitions * 0.90);
}

TEST(KsStatisticTest, PerfectSampleHasSmallStatistic) {
  // Quantile-spaced points are the best possible 'sample'.
  const Uniform u(0.0, 1.0);
  std::vector<double> sample;
  constexpr int n = 1000;
  for (int i = 0; i < n; ++i) {
    sample.push_back((i + 0.5) / n);
  }
  EXPECT_LT(ks_statistic(sample, u), 1.0 / n);
}

TEST(KsStatisticTest, WrongDistributionIsDetected) {
  const Normal standard(0.0, 1.0);
  const Normal shifted(1.0, 1.0);
  Rng rng(3);
  std::vector<double> sample(5000);
  for (double& x : sample) x = shifted.sample(rng);
  EXPECT_GT(ks_statistic(sample, standard),
            ks_critical_value_1pct(sample.size()));
}

TEST(ConfidenceIntervalTest, ContainsAndWidth) {
  const ConfidenceInterval ci{0.2, 0.6};
  EXPECT_TRUE(ci.contains(0.2));
  EXPECT_TRUE(ci.contains(0.4));
  EXPECT_TRUE(ci.contains(0.6));
  EXPECT_FALSE(ci.contains(0.61));
  EXPECT_DOUBLE_EQ(ci.width(), 0.4);
}

}  // namespace
}  // namespace safeopt::stats
