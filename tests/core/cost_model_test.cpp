#include "safeopt/core/cost_model.h"

#include <gtest/gtest.h>

#include <cmath>

namespace safeopt::core {
namespace {

using expr::constant;
using expr::parameter;

CostModel two_hazards() {
  CostModel model;
  // The paper's Eq. 5 with the Elbtunnel weights: collisions cost 100000
  // false alarms.
  model.add_hazard({"HCol", constant(2e-8) + 0.01 * parameter("x"), 100000.0});
  model.add_hazard({"HAlr", 0.5 * parameter("y"), 1.0});
  return model;
}

TEST(CostModelTest, HazardAccess) {
  const CostModel model = two_hazards();
  EXPECT_EQ(model.hazard_count(), 2u);
  EXPECT_EQ(model.hazard(0).name, "HCol");
  EXPECT_DOUBLE_EQ(model.hazard(0).cost, 100000.0);
  EXPECT_EQ(model.hazard_by_name("HAlr").name, "HAlr");
}

TEST(CostModelTest, CostIsWeightedSumOfHazardProbabilities) {
  const CostModel model = two_hazards();
  const expr::ParameterAssignment env{{"x", 0.001}, {"y", 0.01}};
  // Eq. 5: f_cost = Σ Cost_Hi · P(Hi).
  const double expected =
      100000.0 * (2e-8 + 0.01 * 0.001) + 1.0 * (0.5 * 0.01);
  EXPECT_NEAR(model.cost(env), expected, 1e-12);
}

TEST(CostModelTest, HazardProbabilitiesInOrder) {
  const CostModel model = two_hazards();
  const expr::ParameterAssignment env{{"x", 0.002}, {"y", 0.2}};
  const auto probs = model.hazard_probabilities(env);
  ASSERT_EQ(probs.size(), 2u);
  EXPECT_NEAR(probs[0], 2e-8 + 2e-5, 1e-15);
  EXPECT_NEAR(probs[1], 0.1, 1e-15);
}

TEST(CostModelTest, CostExpressionIsSymbolic) {
  const CostModel model = two_hazards();
  const auto params = model.cost_expression().parameters();
  EXPECT_TRUE(params.contains("x"));
  EXPECT_TRUE(params.contains("y"));
}

TEST(CostModelTest, ZeroCostHazardContributesNothing) {
  CostModel model;
  model.add_hazard({"free", parameter("x"), 0.0});
  model.add_hazard({"paid", parameter("x"), 2.0});
  EXPECT_NEAR(model.cost({{"x", 0.25}}), 0.5, 1e-15);
}

TEST(CostModelDeathTest, RejectsDuplicateHazardNames) {
  CostModel model;
  model.add_hazard({"H", constant(0.0), 1.0});
  EXPECT_DEATH(model.add_hazard({"H", constant(0.0), 1.0}), "precondition");
}

TEST(CostModelDeathTest, RejectsNegativeCost) {
  CostModel model;
  EXPECT_DEATH(model.add_hazard({"H", constant(0.0), -1.0}), "precondition");
}

TEST(CostModelDeathTest, CostExpressionNeedsAtLeastOneHazard) {
  const CostModel model;
  EXPECT_DEATH((void)model.cost_expression(), "precondition");
}

}  // namespace
}  // namespace safeopt::core
