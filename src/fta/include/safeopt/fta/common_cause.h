// Common-cause failure (CCF) modelling with the beta-factor method.
//
// The paper's quantification assumes pairwise-independent primary failures
// and notes (§II-C) that correlated failures need "another approach like
// common cause analysis". The beta-factor model is that standard approach:
// for a group of components exposed to a shared cause (same supply, same
// maintenance crew, same design), a fraction β of each member's failure
// probability is attributed to a single shared *common-cause event* that
// fails all members at once, and only (1−β)·p remains independent.
//
// `apply_beta_factor` rewrites a fault tree accordingly: every group member
// leaf e is replaced by OR(e_independent, group_ccf), producing an ordinary
// coherent tree that the whole MOCUS/BDD/optimization stack quantifies
// unchanged — redundancy credit (e.g. 1-of-2 pump trains) is properly
// destroyed by the shared event.
#ifndef SAFEOPT_FTA_COMMON_CAUSE_H
#define SAFEOPT_FTA_COMMON_CAUSE_H

#include <string>
#include <vector>

#include "safeopt/fta/fault_tree.h"
#include "safeopt/fta/probability.h"

namespace safeopt::fta {

/// One common-cause group: member basic events (by name) and the beta
/// fraction of their failure probability attributed to the shared cause.
struct CommonCauseGroup {
  std::string name;                   // e.g. "pump_ccf"
  std::vector<std::string> members;   // >= 2 basic-event names
  double beta = 0.1;                  // 0 < beta <= 1
};

/// A beta-factor-expanded model: the rewritten tree plus the probabilities
/// transformed consistently with the input point estimates.
struct CommonCauseModel {
  FaultTree tree;
  QuantificationInput probabilities;
};

/// Rewrites `tree` for the given groups:
///   * each member leaf keeps its name but carries the independent part
///     (1 − β)·p of its original probability;
///   * per group one new basic event `<group>.ccf` is added with
///     probability β·min over members' p (the conservative symmetric choice
///     when members differ), OR-ed into every member's position.
/// Preconditions: every member names a distinct basic event of `tree`;
/// groups are disjoint; 0 < beta <= 1.
[[nodiscard]] CommonCauseModel apply_beta_factor(
    const FaultTree& tree, const QuantificationInput& probabilities,
    const std::vector<CommonCauseGroup>& groups);

}  // namespace safeopt::fta

#endif  // SAFEOPT_FTA_COMMON_CAUSE_H
