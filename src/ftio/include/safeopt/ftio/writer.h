// Serialization of fault trees: the textual dialect of parser.h (round-trip
// guaranteed), GraphViz DOT (the shapes follow the paper's Fig. 1 symbol
// conventions: gates as houses/triangles, primary failures as circles,
// conditions as ellipses), and a JSON rendering for external tooling.
#ifndef SAFEOPT_FTIO_WRITER_H
#define SAFEOPT_FTIO_WRITER_H

#include <string>

#include "safeopt/fta/fault_tree.h"
#include "safeopt/fta/probability.h"

namespace safeopt::ftio {

/// Writes the parser.h dialect. parse_fault_tree(write_fault_tree(t, q))
/// reproduces the same structure and probabilities.
/// Precondition: tree.has_top().
[[nodiscard]] std::string write_fault_tree(
    const fta::FaultTree& tree, const fta::QuantificationInput& probabilities);

/// GraphViz DOT export (dot -Tsvg renders the tree, paper Fig. 2 style).
/// Probabilities, if provided, are included in the leaf labels.
[[nodiscard]] std::string to_dot(
    const fta::FaultTree& tree,
    const fta::QuantificationInput* probabilities = nullptr);

/// JSON export: {"name": ..., "toplevel": ..., "nodes": [...]}.
[[nodiscard]] std::string to_json(
    const fta::FaultTree& tree, const fta::QuantificationInput& probabilities);

}  // namespace safeopt::ftio

#endif  // SAFEOPT_FTIO_WRITER_H
