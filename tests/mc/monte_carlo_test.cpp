#include "safeopt/mc/monte_carlo.h"

#include <gtest/gtest.h>

#include <cmath>

#include "../testutil/random_tree.h"
#include "safeopt/bdd/bdd.h"

namespace safeopt::mc {
namespace {

fta::FaultTree simple_or() {
  fta::FaultTree tree("or");
  const auto a = tree.add_basic_event("a");
  const auto b = tree.add_basic_event("b");
  tree.set_top(tree.add_or("top", {a, b}));
  return tree;
}

TEST(MonteCarloTest, EstimatesSimpleOrProbability) {
  const fta::FaultTree tree = simple_or();
  fta::QuantificationInput input = fta::QuantificationInput::for_tree(tree, 0.0);
  input.set(tree, "a", 0.1);
  input.set(tree, "b", 0.2);
  const MonteCarloResult result =
      estimate_hazard_probability(tree, input, 200000);
  // Exact: 0.1 + 0.2 − 0.02 = 0.28.
  EXPECT_TRUE(result.consistent_with(0.28))
      << result.estimate << " CI [" << result.ci95.lo << ", "
      << result.ci95.hi << "]";
  EXPECT_EQ(result.trials, 200000u);
  EXPECT_NEAR(result.estimate, 0.28, 0.01);
}

TEST(MonteCarloTest, IsDeterministicPerSeed) {
  const fta::FaultTree tree = simple_or();
  fta::QuantificationInput input =
      fta::QuantificationInput::for_tree(tree, 0.15);
  const auto r1 = estimate_hazard_probability(tree, input, 10000, 42);
  const auto r2 = estimate_hazard_probability(tree, input, 10000, 42);
  EXPECT_EQ(r1.occurrences, r2.occurrences);
  const auto r3 = estimate_hazard_probability(tree, input, 10000, 43);
  EXPECT_NE(r1.occurrences, r3.occurrences);
}

TEST(MonteCarloTest, ZeroProbabilityNeverFires) {
  const fta::FaultTree tree = simple_or();
  const fta::QuantificationInput input =
      fta::QuantificationInput::for_tree(tree, 0.0);
  const auto result = estimate_hazard_probability(tree, input, 10000);
  EXPECT_EQ(result.occurrences, 0u);
  EXPECT_DOUBLE_EQ(result.estimate, 0.0);
  // Wilson still gives a meaningful (non-degenerate) upper bound.
  EXPECT_GT(result.ci95.hi, 0.0);
}

TEST(MonteCarloTest, CertainHazardAlwaysFires) {
  const fta::FaultTree tree = simple_or();
  const fta::QuantificationInput input =
      fta::QuantificationInput::for_tree(tree, 1.0);
  const auto result = estimate_hazard_probability(tree, input, 1000);
  EXPECT_EQ(result.occurrences, 1000u);
}

TEST(MonteCarloTest, ConditionsSampleAsBernoulli) {
  fta::FaultTree tree("inh");
  const auto pf = tree.add_basic_event("pf");
  const auto env = tree.add_condition("env");
  tree.set_top(tree.add_inhibit("top", pf, env));
  fta::QuantificationInput input = fta::QuantificationInput::for_tree(tree, 0.0);
  input.set(tree, "pf", 0.4);
  input.set(tree, "env", 0.5);
  const auto result = estimate_hazard_probability(tree, input, 200000);
  EXPECT_TRUE(result.consistent_with(0.2));
}

TEST(MonteCarloTest, EstimateUntilReachesRequestedPrecision) {
  const fta::FaultTree tree = simple_or();
  fta::QuantificationInput input =
      fta::QuantificationInput::for_tree(tree, 0.0);
  input.set(tree, "a", 0.3);
  input.set(tree, "b", 0.1);
  const auto result = estimate_until(tree, input, 0.05, 10'000'000);
  const double halfwidth = 0.5 * result.ci95.width();
  EXPECT_LE(halfwidth, 0.05 * result.estimate * 1.05);
  EXPECT_LT(result.trials, 10'000'000u);  // stopped early
}

TEST(MonteCarloTest, EstimateUntilStopsAtBudget) {
  const fta::FaultTree tree = simple_or();
  fta::QuantificationInput input =
      fta::QuantificationInput::for_tree(tree, 1e-7);
  // Precision unreachable in 20k trials for a ~2e-7 event.
  const auto result = estimate_until(tree, input, 0.01, 20000);
  EXPECT_EQ(result.trials, 20000u);
}

class MonteCarloVsExact : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MonteCarloVsExact, EstimateWithinFiveSigmaOfExactBdd) {
  const fta::FaultTree tree = testutil::random_tree(
      GetParam(), {.basic_events = 7, .conditions = 1, .gates = 6});
  const fta::QuantificationInput input =
      testutil::random_probabilities(tree, GetParam(), 0.05, 0.4);
  bdd::CompiledFaultTree compiled = bdd::compile(tree);
  const double exact = compiled.probability(input);
  constexpr std::uint64_t kTrials = 60000;
  const auto result =
      estimate_hazard_probability(tree, input, kTrials, GetParam() * 7 + 1);
  // 5-sigma band: per-seed false-failure probability ~6e-7, so the sweep
  // over all seeds stays deterministic-for-practical-purposes.
  const double sigma =
      std::sqrt(exact * (1.0 - exact) / static_cast<double>(kTrials));
  EXPECT_NEAR(result.estimate, exact, 5.0 * sigma + 1e-9)
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, MonteCarloVsExact,
                         ::testing::Range<std::uint64_t>(0, 20));

}  // namespace
}  // namespace safeopt::mc
