#include "safeopt/core/sensitivity.h"

#include "safeopt/support/contracts.h"

namespace safeopt::core {

std::vector<ParameterSensitivity> sensitivity_analysis(
    const CostModel& model, const ParameterSpace& space,
    const expr::ParameterAssignment& at) {
  SAFEOPT_EXPECTS(space.size() >= 1);
  const std::vector<std::string> names = space.names();

  const expr::Dual cost = model.cost_expression().evaluate_dual(at, names);
  std::vector<expr::Dual> hazard_duals;
  hazard_duals.reserve(model.hazard_count());
  for (const Hazard& h : model.hazards()) {
    hazard_duals.push_back(h.probability.evaluate_dual(at, names));
  }

  std::vector<ParameterSensitivity> out;
  out.reserve(space.size());
  for (std::size_t j = 0; j < space.size(); ++j) {
    ParameterSensitivity s;
    s.parameter = names[j];
    s.cost_gradient = cost.grad(j);
    const double x_j = at.get(names[j]);
    s.cost_elasticity =
        cost.value() != 0.0 ? s.cost_gradient * x_j / cost.value() : 0.0;
    s.hazard_gradients.reserve(hazard_duals.size());
    for (const expr::Dual& hd : hazard_duals) {
      s.hazard_gradients.push_back(hd.grad(j));
    }
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace safeopt::core
