// Safety optimization (paper §III): "choose the free parameters X_1..X_l
// such that the cost function is minimized". Glues the symbolic cost model
// to the numeric solvers of src/opt; the exact autodiff gradient of the cost
// expression is handed to gradient-based methods.
//
// Solvers are selected by registry name (opt::SolverRegistry) — prefer the
// fluent core::Study front door (study.h) for new code. The `Algorithm`
// enum below survives as a deprecated shim: each value maps onto a registry
// name + SolverConfig and produces bit-identical results to the historic
// enum-switch dispatch.
#ifndef SAFEOPT_CORE_SAFETY_OPTIMIZER_H
#define SAFEOPT_CORE_SAFETY_OPTIMIZER_H

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "safeopt/core/cost_model.h"
#include "safeopt/core/parameter_space.h"
#include "safeopt/opt/problem.h"
#include "safeopt/opt/solver.h"

namespace safeopt::core {

/// Deprecated: solver selection by closed enum. Prefer registry names
/// ("nelder_mead", "multi_start", ... — opt::SolverRegistry::available());
/// the enum cannot reach registered extensions (or even golden_section).
/// Kept as a shim so existing call sites compile unchanged.
enum class Algorithm {
  kGridSearch,
  kNelderMead,
  kMultiStartNelderMead,
  kGradientDescent,
  kHookeJeeves,
  kCoordinateDescent,
  kSimulatedAnnealing,
  kDifferentialEvolution,
};

[[nodiscard]] std::string_view to_string(Algorithm algorithm) noexcept;

/// Parses either a to_string(Algorithm) display name ("MultiStart(
/// NelderMead)") or the equivalent registry name ("multi_start") back into
/// the enum; nullopt for anything else. Lets examples and benches take the
/// solver from argv. Registry names without an enum equivalent (e.g.
/// "golden_section") parse as nullopt — pass those to Study::solver /
/// SafetyOptimizer::optimize(name) directly.
[[nodiscard]] std::optional<Algorithm> parse_algorithm(
    std::string_view name) noexcept;

/// The registry name each enum value dispatches to.
[[nodiscard]] std::string_view algorithm_registry_name(
    Algorithm algorithm) noexcept;

/// The SolverConfig reproducing the historic enum-switch construction for
/// `algorithm` (e.g. grid_search with 33 points x 5 rounds). Solving with
/// algorithm_registry_name(a) under this config is bit-identical to the
/// legacy enum path.
[[nodiscard]] opt::SolverConfig algorithm_solver_config(Algorithm algorithm);

/// A solver choice resolved from user input (argv, config files).
struct SolverSelection {
  std::string name;          // registry name
  opt::SolverConfig config;  // legacy-equivalent knobs where applicable
};

/// Resolves a user-facing solver argument — a legacy display name
/// ("MultiStart(NelderMead)") or any registry name — to the registry name
/// plus the config reproducing the legacy defaults for enum-equivalent
/// names. nullopt when the argument matches neither; callers print
/// opt::SolverRegistry::available() in their error message.
[[nodiscard]] std::optional<SolverSelection> resolve_solver(
    std::string_view argument);

/// Result of a safety optimization run: the solver outcome plus the
/// safety-level interpretation (per-hazard probabilities at the optimum).
struct SafetyOptimizationResult {
  opt::OptimizationResult optimization;
  expr::ParameterAssignment optimal_parameters;
  std::vector<double> hazard_probabilities;  // hazard order of the CostModel
  double cost = 0.0;                         // == optimization.value
};

/// Per-hazard baseline-vs-optimum comparison; `relative_change` is
/// (optimal − baseline) / baseline (e.g. −0.10 == 10% risk reduction).
struct HazardComparison {
  std::string hazard;
  double baseline_probability = 0.0;
  double optimal_probability = 0.0;
  double relative_change = 0.0;
};

struct ComparisonReport {
  double baseline_cost = 0.0;
  double optimal_cost = 0.0;
  double cost_relative_change = 0.0;
  std::vector<HazardComparison> hazards;
};

/// The classic optimization entry point. New code should prefer core::Study,
/// which wraps this machinery behind a fluent builder and adds engine-backed
/// quantification; SafetyOptimizer remains the shared implementation.
class SafetyOptimizer {
 public:
  /// The cost model's expressions may only mention parameters of `space`.
  SafetyOptimizer(CostModel model, ParameterSpace space);

  /// Minimizes f_cost over the parameter box with the named registry solver.
  /// Throws std::invalid_argument for unknown names or solver/problem
  /// mismatches (e.g. golden_section on a multi-dimensional box).
  [[nodiscard]] SafetyOptimizationResult optimize(
      std::string_view solver, const opt::SolverConfig& config = {}) const;

  /// Deprecated: enum shim over the registry path. Equivalent to
  /// optimize(algorithm_registry_name(a), algorithm_solver_config(a)) and
  /// bit-identical to the historic enum-switch dispatch.
  [[nodiscard]] SafetyOptimizationResult optimize(
      Algorithm algorithm = Algorithm::kMultiStartNelderMead) const;

  /// Evaluates cost and hazard probabilities at a given configuration
  /// (e.g. the engineers' initial guess).
  [[nodiscard]] SafetyOptimizationResult evaluate_at(
      const expr::ParameterAssignment& configuration) const;

  /// Compares a baseline configuration against an optimization result —
  /// the paper's §IV-C.2 reporting (risk improvement per hazard).
  [[nodiscard]] ComparisonReport compare(
      const expr::ParameterAssignment& baseline,
      const SafetyOptimizationResult& optimal) const;

  /// The underlying numeric problem (objective + box + exact gradient);
  /// exposed for benches and custom solvers. Compiled lazily exactly once
  /// per optimizer — every optimize()/run() call reuses the same tape —
  /// and shared by copies. Thread-safe. The reference is valid while this
  /// optimizer (or a copy) is alive; take a copy of the Problem (cheap, it
  /// shares the tape) to outlive it. On temporaries
  /// (model.optimizer().problem()) the rvalue overload hands out that copy
  /// directly, so the reference-binding pattern cannot dangle.
  [[nodiscard]] const opt::Problem& problem() const&;
  [[nodiscard]] opt::Problem problem() const&&;

  [[nodiscard]] const CostModel& model() const noexcept { return model_; }
  [[nodiscard]] const ParameterSpace& space() const noexcept { return space_; }

 private:
  /// Lazily-built compiled problem, shared across copies (the tape is
  /// immutable once built).
  struct ProblemCache;

  CostModel model_;
  ParameterSpace space_;
  std::shared_ptr<ProblemCache> cache_;
};

}  // namespace safeopt::core

#endif  // SAFEOPT_CORE_SAFETY_OPTIMIZER_H
