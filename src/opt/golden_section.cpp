#include "safeopt/opt/golden_section.h"

#include "builtin_solvers.h"

#include <cmath>

#include "safeopt/support/contracts.h"

namespace safeopt::opt {

GoldenSection::GoldenSection(StoppingCriteria stopping)
    : stopping_(stopping) {}

OptimizationResult GoldenSection::minimize(const Problem& problem) const {
  SAFEOPT_EXPECTS(problem.bounds.dimension() == 1);
  constexpr double kInvPhi = 0.6180339887498948482;  // 1/φ
  double a = problem.bounds.lower[0];
  double b = problem.bounds.upper[0];
  OptimizationResult result;

  const auto eval = [&](double x) {
    const double v = problem.objective(std::vector<double>{x});
    ++result.evaluations;
    return v;
  };

  double c = b - kInvPhi * (b - a);
  double d = a + kInvPhi * (b - a);
  double fc = eval(c);
  double fd = eval(d);

  while (result.iterations < stopping_.max_iterations &&
         std::abs(b - a) > stopping_.tolerance) {
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - kInvPhi * (b - a);
      fc = eval(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + kInvPhi * (b - a);
      fd = eval(d);
    }
    ++result.iterations;
  }

  const double x = 0.5 * (a + b);
  result.argmin = {x};
  result.value = eval(x);
  result.converged = std::abs(b - a) <= stopping_.tolerance;
  result.message = result.converged ? "interval collapsed below tolerance"
                                    : "iteration budget exhausted";
  return result;
}

// ---- registry adapter -------------------------------------------------------

namespace {

/// 1-D only (traits().max_dimension == 1): Solver::solve rejects
/// multi-dimensional boxes with std::invalid_argument before running, since
/// the golden-section bracketing argument only exists on an interval.
class GoldenSectionSolver final : public Solver {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "golden_section";
  }
  [[nodiscard]] SolverTraits traits() const noexcept override {
    return SolverTraits{.max_dimension = 1, .stochastic = false};
  }

 private:
  [[nodiscard]] OptimizationResult run(
      const Problem& problem, const SolverConfig& config) const override {
    return GoldenSection(config.stopping()).minimize(problem);
  }
};

}  // namespace

std::unique_ptr<Solver> detail::make_golden_section_solver() {
  return std::make_unique<GoldenSectionSolver>();
}

}  // namespace safeopt::opt
