// The full Elbtunnel case study (paper §IV), end to end:
//   1. evaluate the engineers' initial 30/30-minute configuration,
//   2. optimize the timer runtimes against the 100000:1 cost function,
//   3. compare risks before/after (§IV-C.2),
//   4. run the sensitivity analysis at the optimum,
//   5. sweep the "OHV present" environment to expose the ODfinal design
//      flaw and evaluate both fixes (Fig. 6 methodology).
#include <cstdio>

#include "safeopt/core/environment_sweep.h"
#include "safeopt/core/sensitivity.h"
#include "safeopt/elbtunnel/elbtunnel_model.h"

int main() {
  using namespace safeopt;
  const elbtunnel::ElbtunnelModel model;

  // 1. The engineers' guess.
  const core::SafetyOptimizer optimizer = model.optimizer();
  const auto baseline = optimizer.evaluate_at(model.engineers_guess());
  std::printf("engineers' configuration: T1 = T2 = 30 min\n");
  std::printf("  P(HCol) = %.4e, P(HAlr) = %.4e, cost = %.7f\n\n",
              baseline.hazard_probabilities[0],
              baseline.hazard_probabilities[1], baseline.cost);

  // 2. Safety optimization (paper §III).
  const auto optimal =
      optimizer.optimize(core::Algorithm::kMultiStartNelderMead);
  std::printf("optimized configuration (%s, %zu evaluations):\n",
              optimal.optimization.message.c_str(),
              optimal.optimization.evaluations);
  std::printf("  T1* = %.2f min, T2* = %.2f min, cost = %.7f\n",
              optimal.optimization.argmin[0], optimal.optimization.argmin[1],
              optimal.cost);
  std::printf("  (paper: approximately 19 resp. 15.6 minutes)\n\n");

  // 3. Risk comparison (§IV-C.2's reported improvements).
  const auto report = optimizer.compare(model.engineers_guess(), optimal);
  for (const auto& hazard : report.hazards) {
    std::printf("  %-5s %.6e -> %.6e  (%+.3f%%)\n", hazard.hazard.c_str(),
                hazard.baseline_probability, hazard.optimal_probability,
                100.0 * hazard.relative_change);
  }
  std::printf("  total mean cost %.7f -> %.7f (%+.2f%%)\n\n",
              report.baseline_cost, report.optimal_cost,
              100.0 * report.cost_relative_change);

  // 4. Sensitivity at the optimum: which timer is critical?
  std::printf("sensitivity at the optimum:\n");
  for (const auto& s : core::sensitivity_analysis(
           model.cost_model(), model.parameter_space(),
           optimal.optimal_parameters)) {
    std::printf("  d(cost)/d%s = %+.3e (elasticity %+.3e)\n",
                s.parameter.c_str(), s.cost_gradient, s.cost_elasticity);
  }

  // 5. The Fig. 6 environment study: how does the design behave when an
  // OHV is actually present in the controlled area?
  std::printf("\nP(false alarm | correct OHV present), by design:\n");
  const core::SweepTable sweep = core::sweep_parameter(
      "T2", 5.0, 25.0, 9, {},
      {{"baseline", model.false_alarm_given_ohv(elbtunnel::Design::kBaseline)},
       {"with_LB4", model.false_alarm_given_ohv(elbtunnel::Design::kWithLB4)},
       {"LB_at_ODfinal",
        model.false_alarm_given_ohv(
            elbtunnel::Design::kLightBarrierAtODfinal)}});
  std::printf("%s", sweep.to_csv().c_str());
  std::printf(
      "\nconclusion: even at the optimized T2, %.0f%% of correctly driving\n"
      "OHVs trigger an alarm in the deployed design — the flaw the paper\n"
      "reports. The LB4 fix cuts it to %.0f%%, a barrier at ODfinal to "
      "%.0f%%.\n",
      100.0 * sweep.values[0][4], 100.0 * sweep.values[1][4],
      100.0 * sweep.values[2][4]);
  return 0;
}
