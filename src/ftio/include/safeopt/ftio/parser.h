// Text format for fault trees — a Galileo-style dialect with INHIBIT
// conditions and probabilities, so models can live in version control next
// to the code that analyzes them. Example (the paper's Fig. 2 fragment):
//
//   # Elbtunnel collision tree (paper Fig. 2)
//   tree Collision;
//   toplevel Collision_top;
//   Collision_top or OHVIgnoresSignal SignalNotOn;
//   SignalNotOn    or SignalOutOfOrder SignalNotActivated;
//   Armed          inhibit SignalNotActivated OHVPresent;  # cause condition
//   OHVIgnoresSignal  prob = 1e-3;
//   SignalOutOfOrder  prob = 1e-4;
//   SignalNotActivated prob = 5e-4;
//   OHVPresent condition prob = 0.2;
//
// Statements end with ';'. Gate kinds: or, and, xor, inhibit (exactly two
// operands: cause then condition), and k-of-n votes written "2of3".
// Leaves are declared by "<name> prob = <p>;" (basic event) or
// "<name> condition prob = <p>;" (INHIBIT condition). '#' starts a comment.
//
// The parser reports errors with line:column positions; the writer
// round-trips: parse(write(t)) reproduces t.
#ifndef SAFEOPT_FTIO_PARSER_H
#define SAFEOPT_FTIO_PARSER_H

#include <stdexcept>
#include <string>
#include <string_view>

#include "safeopt/fta/fault_tree.h"
#include "safeopt/fta/probability.h"

namespace safeopt::ftio {

/// Parse failure: message includes "line:column: ..." context — prefixed
/// with the source file name ("models/a.ft:12:3: ...") when the document
/// was loaded from a path.
class ParseError : public std::runtime_error {
 public:
  ParseError(std::size_t line, std::size_t column, const std::string& what);
  ParseError(std::string_view file, std::size_t line, std::size_t column,
             const std::string& what);

  /// The source file name; empty for in-memory text.
  [[nodiscard]] const std::string& file() const noexcept { return file_; }
  [[nodiscard]] std::size_t line() const noexcept { return line_; }
  [[nodiscard]] std::size_t column() const noexcept { return column_; }

 private:
  std::string file_;
  std::size_t line_;
  std::size_t column_;
};

/// A parsed model: the structure plus the declared probabilities.
struct ParsedFaultTree {
  fta::FaultTree tree;
  fta::QuantificationInput probabilities;
};

/// Parses the textual format described above. Throws ParseError on any
/// lexical, syntactic, or semantic problem (unknown node, duplicate
/// definition, cycle, missing toplevel, ...).
[[nodiscard]] ParsedFaultTree parse_fault_tree(std::string_view text);

}  // namespace safeopt::ftio

#endif  // SAFEOPT_FTIO_PARSER_H
