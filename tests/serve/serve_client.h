// Shared helpers for the serve test suite: a tiny blocking HTTP/1.1 client
// (the test-side mirror of src/serve/http.cpp) and the two in-memory study
// documents the tests quantify. Kept header-only; the CMake glob only picks
// up *_test.cpp files.
#ifndef SAFEOPT_TESTS_SERVE_SERVE_CLIENT_H
#define SAFEOPT_TESTS_SERVE_SERVE_CLIENT_H

#include <cstdint>
#include <string>
#include <string_view>

#include "safeopt/support/net.h"
#include "safeopt/support/strings.h"

namespace safeopt::serve::tstu {

/// A small parameterized study: one free parameter, two hazards, fast to
/// compile and quantify, so e2e tests measure the service and not the math.
inline constexpr std::string_view kParamDoc = R"(
param X in [0.1, 0.9] desc "component failure probability";

tree Main;
toplevel Top;
Top or A B;
A prob = X;
B prob = 0.01;

tree Side;
toplevel S;
S and C D;
C prob = X;
D prob = 0.05;

hazard Main cost = 1000;
hazard Side cost = 50;
solver multi_start starts = 2 inner = nelder_mead;
engine fta;
formula rare_event;
)";

/// A constant (parameter-free) study — exercises the quantify:const pass.
inline constexpr std::string_view kConstDoc = R"(
tree Plant;
toplevel T;
T and A B;
A prob = 0.1;
B prob = 0.2;
hazard Plant cost = 10;
engine fta;
formula rare_event;
)";

struct HttpReply {
  int status = 0;
  std::string body;
  std::string raw;
};

/// One-shot HTTP exchange against 127.0.0.1:`port`. Sends the request,
/// reads to EOF (the server always answers Connection: close), splits the
/// status line and body.
inline HttpReply http_request(std::uint16_t port, std::string_view method,
                              std::string_view target, std::string_view body,
                              std::string_view extra_headers = "") {
  TcpSocket socket = TcpSocket::connect_loopback(port);
  socket.write_all(concat(method, " ", target, " HTTP/1.1\r\n",
                          "Host: 127.0.0.1\r\nContent-Length: ",
                          std::to_string(body.size()), "\r\n", extra_headers,
                          "\r\n", body));
  HttpReply reply;
  char chunk[4096];
  while (true) {
    const std::size_t n = socket.read_some(chunk, sizeof(chunk));
    if (n == 0) break;
    reply.raw.append(chunk, n);
  }
  const std::size_t space = reply.raw.find(' ');
  if (space != std::string::npos) {
    reply.status = std::stoi(reply.raw.substr(space + 1));
  }
  const std::size_t header_end = reply.raw.find("\r\n\r\n");
  if (header_end != std::string::npos) {
    reply.body = reply.raw.substr(header_end + 4);
  }
  return reply;
}

/// JSON-escapes only what the test documents contain (newlines, quotes).
inline std::string json_document(std::string_view text) {
  std::string out = "\"";
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  out += '"';
  return out;
}

}  // namespace safeopt::serve::tstu

#endif  // SAFEOPT_TESTS_SERVE_SERVE_CLIENT_H
