// canonical_hash: the artifact-cache identity of a study document.
// Property under test: hashing is invariant under everything parse_study
// normalizes away (whitespace, comments, source name, statement spacing)
// and sensitive to everything semantic (bounds, probabilities, gate
// structure, solver options).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "safeopt/ftio/study_document.h"

namespace safeopt::ftio {
namespace {

constexpr std::string_view kBaseText = R"(
param T1 in [5, 40] unit "min" desc "runtime of timer 1";
param T2 in [5, 40] unit "min";

tree HCol;
toplevel Collision;
Collision or Other OT1c OT2c;
OT1c inhibit OT1 OHV;
OT2c inhibit OT2 OHV;
Other prob = 4.19e-08;
OT1 prob = survival[TruncatedNormal(4, 2, [0, inf])](T1);
OT2 prob = survival[TruncatedNormal(4, 2, [0, inf])](T2);
OHV condition prob = 0.011;

hazard HCol cost = 100000;
solver multi_start starts = 4 inner = nelder_mead;
engine fta;
formula rare_event;
)";

/// The same document re-serialized with gratuitous formatting noise: tabs,
/// comments, blank lines, and different number spellings that parse to the
/// same value.
constexpr std::string_view kNoisyText = R"(
# Elbtunnel height control — formatting-noise variant.
  param T1 in [ 5.0 , 40.0 ]   unit "min"   desc "runtime of timer 1" ;
param T2 in [5,40] unit "min";
tree HCol;    # one tree
	toplevel Collision;
Collision or Other OT1c OT2c;   # top gate
OT1c inhibit OT1 OHV;
OT2c inhibit OT2 OHV;
Other prob = 41.9e-09;
OT1 prob = survival[TruncatedNormal(4.0, 2.0, [0, inf])](T1);
OT2 prob = survival[TruncatedNormal(4, 2, [0.0, inf])](T2);

OHV condition prob = 1.1e-2;
hazard HCol cost = 1e5;
solver multi_start starts=4 inner=nelder_mead;
engine fta;
formula rare_event;
)";

TEST(CanonicalHash, InvariantUnderWhitespaceAndComments) {
  const StudyDocument base = parse_study(kBaseText, "base.ft");
  const StudyDocument noisy = parse_study(kNoisyText, "noisy.ft");
  EXPECT_EQ(canonical_hash(base), canonical_hash(noisy));
  EXPECT_EQ(canonical_hash_hex(base), canonical_hash_hex(noisy));
}

TEST(CanonicalHash, IgnoresSourcePath) {
  StudyDocument a = parse_study(kBaseText, "one/path.ft");
  StudyDocument b = parse_study(kBaseText, "another/path.ft");
  EXPECT_NE(a.source, b.source);
  EXPECT_EQ(canonical_hash(a), canonical_hash(b));
}

TEST(CanonicalHash, RoundTripThroughWriterIsStable) {
  const StudyDocument doc = parse_study(kBaseText);
  const StudyDocument reparsed = parse_study(write_study(doc));
  EXPECT_EQ(canonical_hash(doc), canonical_hash(reparsed));
}

/// Each single semantic edit must move the hash — the cache must never
/// serve an artifact for a different model.
TEST(CanonicalHash, SensitiveToSemanticEdits) {
  const std::uint64_t base = canonical_hash(parse_study(kBaseText));
  const std::vector<std::pair<std::string_view, std::string_view>> edits = {
      {"param T1 in [5, 40]", "param T1 in [5, 41]"},
      {"Other prob = 4.19e-08", "Other prob = 4.19e-07"},
      {"Collision or Other OT1c OT2c", "Collision and Other OT1c OT2c"},
      {"OHV condition prob = 0.011", "OHV condition prob = 0.012"},
      {"hazard HCol cost = 100000", "hazard HCol cost = 100001"},
      {"starts = 4", "starts = 5"},
      {"engine fta", "engine bdd"},
      {"formula rare_event", "formula min_cut_upper_bound"},
  };
  for (const auto& [from, to] : edits) {
    std::string text(kBaseText);
    const std::size_t at = text.find(from);
    ASSERT_NE(at, std::string::npos) << from;
    text.replace(at, from.size(), to);
    EXPECT_NE(canonical_hash(parse_study(text)), base)
        << "edit did not change the hash: " << to;
  }
}

TEST(CanonicalHash, HexIsSixteenLowercaseDigits) {
  const std::string hex = canonical_hash_hex(parse_study(kBaseText));
  ASSERT_EQ(hex.size(), 16u);
  for (const char digit : hex) {
    EXPECT_TRUE((digit >= '0' && digit <= '9') ||
                (digit >= 'a' && digit <= 'f'))
        << hex;
  }
}

}  // namespace
}  // namespace safeopt::ftio
