#include "safeopt/serve/scheduler.h"

#include <algorithm>
#include <utility>

#include "safeopt/support/error.h"
#include "safeopt/support/strings.h"

namespace safeopt::serve {

AdmissionScheduler::AdmissionScheduler(SchedulerOptions options)
    : options_(std::move(options)),
      max_concurrent_(options_.max_concurrent != 0
                          ? options_.max_concurrent
                          : std::max<std::size_t>(
                                1, options_.pool->thread_count())),
      paused_(options_.start_paused) {
  // No concurrency yet, but guarded members are written under the lock so
  // the declared discipline holds everywhere the analysis looks.
  const MutexLock lock(mutex_);
  for (const auto& [name, weight] : options_.tenant_weights) {
    tenants_[name].weight = std::max(weight, 1e-9);
    tenants_[name].stats.weight = tenants_[name].weight;
  }
}

AdmissionScheduler::~AdmissionScheduler() {
  {
    const MutexLock lock(mutex_);
    stopping_ = true;
    paused_ = false;
    // Drop still-queued jobs (their owners are gone with the server);
    // running jobs finish on the pool before the pool itself is torn down
    // by whoever owns it.
    for (auto& [name, tenant] : tenants_) {
      (void)name;
      completed_ += tenant.queue.size();  // balance the drain() accounting
      tenant.queue.clear();
    }
    queued_ = 0;
  }
  idle_cv_.notify_all();
  MutexLock lock(mutex_);
  while (running_ != 0) lock.wait(idle_cv_);
}

void AdmissionScheduler::submit(const std::string& tenant_name, Job job) {
  const MutexLock lock(mutex_);
  auto found = tenants_.find(tenant_name);
  if (found == tenants_.end()) {
    // Tenant names are client-controlled; past the cap, unknown names fold
    // into one shared overflow bucket instead of growing the map (and the
    // per-dispatch scan, and /v1/stats) without bound.
    found = tenants_
                .try_emplace(tenants_.size() < options_.max_tenants
                                 ? tenant_name
                                 : std::string(kOverflowTenant))
                .first;
  }
  Tenant& tenant = found->second;
  if (tenant.weight <= 0.0) tenant.weight = 1.0;
  if (tenant.stats.weight == 0.0) tenant.stats.weight = tenant.weight;
  if (tenant.queue.size() >= options_.max_queue_per_tenant) {
    ++shed_;
    ++tenant.stats.shed;
    throw Error(ErrorCategory::kResourceExhausted,
                concat("admission queue full for tenant \"", tenant_name,
                       "\" (", std::to_string(tenant.queue.size()),
                       " queued); retry later"));
  }
  // SFQ tags: the job's virtual start is max(global virtual time, the
  // tenant's previous finish); its finish adds cost/weight. Dispatch picks
  // the smallest finish tag, so a heavy tenant's backlog spaces out by
  // 1/weight while a light tenant's next job slots in between.
  const double start = std::max(virtual_time_, tenant.last_finish);
  const double finish = start + 1.0 / tenant.weight;
  tenant.last_finish = finish;
  tenant.queue.push_back(Entry{start, finish, std::move(job)});
  ++queued_;
  ++submitted_;
  ++tenant.stats.submitted;
  pump_locked();
}

void AdmissionScheduler::pump_locked() {
  while (!paused_ && !stopping_ && running_ < max_concurrent_) {
    Tenant* next = nullptr;
    std::string next_name;
    for (auto& [name, tenant] : tenants_) {
      if (tenant.queue.empty()) continue;
      if (next == nullptr ||
          tenant.queue.front().finish_tag < next->queue.front().finish_tag) {
        next = &tenant;
        next_name = name;
      }
    }
    if (next == nullptr) return;
    Entry entry = std::move(next->queue.front());
    next->queue.pop_front();
    --queued_;
    // Virtual time advances to the dispatched job's start tag — the SFQ
    // rule that keeps newly active tenants from replaying the past. The
    // tag is carried in the entry because start = finish - 1/weight only
    // holds per tenant, not globally.
    virtual_time_ = std::max(virtual_time_, entry.start_tag);
    ++running_;
    options_.pool->submit([this, name = std::move(next_name),
                           job = std::move(entry.job)]() mutable {
      try {
        job();
      } catch (...) {
        // Jobs report their own failures (HTTP handlers); a throw here is
        // a handler bug, contained so one request cannot kill dispatch.
      }
      const MutexLock inner(mutex_);
      --running_;
      ++completed_;
      ++tenants_[name].stats.completed;
      pump_locked();
      // Notify under the lock: a waiter in drain()/~AdmissionScheduler
      // cannot return from wait() (it needs the mutex to recheck its
      // predicate) and destroy the condition variable mid-notify.
      idle_cv_.notify_all();
    });
  }
}

void AdmissionScheduler::resume() {
  const MutexLock lock(mutex_);
  if (!paused_) return;
  paused_ = false;
  pump_locked();
}

void AdmissionScheduler::drain() {
  MutexLock lock(mutex_);
  while (queued_ != 0 || running_ != 0) lock.wait(idle_cv_);
}

SchedulerStats AdmissionScheduler::stats() const {
  const MutexLock lock(mutex_);
  SchedulerStats out;
  out.submitted = submitted_;
  out.completed = completed_;
  out.shed = shed_;
  out.queued = queued_;
  out.running = running_;
  for (const auto& [name, tenant] : tenants_) {
    out.tenants[name] = tenant.stats;
  }
  return out;
}

}  // namespace safeopt::serve
