#include "safeopt/core/environment_sweep.h"

#include <optional>

#include "safeopt/expr/compiled.h"
#include "safeopt/support/contracts.h"
#include "safeopt/support/strings.h"
#include "safeopt/support/thread_pool.h"

namespace safeopt::core {

std::string SweepTable::to_csv() const {
  std::string out = parameter;
  for (const std::string& label : labels) {
    out += ",";
    out += label;
  }
  out += "\n";
  for (std::size_t k = 0; k < xs.size(); ++k) {
    out += format_double(xs[k]);
    for (const std::vector<double>& series : values) {
      out += ",";
      out += format_double(series[k]);
    }
    out += "\n";
  }
  return out;
}

namespace {

SweepTable sweep_impl(const std::string& parameter, double lo, double hi,
                      std::size_t steps,
                      const expr::ParameterAssignment& base,
                      const std::vector<SweepSeries>& series,
                      ThreadPool* pool) {
  SAFEOPT_EXPECTS(steps >= 2);
  SAFEOPT_EXPECTS(lo < hi);
  SAFEOPT_EXPECTS(!series.empty());

  SweepTable table;
  table.parameter = parameter;
  table.xs.resize(steps);
  table.values.assign(series.size(), std::vector<double>(steps, 0.0));
  for (const SweepSeries& s : series) table.labels.push_back(s.label);
  for (std::size_t k = 0; k < steps; ++k) {
    const double t = static_cast<double>(k) / static_cast<double>(steps - 1);
    table.xs[k] = lo + t * (hi - lo);
  }

  // One compiled tape per series; the whole sweep of a series is laid out
  // as a row-major point matrix (one row per step, the swept parameter's
  // slot varying, every other slot pinned to `base`) and handed to the
  // lane-blocked batch kernel in one call. A series need not mention the
  // swept parameter — e.g. a baseline curve — in which case its rows are
  // identical and the lane kernel's uniform/memo paths collapse the work.
  for (std::size_t s = 0; s < series.size(); ++s) {
    const expr::CompiledExpr tape =
        expr::CompiledExpr::compile(series[s].value);
    const std::vector<std::string>& order = tape.parameter_order();
    const std::size_t dim = order.size();
    std::vector<double> row(dim, 0.0);
    std::optional<std::size_t> swept_slot;
    for (std::size_t i = 0; i < dim; ++i) {
      if (order[i] == parameter) {
        swept_slot = i;
      } else {
        row[i] = base.get(order[i]);
      }
    }
    std::vector<double> points(steps * dim);
    for (std::size_t k = 0; k < steps; ++k) {
      if (swept_slot.has_value()) row[*swept_slot] = table.xs[k];
      std::copy(row.begin(), row.end(), points.begin() + k * dim);
    }
    tape.evaluate_batch(
        {.points = points, .values = table.values[s], .pool = pool});
  }
  return table;
}

}  // namespace

SweepTable sweep_parameter(const std::string& parameter, double lo, double hi,
                           std::size_t steps,
                           const expr::ParameterAssignment& base,
                           const std::vector<SweepSeries>& series) {
  return sweep_impl(parameter, lo, hi, steps, base, series, nullptr);
}

SweepTable sweep_parameter(const std::string& parameter, double lo, double hi,
                           std::size_t steps,
                           const expr::ParameterAssignment& base,
                           const std::vector<SweepSeries>& series,
                           ThreadPool& pool) {
  return sweep_impl(parameter, lo, hi, steps, base, series, &pool);
}

}  // namespace safeopt::core
