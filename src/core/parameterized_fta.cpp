#include "safeopt/core/parameterized_fta.h"

#include <algorithm>

#include "safeopt/support/contracts.h"

namespace safeopt::core {

ParameterizedQuantification::ParameterizedQuantification(
    const fta::FaultTree& tree)
    : tree_(tree),
      event_exprs_(tree.basic_event_count(), expr::constant(0.0)),
      condition_exprs_(tree.condition_count(), expr::constant(1.0)) {}

void ParameterizedQuantification::set_event_probability(
    std::string_view name, expr::Expr probability) {
  const auto id = tree_.find(name);
  SAFEOPT_EXPECTS(id.has_value());
  SAFEOPT_EXPECTS(tree_.kind(*id) == fta::NodeKind::kBasicEvent);
  event_exprs_[tree_.basic_event_ordinal(*id)] = std::move(probability);
}

void ParameterizedQuantification::set_condition_probability(
    std::string_view name, expr::Expr probability) {
  const auto id = tree_.find(name);
  SAFEOPT_EXPECTS(id.has_value());
  SAFEOPT_EXPECTS(tree_.kind(*id) == fta::NodeKind::kCondition);
  condition_exprs_[tree_.condition_ordinal(*id)] = std::move(probability);
}

const expr::Expr& ParameterizedQuantification::event_probability(
    fta::BasicEventOrdinal ordinal) const {
  SAFEOPT_EXPECTS(ordinal < event_exprs_.size());
  return event_exprs_[ordinal];
}

const expr::Expr& ParameterizedQuantification::condition_probability(
    fta::ConditionOrdinal ordinal) const {
  SAFEOPT_EXPECTS(ordinal < condition_exprs_.size());
  return condition_exprs_[ordinal];
}

expr::Expr ParameterizedQuantification::cut_set_expression(
    const fta::CutSet& cut_set) const {
  expr::Expr product = expr::constant(1.0);
  for (const fta::ConditionOrdinal c : cut_set.conditions) {
    SAFEOPT_EXPECTS(c < condition_exprs_.size());
    product = product * condition_exprs_[c];
  }
  for (const fta::BasicEventOrdinal e : cut_set.events) {
    SAFEOPT_EXPECTS(e < event_exprs_.size());
    product = product * event_exprs_[e];
  }
  return product;
}

expr::Expr ParameterizedQuantification::hazard_expression(
    const fta::CutSetCollection& mcs, HazardFormula formula) const {
  switch (formula) {
    case HazardFormula::kRareEvent: {
      expr::Expr sum = expr::constant(0.0);
      for (const fta::CutSet& cs : mcs) {
        sum = sum + cut_set_expression(cs);
      }
      // A sum of cut-set products can exceed 1 for large probabilities; the
      // clamp keeps downstream cost models within probability semantics.
      return expr::clamp(sum, 0.0, 1.0);
    }
    case HazardFormula::kMinCutUpperBound: {
      expr::Expr survive = expr::constant(1.0);
      for (const fta::CutSet& cs : mcs) {
        survive = survive * (1.0 - cut_set_expression(cs));
      }
      return expr::clamp(1.0 - survive, 0.0, 1.0);
    }
  }
  SAFEOPT_ASSERT(false);
  return expr::constant(0.0);
}

expr::Expr ParameterizedQuantification::hazard_expression(
    HazardFormula formula) const {
  return hazard_expression(fta::minimal_cut_sets(tree_), formula);
}

expr::Expr ParameterizedQuantification::birnbaum_expression(
    const fta::CutSetCollection& mcs, fta::BasicEventOrdinal event,
    HazardFormula formula) const {
  SAFEOPT_EXPECTS(event < event_exprs_.size());
  // Substitute P(e) := 1 and P(e) := 0 into the hazard assembly. Rebuilding
  // the expression with a patched copy keeps the construction simple and
  // exactly mirrors the numeric definition.
  ParameterizedQuantification certain = *this;
  certain.event_exprs_[event] = expr::constant(1.0);
  ParameterizedQuantification impossible = *this;
  impossible.event_exprs_[event] = expr::constant(0.0);
  return certain.hazard_expression(mcs, formula) -
         impossible.hazard_expression(mcs, formula);
}

fta::QuantificationInput ParameterizedQuantification::evaluate(
    const expr::ParameterAssignment& at) const {
  fta::QuantificationInput input;
  input.basic_event_probability.reserve(event_exprs_.size());
  for (const expr::Expr& e : event_exprs_) {
    input.basic_event_probability.push_back(
        std::clamp(e.evaluate(at), 0.0, 1.0));
  }
  input.condition_probability.reserve(condition_exprs_.size());
  for (const expr::Expr& e : condition_exprs_) {
    input.condition_probability.push_back(
        std::clamp(e.evaluate(at), 0.0, 1.0));
  }
  return input;
}

}  // namespace safeopt::core
