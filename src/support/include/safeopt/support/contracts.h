// Contract checking in the spirit of the C++ Core Guidelines (I.6/I.8):
// preconditions via SAFEOPT_EXPECTS, postconditions via SAFEOPT_ENSURES and
// internal invariants via SAFEOPT_ASSERT. A violated contract is a programming
// error: the handler prints a diagnostic with source location and aborts.
//
// The checks stay enabled in release builds: this library computes safety
// figures, and a silently wrong number is strictly worse than a crash.
#ifndef SAFEOPT_SUPPORT_CONTRACTS_H
#define SAFEOPT_SUPPORT_CONTRACTS_H

namespace safeopt {

/// Prints `<file>:<line>: <kind> violation: <condition>` to stderr and aborts.
/// Used by the contract macros below; never returns.
[[noreturn]] void contract_violation(const char* kind, const char* condition,
                                     const char* file, int line) noexcept;

}  // namespace safeopt

#define SAFEOPT_CONTRACT_CHECK_(kind, cond)                           \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::safeopt::contract_violation(kind, #cond, __FILE__, __LINE__); \
    }                                                                 \
  } while (false)

/// Precondition: the caller must establish `cond` before the call.
#define SAFEOPT_EXPECTS(cond) SAFEOPT_CONTRACT_CHECK_("precondition", cond)
/// Postcondition: the callee guarantees `cond` on normal return.
#define SAFEOPT_ENSURES(cond) SAFEOPT_CONTRACT_CHECK_("postcondition", cond)
/// Internal invariant that must hold at this program point.
#define SAFEOPT_ASSERT(cond) SAFEOPT_CONTRACT_CHECK_("assertion", cond)

#endif  // SAFEOPT_SUPPORT_CONTRACTS_H
