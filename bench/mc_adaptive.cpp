// Experiment: adaptive + rare-event Monte Carlo vs crude fixed-N sampling
// on the shipped pressure-vessel model (P(Rupture) ~ 1.6e-8 at the box
// center).
//
// The run reports trials-to-target-CI for the importance-sampled adaptive
// engine and compares them with what crude sampling would need for the same
// interval — and *verifies* the architectural contracts on the way:
//
//   thread_invariant  the adaptive trajectory (estimate, stopped trial
//                     count, ESS) is bitwise-identical with no pool, a
//                     1-thread pool and a 4-thread pool;
//   seed_reproducible two runs at the same seed agree bitwise;
//   exact_within_ci   the exact BDD probability lies inside the reported
//                     95% interval (the unbiasedness check).
//
// scripts/compare_bench.py gates the JSON against the committed
// BENCH_mc_adaptive.json: all contract flags true, the adaptive engine
// converged, and >= 10x fewer trials than crude-for-equal-CI.
//
// Usage: bench_mc_adaptive [--model PATH] [--fixed-trials N] [--json PATH]
//   --model        study document (default examples/models/pressure_vessel.ft)
//   --fixed-trials crude fixed-N context run (default 2000000)
//   --json         write machine-readable results to PATH
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "safeopt/core/study.h"
#include "safeopt/ftio/study_document.h"
#include "safeopt/stats/special_functions.h"
#include "safeopt/support/thread_pool.h"

namespace {

using Clock = std::chrono::steady_clock;

bool bits_equal(const safeopt::core::QuantificationResult& a,
                const safeopt::core::QuantificationResult& b) {
  return a.probability == b.probability && a.trials == b.trials &&
         a.ess == b.ess && a.ci95.has_value() == b.ci95.has_value() &&
         (!a.ci95.has_value() ||
          (a.ci95->lo == b.ci95->lo && a.ci95->hi == b.ci95->hi));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace safeopt;

  std::string model_path = "examples/models/pressure_vessel.ft";
  std::string json_path;
  std::uint64_t fixed_trials = 2000000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--model") == 0 && i + 1 < argc) {
      model_path = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--fixed-trials") == 0 && i + 1 < argc) {
      fixed_trials = std::strtoull(argv[++i], nullptr, 10);
    }
  }
  if (!std::ifstream(model_path).good() &&
      std::ifstream("../" + model_path).good()) {
    model_path = "../" + model_path;
  }
  if (!std::ifstream(model_path).good()) {
    std::fprintf(stderr, "model %s not found (pass --model PATH)\n",
                 model_path.c_str());
    return 1;
  }

  const ftio::StudyDocument doc = ftio::load_study(model_path);
  core::Study study = core::Study::from_document(doc);
  const std::string hazard = doc.hazards.front().tree;

  // Reference point: the box center (the CLI's quantify default).
  expr::ParameterAssignment at;
  for (std::size_t i = 0; i < study.space().size(); ++i) {
    const auto& parameter = study.space()[i];
    at.set(parameter.name, 0.5 * (parameter.lower + parameter.upper));
  }

  std::printf("=== adaptive + rare-event Monte Carlo vs fixed-N ===\n\n");
  std::printf("model %s, hazard %s at the box center\n", model_path.c_str(),
              hazard.c_str());

  // --- exact oracle -------------------------------------------------------
  study.engine("bdd");
  const double exact = study.quantify(hazard, at).probability;
  std::printf("exact (bdd Shannon)      : %.6e\n\n", exact);

  // --- adaptive importance sampling, document options ---------------------
  // The document carries the engine section (tilt, target, budget, seed);
  // the bench only adds the worker pool.
  const auto [engine_name, document_config] =
      core::document_engine_selection(doc);
  if (engine_name != "mc_adaptive") {
    std::fprintf(stderr, "model must select engine mc_adaptive\n");
    return 1;
  }

  ThreadPool pool4(4);
  core::EngineConfig adaptive_config = document_config;
  adaptive_config.pool = &pool4;
  study.engine("mc_adaptive", adaptive_config);
  const auto start = Clock::now();
  const core::QuantificationResult adaptive = study.quantify(hazard, at);
  const double adaptive_s =
      std::chrono::duration<double>(Clock::now() - start).count();

  const double halfwidth = adaptive.halfwidth();
  const double ess = adaptive.ess.value_or(0.0);
  const bool converged = adaptive.converged.value_or(false);
  std::printf("mc_adaptive (tilt %.0f)    : %.6e  +/- %.2e\n",
              document_config.tilt, adaptive.probability, halfwidth);
  std::printf("  trials %llu, ESS %.0f (%.1f%%), %s, %.1f ms\n",
              static_cast<unsigned long long>(adaptive.trials), ess,
              100.0 * ess / static_cast<double>(adaptive.trials),
              converged ? "converged" : "BUDGET EXHAUSTED", adaptive_s * 1e3);

  // --- contracts ----------------------------------------------------------
  // Thread-count invariance: no pool, 1 thread, 4 threads — identical bits.
  ThreadPool pool1(1);
  core::EngineConfig no_pool = adaptive_config;
  no_pool.pool = nullptr;
  core::EngineConfig one_thread = adaptive_config;
  one_thread.pool = &pool1;
  study.engine("mc_adaptive", no_pool);
  const auto serial = study.quantify(hazard, at);
  study.engine("mc_adaptive", one_thread);
  const auto single = study.quantify(hazard, at);
  const bool thread_invariant =
      bits_equal(adaptive, serial) && bits_equal(adaptive, single);

  study.engine("mc_adaptive", adaptive_config);
  const bool seed_reproducible = bits_equal(adaptive, study.quantify(hazard, at));
  const bool exact_within_ci =
      adaptive.ci95.has_value() && adaptive.ci95->contains(exact);

  std::printf("  thread-count invariant : %s\n",
              thread_invariant ? "yes" : "NO - BUG");
  std::printf("  seed reproducible      : %s\n",
              seed_reproducible ? "yes" : "NO - BUG");
  std::printf("  exact within 95%% CI    : %s\n\n",
              exact_within_ci ? "yes" : "NO");

  // --- crude fixed-N context run ------------------------------------------
  core::EngineConfig fixed_config = document_config;
  fixed_config.pool = &pool4;
  fixed_config.mc_trials = fixed_trials;
  study.engine("mc", fixed_config);
  const core::QuantificationResult fixed = study.quantify(hazard, at);
  std::printf("crude fixed-N            : %.6e  +/- %.2e  (%llu trials, "
              "%s)\n",
              fixed.probability, fixed.halfwidth(),
              static_cast<unsigned long long>(fixed.trials),
              fixed.probability == 0.0 ? "ZERO HITS" : "hit");

  // Crude sampling needs ~ z^2 p(1-p)/h^2 trials for the same half-width h
  // the adaptive run achieved — the matched-accuracy comparison the
  // importance sampler is gated on (running it is infeasible: ~1e10 trials).
  const double z = stats::normal_quantile(0.975);
  const double crude_required =
      halfwidth > 0.0 ? z * z * exact * (1.0 - exact) / (halfwidth * halfwidth)
                      : 0.0;
  const double ratio =
      adaptive.trials > 0
          ? crude_required / static_cast<double>(adaptive.trials)
          : 0.0;
  std::printf("crude trials for equal CI: %.3e  (%.0fx the adaptive "
              "trials)\n",
              crude_required, ratio);

  if (!json_path.empty()) {
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"model\": \"%s\",\n"
                 "  \"exact_probability\": %.17g,\n"
                 "  \"adaptive_estimate\": %.17g,\n"
                 "  \"adaptive_halfwidth\": %.17g,\n"
                 "  \"adaptive_trials\": %llu,\n"
                 "  \"adaptive_ess\": %.17g,\n"
                 "  \"adaptive_converged\": %s,\n"
                 "  \"adaptive_wall_s\": %.6f,\n"
                 "  \"fixed_trials\": %llu,\n"
                 "  \"fixed_estimate\": %.17g,\n"
                 "  \"fixed_halfwidth\": %.17g,\n"
                 "  \"crude_trials_for_equal_ci\": %.17g,\n"
                 "  \"trials_ratio_vs_crude\": %.17g,\n"
                 "  \"thread_invariant\": %s,\n"
                 "  \"seed_reproducible\": %s,\n"
                 "  \"exact_within_ci\": %s\n"
                 "}\n",
                 model_path.c_str(), exact, adaptive.probability, halfwidth,
                 static_cast<unsigned long long>(adaptive.trials), ess,
                 converged ? "true" : "false", adaptive_s,
                 static_cast<unsigned long long>(fixed.trials),
                 fixed.probability, fixed.halfwidth(), crude_required, ratio,
                 thread_invariant ? "true" : "false",
                 seed_reproducible ? "true" : "false",
                 exact_within_ci ? "true" : "false");
    std::fclose(f);
    std::printf("\njson written to %s\n", json_path.c_str());
  }

  return thread_invariant && seed_reproducible && converged ? 0 : 1;
}
