#include "safeopt/fta/importance.h"

#include <gtest/gtest.h>

#include <cmath>

#include "../testutil/random_tree.h"

namespace safeopt::fta {
namespace {

/// top = OR(a, AND(b, c)); P(a)=0.01, P(b)=0.1, P(c)=0.2; rare-event
/// P(top) = 0.03.
struct Model {
  Model() : tree("imp") {
    const NodeId a = tree.add_basic_event("a");
    const NodeId b = tree.add_basic_event("b");
    const NodeId c = tree.add_basic_event("c");
    const NodeId g = tree.add_and("g", {b, c});
    tree.set_top(tree.add_or("top", {a, g}));
    mcs = minimal_cut_sets(tree);
    input = QuantificationInput::for_tree(tree, 0.0);
    input.set(tree, "a", 0.01);
    input.set(tree, "b", 0.1);
    input.set(tree, "c", 0.2);
  }
  FaultTree tree;
  CutSetCollection mcs;
  QuantificationInput input;
};

TEST(ImportanceTest, BirnbaumByHand) {
  const Model m;
  const auto measures = importance_measures(m.tree, m.mcs, m.input);
  ASSERT_EQ(measures.size(), 3u);
  // I_B(a) = P(top|a=1) − P(top|a=0) = (1 + 0.02) clamped − 0.02... the
  // rare-event sum is 1.02 -> clamped to 1, so I_B(a) = 1 − 0.02 = 0.98.
  EXPECT_NEAR(measures[0].birnbaum, 0.98, 1e-12);
  // I_B(b) = (0.01 + 0.2) − 0.01 = 0.2.
  EXPECT_NEAR(measures[1].birnbaum, 0.2, 1e-12);
  EXPECT_NEAR(measures[2].birnbaum, 0.1, 1e-12);
}

TEST(ImportanceTest, FussellVeselyByHand) {
  const Model m;
  const auto measures = importance_measures(m.tree, m.mcs, m.input);
  // FV(a) = P({a}) / P(top) = 0.01 / 0.03.
  EXPECT_NEAR(measures[0].fussell_vesely, 0.01 / 0.03, 1e-12);
  // FV(b) = P({b,c}) / P(top) = 0.02 / 0.03.
  EXPECT_NEAR(measures[1].fussell_vesely, 0.02 / 0.03, 1e-12);
  EXPECT_NEAR(measures[2].fussell_vesely, 0.02 / 0.03, 1e-12);
}

TEST(ImportanceTest, CriticalityRelatesBirnbaumAndProbability) {
  const Model m;
  const auto measures = importance_measures(m.tree, m.mcs, m.input);
  const double p_top = 0.03;
  EXPECT_NEAR(measures[0].criticality, 0.98 * 0.01 / p_top, 1e-12);
  EXPECT_NEAR(measures[1].criticality, 0.2 * 0.1 / p_top, 1e-12);
}

TEST(ImportanceTest, RawAndRrw) {
  const Model m;
  const auto measures = importance_measures(m.tree, m.mcs, m.input);
  // RAW(b) = P(top|b=1)/P(top) = 0.21/0.03 = 7.
  EXPECT_NEAR(measures[1].risk_achievement_worth, 7.0, 1e-12);
  // RRW(b) = P(top)/P(top|b=0) = 0.03/0.01 = 3.
  EXPECT_NEAR(measures[1].risk_reduction_worth, 3.0, 1e-12);
}

TEST(ImportanceTest, RrwInfiniteForSolePointOfFailure) {
  FaultTree tree("single");
  const NodeId a = tree.add_basic_event("a");
  tree.set_top(tree.add_or("top", {a}));
  QuantificationInput input = QuantificationInput::for_tree(tree, 0.1);
  const auto measures =
      importance_measures(tree, minimal_cut_sets(tree), input);
  EXPECT_TRUE(std::isinf(measures[0].risk_reduction_worth));
}

TEST(ImportanceTest, RankingSortsByFussellVesely) {
  const Model m;
  const auto ranking = importance_ranking(m.tree, m.mcs, m.input);
  ASSERT_EQ(ranking.size(), 3u);
  // b and c dominate a (FV 2/3 vs 1/3) — b first by stable order.
  EXPECT_EQ(ranking[0].event_name, "b");
  EXPECT_EQ(ranking[1].event_name, "c");
  EXPECT_EQ(ranking[2].event_name, "a");
}

class ImportanceProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ImportanceProperties, MeasuresAreWellFormed) {
  const FaultTree tree = testutil::random_tree(
      GetParam(), {.basic_events = 6, .conditions = 1, .gates = 5});
  const QuantificationInput input =
      testutil::random_probabilities(tree, GetParam());
  const CutSetCollection mcs = minimal_cut_sets(tree);
  const double p_top = top_event_probability(mcs, input);
  if (p_top <= 0.0) GTEST_SKIP();
  for (const auto& m : importance_measures(tree, mcs, input)) {
    EXPECT_GE(m.birnbaum, -1e-12) << m.event_name;
    EXPECT_GE(m.fussell_vesely, 0.0) << m.event_name;
    EXPECT_LE(m.fussell_vesely, 1.0 + 1e-12) << m.event_name;
    EXPECT_GE(m.risk_achievement_worth, 1.0 - 1e-12) << m.event_name;
    EXPECT_GE(m.risk_reduction_worth, 1.0 - 1e-12) << m.event_name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ImportanceProperties,
                         ::testing::Range<std::uint64_t>(0, 25));

}  // namespace
}  // namespace safeopt::fta
