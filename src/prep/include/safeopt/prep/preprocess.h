// Fault-tree preprocessing: the pass pipeline that makes industrial-scale
// trees quantifiable. The paper's optimization loop re-quantifies the tree at
// every candidate design point, so per-quantification cost is the hard
// ceiling on scaling — and the classical levers (SCRAM reports up to 50×
// from exactly these steps) are all *structural*, applied once per tree:
//
//   propagate   redundancy/constant propagation: duplicate AND/OR children
//               collapse, single-child gates alias to their child, k-of-n
//               degenerates to AND (k = n) or OR (k = 1), TRUE/FALSE
//               constants (if a pass introduces them) short-circuit;
//   normalize   recursive k-of-n expansion into shared AND/OR gates via the
//               Shannon split  k/n(x1..xn) = (x1 AND (k-1)/(n-1)(x2..xn))
//                                            OR k/(n-1)(x2..xn)
//               — O(n·k) gates with sharing, never the C(n,k) blow-up;
//   flatten     same-op gate flattening: an AND child of an AND (or OR of
//               OR) with no other parent is spliced into its parent;
//   merge       common-argument merging: gates of identical type, threshold
//               and child list are hash-consed to one node;
//   modularize  Dutuit–Rauzy linear-time module detection — a gate whose
//               descendants are reachable *only* through it is an
//               independent subtree that can be quantified once and
//               substituted as a pseudo-leaf.
//
// Every pass except modularization preserves the structure function *and*
// the DFS first-visit order of the leaves. Because BDD variable order is
// that DFS order and the ROBDD is canonical, the preprocessed BDD is the
// same decision diagram as the unpreprocessed one — top-event probabilities
// agree bitwise (the property tests assert exactly that). Modularization is
// exact under leaf independence but re-associates the floating-point
// product, so it agrees to rounding, not bitwise — except through the
// cut-set path, where composed modular MCS are canonicalized by
// CutSetCollection::minimize() and Eq. 1/2 sums are again bitwise equal.
//
// The result of preprocess() is a PreprocessedTree: a list of Subtrees in
// dependency order (innermost modules first, top last) with per-leaf origin
// maps back to the original tree's ordinals, plus per-pass statistics. The
// "fta"/"bdd" engines consume it via quantify_bdd() / minimal_cut_sets();
// Study/CLI users opt in with the `preprocess` engine option.
#ifndef SAFEOPT_PREP_PREPROCESS_H
#define SAFEOPT_PREP_PREPROCESS_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "safeopt/bdd/bdd.h"
#include "safeopt/fta/cut_sets.h"
#include "safeopt/fta/fault_tree.h"
#include "safeopt/fta/probability.h"

namespace safeopt {
class ExecutionControl;  // support/execution.h
}

namespace safeopt::prep {

/// Which passes run, and the modularization granularity.
struct PreprocessOptions {
  bool propagate = true;
  bool normalize = true;
  bool flatten = true;
  bool merge = true;
  bool modularize = true;
  /// A detected module is extracted only when its subtree spans at least
  /// this many leaves — extracting tiny modules costs more bookkeeping than
  /// the per-module quantification saves.
  std::size_t module_min_leaves = 4;
  /// Cooperative deadline/cancellation, polled at pass boundaries; an abort
  /// throws Error(kDeadlineExceeded / kCancelled) and the input tree is
  /// untouched (passes rewrite a private IR). Not owned; nullptr = unbounded.
  const ExecutionControl* control = nullptr;
};

/// Where a subtree leaf came from: an original basic event, an original
/// condition, or a module pseudo-leaf standing for another subtree.
struct LeafOrigin {
  enum class Kind : std::uint8_t { kBasicEvent, kCondition, kModule };
  Kind kind = Kind::kBasicEvent;
  /// Original BasicEventOrdinal / ConditionOrdinal, or the index into
  /// PreprocessedTree::subtrees() for kModule.
  std::uint32_t index = 0;
};

/// One independent quantification unit after preprocessing. The top-level
/// subtree is last in PreprocessedTree::subtrees(); every pseudo-leaf
/// refers to an earlier subtree (dependency order).
struct Subtree {
  fta::FaultTree tree;
  /// Name of the gate this module was extracted from; the module's
  /// pseudo-leaf in its parent subtree reuses this name (the gate itself is
  /// gone, so the name is free — and the ftio round-trip stays natural).
  std::string name;
  /// Origin of each basic event of `tree`, by its BasicEventOrdinal. Module
  /// pseudo-leaves appear here with Kind::kModule.
  std::vector<LeafOrigin> basic_origin;
  /// Original ConditionOrdinal of each condition of `tree`.
  std::vector<std::uint32_t> condition_origin;
};

/// What one pass did, for diagnostics ("passes applied" in
/// QuantificationResult::preprocess and `safeopt quantify --json`).
struct PassStats {
  std::string name;
  std::size_t nodes_before = 0;  // reachable nodes entering the pass
  std::size_t nodes_after = 0;   // reachable nodes leaving it
  std::size_t rewrites = 0;      // local rewrites the pass performed
};

/// Aggregate before/after picture of one preprocess() run.
struct PreprocessStatistics {
  /// Original leaf count (basic events + conditions).
  std::size_t events_before = 0;
  /// Leaf count of the final *top* subtree — module pseudo-leaves count as
  /// one each, which is exactly the reduction the BDD engine sees.
  std::size_t events_after = 0;
  std::size_t gates_before = 0;
  /// Total gates across all subtrees after every pass.
  std::size_t gates_after = 0;
  /// Extracted modules (subtree count minus the top).
  std::size_t modules = 0;
  std::vector<PassStats> passes;
};

/// Everything the engines need: the subtrees in dependency order, the origin
/// maps, and the statistics. Produced by preprocess(); treat as immutable.
struct PreprocessedTree {
  std::vector<Subtree> subtrees;
  PreprocessStatistics statistics;

  [[nodiscard]] const Subtree& top() const { return subtrees.back(); }

  /// Assembles the QuantificationInput of subtree `index` from the original
  /// tree's input and the already-computed probabilities of earlier
  /// subtrees (`module_probability[i]` for pseudo-leaves of subtree i;
  /// only indices < `index` are read).
  [[nodiscard]] fta::QuantificationInput input_for(
      std::size_t index, const fta::QuantificationInput& original,
      const std::vector<double>& module_probability) const;
};

/// Runs the configured passes over `tree`. Precondition: tree.has_top() and
/// tree.validate() is clean. The input tree is not modified.
[[nodiscard]] PreprocessedTree preprocess(const fta::FaultTree& tree,
                                          const PreprocessOptions& options = {});

/// Outcome of quantify_bdd: the exact probability plus the aggregated BDD
/// counters of every per-subtree manager. Node counts sum
/// decision_node_count() so the two terminals are not counted once per
/// module (the "like with like" contract of the large-tree bench gates).
struct ModularBddResult {
  double probability = 0.0;
  std::size_t decision_nodes = 0;
  std::size_t ite_calls = 0;
  std::size_t cache_hits = 0;
  std::size_t cache_evictions = 0;
};

/// Every subtree compiled to its own BDD once (modules become single
/// variables in their parent); probability() is then a per-input bottom-up
/// Shannon evaluation over the precompiled diagrams — the optimization-loop
/// hot path, where the same tree is re-quantified at every design point.
/// The PreprocessedTree must outlive this object.
class CompiledPreprocessedTree {
 public:
  explicit CompiledPreprocessedTree(const PreprocessedTree& preprocessed,
                                    const bdd::BddOptions& options = {});

  /// Exact top-event probability under leaf independence (module leaf sets
  /// are disjoint by construction). `input` is over the *original* tree's
  /// ordinals. The `probability` field of compile_statistics() is not
  /// touched — per-call results are returned, not stored.
  [[nodiscard]] double probability(const fta::QuantificationInput& input);

  /// Aggregated compile-time BDD counters (probability field is 0).
  [[nodiscard]] const ModularBddResult& compile_statistics() const noexcept {
    return statistics_;
  }

 private:
  const PreprocessedTree* preprocessed_;
  std::vector<bdd::CompiledFaultTree> compiled_;
  ModularBddResult statistics_;
};

/// One-shot convenience over CompiledPreprocessedTree: compile every
/// subtree, evaluate `input`, return probability + aggregated counters.
[[nodiscard]] ModularBddResult quantify_bdd(
    const PreprocessedTree& preprocessed,
    const fta::QuantificationInput& input,
    const bdd::BddOptions& options = {});

/// Minimal cut sets in the *original* tree's ordinals: per-subtree MOCUS,
/// then bottom-up substitution of every module pseudo-leaf by its module's
/// cut sets (cartesian composition), then minimize(). Equal to MOCUS on the
/// unpreprocessed tree for every coherent tree (and to its XOR-as-OR
/// coherent hull otherwise).
[[nodiscard]] fta::CutSetCollection minimal_cut_sets(
    const PreprocessedTree& preprocessed);

}  // namespace safeopt::prep

#endif  // SAFEOPT_PREP_PREPROCESS_H
