#include "safeopt/serve/http.h"

#include <algorithm>
#include <cctype>
#include <charconv>

#include "safeopt/support/error.h"
#include "safeopt/support/strings.h"

namespace safeopt::serve {
namespace {

[[noreturn]] void bad_request(std::string_view what) {
  throw Error(ErrorCategory::kInvalidInput, concat("http: ", what));
}

std::string lowercase(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

}  // namespace

const std::string* HttpRequest::find_header(
    std::string_view name) const noexcept {
  for (const auto& [key, value] : headers) {
    if (key == name) return &value;
  }
  return nullptr;
}

std::optional<HttpRequest> read_http_request(TcpSocket& socket,
                                             const HttpLimits& limits) {
  if (limits.read_timeout_ms != 0) {
    socket.set_receive_timeout_ms(limits.read_timeout_ms);
  }

  // Read until the blank line ending the header block; whatever follows it
  // in the same segments is the body's prefix.
  std::string buffer;
  std::size_t header_end = std::string::npos;
  char chunk[4096];
  while (true) {
    const std::size_t searched_from = buffer.size() < 3 ? 0 : buffer.size() - 3;
    const std::size_t n = socket.read_some(chunk, sizeof(chunk));
    if (n == 0) {
      if (buffer.empty()) return std::nullopt;  // clean probe connect
      bad_request("connection closed mid-request");
    }
    buffer.append(chunk, n);
    header_end = buffer.find("\r\n\r\n", searched_from);
    if (header_end != std::string::npos) break;
    if (buffer.size() > limits.max_header_bytes) {
      throw Error(ErrorCategory::kResourceExhausted,
                  "http: header block exceeds limit");
    }
  }

  HttpRequest request;
  const std::string_view head =
      std::string_view(buffer).substr(0, header_end);
  std::size_t line_start = 0;

  // Request line: METHOD SP TARGET SP VERSION.
  const std::size_t line_end = head.find("\r\n");
  const std::string_view request_line =
      head.substr(0, std::min(line_end, head.size()));
  const std::size_t method_end = request_line.find(' ');
  const std::size_t target_end =
      method_end == std::string_view::npos
          ? std::string_view::npos
          : request_line.find(' ', method_end + 1);
  if (method_end == std::string_view::npos ||
      target_end == std::string_view::npos) {
    bad_request("malformed request line");
  }
  const std::string_view version = request_line.substr(target_end + 1);
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    bad_request(concat("unsupported protocol \"", version, "\""));
  }
  request.method = std::string(request_line.substr(0, method_end));
  request.target = std::string(
      request_line.substr(method_end + 1, target_end - method_end - 1));
  if (request.method.empty() || request.target.empty() ||
      request.target[0] != '/') {
    bad_request("malformed request line");
  }
  line_start = line_end == std::string_view::npos ? head.size() : line_end + 2;

  // Header fields: NAME ":" OWS VALUE.
  while (line_start < head.size()) {
    std::size_t end = head.find("\r\n", line_start);
    if (end == std::string_view::npos) end = head.size();
    const std::string_view line = head.substr(line_start, end - line_start);
    line_start = end + 2;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      bad_request("malformed header field");
    }
    request.headers.emplace_back(
        lowercase(trim(line.substr(0, colon))),
        std::string(trim(line.substr(colon + 1))));
  }

  // Body: exactly Content-Length bytes (0 when absent).
  std::size_t content_length = 0;
  if (const std::string* value = request.find_header("content-length")) {
    const auto [end, ec] = std::from_chars(
        value->data(), value->data() + value->size(), content_length);
    if (ec != std::errc{} || end != value->data() + value->size()) {
      bad_request(concat("malformed Content-Length \"", *value, "\""));
    }
  }
  if (request.find_header("transfer-encoding") != nullptr) {
    bad_request("chunked transfer encoding is not supported");
  }
  if (content_length > limits.max_body_bytes) {
    throw Error(ErrorCategory::kResourceExhausted,
                concat("http: body of ", std::to_string(content_length),
                       " bytes exceeds limit of ",
                       std::to_string(limits.max_body_bytes)));
  }
  request.body = buffer.substr(header_end + 4);
  if (request.body.size() > content_length) {
    bad_request("body longer than Content-Length (pipelining unsupported)");
  }
  while (request.body.size() < content_length) {
    const std::size_t n = socket.read_some(
        chunk, std::min(sizeof(chunk), content_length - request.body.size()));
    if (n == 0) bad_request("connection closed mid-body");
    request.body.append(chunk, n);
  }
  return request;
}

void write_http_response(TcpSocket& socket, const HttpResponse& response) {
  socket.write_all(concat(
      "HTTP/1.1 ", std::to_string(response.status), " ",
      http_status_reason(response.status), "\r\nContent-Type: ",
      response.content_type, "\r\nContent-Length: ",
      std::to_string(response.body.size()), "\r\nConnection: close\r\n\r\n",
      response.body));
}

std::string_view http_status_reason(int status) noexcept {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 499: return "Client Closed Request";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

}  // namespace safeopt::serve
