// Name-keyed factory registry: the shared scaffolding behind
// opt::SolverRegistry and core::EngineRegistry. One mutex-guarded sorted
// map; last registration under a name wins (applications may override
// built-ins); unknown names throw std::invalid_argument listing what is
// available. All methods are thread-safe.
#ifndef SAFEOPT_SUPPORT_REGISTRY_H
#define SAFEOPT_SUPPORT_REGISTRY_H

#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "safeopt/support/contracts.h"
#include "safeopt/support/mutex.h"
#include "safeopt/support/strings.h"
#include "safeopt/support/thread_annotations.h"

namespace safeopt {

template <typename Factory>
class NameRegistry {
 public:
  /// `kind` names the registered thing in error messages ("solver",
  /// "quantification engine"); `seed` populates the built-ins.
  NameRegistry(std::string kind,
               std::vector<std::pair<std::string, Factory>> seed)
      : kind_(std::move(kind)) {
    for (auto& [name, factory] : seed) {
      factories_.insert_or_assign(std::move(name), std::move(factory));
    }
  }

  /// Registers `factory` under `name`; returns false when it replaced an
  /// existing registration. Precondition: name non-empty, factory callable.
  bool add(std::string name, Factory factory) {
    SAFEOPT_EXPECTS(!name.empty());
    SAFEOPT_EXPECTS(static_cast<bool>(factory));
    const MutexLock lock(mutex_);
    return factories_.insert_or_assign(std::move(name), std::move(factory))
        .second;
  }

  /// The factory registered under `name`; throws std::invalid_argument
  /// listing available() for unknown names.
  [[nodiscard]] Factory find(std::string_view name) const {
    const MutexLock lock(mutex_);
    const auto it = factories_.find(name);
    if (it == factories_.end()) {
      throw std::invalid_argument(concat("unknown ", kind_, " \"", name,
                                         "\"; available: ",
                                         join(names_locked(), ", ")));
    }
    return it->second;
  }

  [[nodiscard]] bool contains(std::string_view name) const {
    const MutexLock lock(mutex_);
    return factories_.find(name) != factories_.end();
  }

  /// Sorted names of every registration.
  [[nodiscard]] std::vector<std::string> available() const {
    const MutexLock lock(mutex_);
    return names_locked();
  }

 private:
  [[nodiscard]] std::vector<std::string> names_locked() const
      SAFEOPT_REQUIRES(mutex_) {
    std::vector<std::string> names;
    names.reserve(factories_.size());
    for (const auto& [name, factory] : factories_) names.push_back(name);
    return names;  // std::map iteration order is already sorted
  }

  std::string kind_;
  mutable Mutex mutex_;
  std::map<std::string, Factory, std::less<>> factories_
      SAFEOPT_GUARDED_BY(mutex_);
};

}  // namespace safeopt

#endif  // SAFEOPT_SUPPORT_REGISTRY_H
