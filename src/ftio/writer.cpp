#include "safeopt/ftio/writer.h"

#include "safeopt/support/contracts.h"
#include "safeopt/support/strings.h"

namespace safeopt::ftio {
namespace {

std::string gate_keyword(const fta::FaultTree& tree, fta::NodeId id) {
  switch (tree.gate_type(id)) {
    case fta::GateType::kAnd: return "and";
    case fta::GateType::kOr: return "or";
    case fta::GateType::kXor: return "xor";
    case fta::GateType::kInhibit: return "inhibit";
    case fta::GateType::kKofN:
      return concat(std::to_string(tree.vote_threshold(id)), "of",
                    std::to_string(tree.children(id).size()));
  }
  SAFEOPT_ASSERT(false);
  return {};
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

std::string write_fault_tree(const fta::FaultTree& tree,
                             const fta::QuantificationInput& probabilities) {
  SAFEOPT_EXPECTS(tree.has_top());
  SAFEOPT_EXPECTS(probabilities.is_valid_for(tree));
  std::string out;
  out += concat("tree ", tree.name(), ";\n");
  out += concat("toplevel ", tree.node_name(tree.top()), ";\n");
  for (fta::NodeId id = 0; id < tree.node_count(); ++id) {
    if (tree.kind(id) != fta::NodeKind::kGate) continue;
    out += concat(tree.node_name(id), " ", gate_keyword(tree, id));
    for (const fta::NodeId child : tree.children(id)) {
      out += concat(" ", tree.node_name(child));
    }
    out += ";\n";
  }
  for (const fta::NodeId id : tree.basic_events()) {
    out += concat(
        tree.node_name(id), " prob = ",
        format_double(
            probabilities.basic_event_probability[tree.basic_event_ordinal(
                id)]),
        ";\n");
  }
  for (const fta::NodeId id : tree.conditions()) {
    out += concat(
        tree.node_name(id), " condition prob = ",
        format_double(
            probabilities.condition_probability[tree.condition_ordinal(id)]),
        ";\n");
  }
  return out;
}

std::string to_dot(const fta::FaultTree& tree,
                   const fta::QuantificationInput* probabilities) {
  std::string out = concat("digraph \"", tree.name(), "\" {\n");
  out += "  rankdir=TB;\n  node [fontname=\"Helvetica\"];\n";
  for (fta::NodeId id = 0; id < tree.node_count(); ++id) {
    const std::string& name = tree.node_name(id);
    std::string label = name;
    std::string shape = "box";
    switch (tree.kind(id)) {
      case fta::NodeKind::kBasicEvent: {
        shape = "circle";  // paper Fig. 1: primary failures are circles
        if (probabilities != nullptr) {
          label += concat(
              "\\np=",
              format_double(
                  probabilities
                      ->basic_event_probability[tree.basic_event_ordinal(
                          id)]));
        }
        break;
      }
      case fta::NodeKind::kCondition: {
        shape = "ellipse";  // INHIBIT side conditions are ovals
        if (probabilities != nullptr) {
          label += concat(
              "\\np=",
              format_double(
                  probabilities->condition_probability[tree.condition_ordinal(
                      id)]));
        }
        break;
      }
      case fta::NodeKind::kGate: {
        switch (tree.gate_type(id)) {
          case fta::GateType::kAnd: shape = "invhouse"; break;
          case fta::GateType::kOr: shape = "invtriangle"; break;
          case fta::GateType::kXor: shape = "diamond"; break;
          case fta::GateType::kInhibit: shape = "hexagon"; break;
          case fta::GateType::kKofN: shape = "trapezium"; break;
        }
        label += concat("\\n[", fta::to_string(tree.gate_type(id)),
                        tree.gate_type(id) == fta::GateType::kKofN
                            ? concat(" ",
                                     std::to_string(tree.vote_threshold(id)))
                            : std::string(),
                        "]");
        break;
      }
    }
    out += concat("  \"", name, "\" [shape=", shape, ", label=\"", label,
                  "\"];\n");
  }
  for (fta::NodeId id = 0; id < tree.node_count(); ++id) {
    if (tree.kind(id) != fta::NodeKind::kGate) continue;
    const auto children = tree.children(id);
    for (std::size_t c = 0; c < children.size(); ++c) {
      out += concat("  \"", tree.node_name(id), "\" -> \"",
                    tree.node_name(children[c]), "\"");
      if (tree.gate_type(id) == fta::GateType::kInhibit && c == 1) {
        out += " [style=dashed, label=\"condition\"]";
      }
      out += ";\n";
    }
  }
  out += "}\n";
  return out;
}

std::string to_json(const fta::FaultTree& tree,
                    const fta::QuantificationInput& probabilities) {
  SAFEOPT_EXPECTS(tree.has_top());
  SAFEOPT_EXPECTS(probabilities.is_valid_for(tree));
  std::string out = "{\n";
  out += concat("  \"name\": \"", json_escape(tree.name()), "\",\n");
  out += concat("  \"toplevel\": \"", json_escape(tree.node_name(tree.top())),
                "\",\n");
  out += "  \"nodes\": [\n";
  for (fta::NodeId id = 0; id < tree.node_count(); ++id) {
    out += concat("    {\"name\": \"", json_escape(tree.node_name(id)),
                  "\", ");
    switch (tree.kind(id)) {
      case fta::NodeKind::kBasicEvent:
        out += concat(
            "\"kind\": \"basic-event\", \"prob\": ",
            format_double(
                probabilities.basic_event_probability[tree.basic_event_ordinal(
                    id)]));
        break;
      case fta::NodeKind::kCondition:
        out += concat(
            "\"kind\": \"condition\", \"prob\": ",
            format_double(
                probabilities.condition_probability[tree.condition_ordinal(
                    id)]));
        break;
      case fta::NodeKind::kGate: {
        out += concat("\"kind\": \"gate\", \"gate\": \"",
                      fta::to_string(tree.gate_type(id)), "\"");
        if (tree.gate_type(id) == fta::GateType::kKofN) {
          out += concat(", \"k\": ",
                        std::to_string(tree.vote_threshold(id)));
        }
        out += ", \"children\": [";
        const auto children = tree.children(id);
        for (std::size_t c = 0; c < children.size(); ++c) {
          if (c > 0) out += ", ";
          out += concat("\"", json_escape(tree.node_name(children[c])), "\"");
        }
        out += "]";
        break;
      }
    }
    out += "}";
    if (id + 1 < tree.node_count()) out += ",";
    out += "\n";
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace safeopt::ftio
