#include "safeopt/opt/problem.h"

#include <algorithm>
#include <cmath>

#include "safeopt/support/contracts.h"

namespace safeopt::opt {

Box::Box(std::vector<double> lo, std::vector<double> hi)
    : lower(std::move(lo)), upper(std::move(hi)) {
  SAFEOPT_EXPECTS(lower.size() == upper.size());
  SAFEOPT_EXPECTS(!lower.empty());
  for (std::size_t i = 0; i < lower.size(); ++i) {
    SAFEOPT_EXPECTS(lower[i] <= upper[i]);
  }
}

Box Box::interval(double lo, double hi) { return Box({lo}, {hi}); }

bool Box::contains(std::span<const double> x) const noexcept {
  if (x.size() != lower.size()) return false;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] < lower[i] || x[i] > upper[i]) return false;
  }
  return true;
}

std::vector<double> Box::project(std::span<const double> x) const {
  SAFEOPT_EXPECTS(x.size() == lower.size());
  std::vector<double> out(x.begin(), x.end());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = std::clamp(out[i], lower[i], upper[i]);
  }
  return out;
}

std::vector<double> Box::center() const {
  std::vector<double> out(lower.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = 0.5 * (lower[i] + upper[i]);
  }
  return out;
}

double Box::width(std::size_t i) const {
  SAFEOPT_EXPECTS(i < lower.size());
  return upper[i] - lower[i];
}

void Problem::evaluate_batch(std::span<const double> points,
                             std::span<double> out) const {
  const std::size_t dim = bounds.dimension();
  SAFEOPT_EXPECTS(points.size() == out.size() * dim);
  if (batch_objective) {
    batch_objective(points, out);
    return;
  }
  SAFEOPT_EXPECTS(static_cast<bool>(objective));
  for (std::size_t row = 0; row < out.size(); ++row) {
    out[row] = objective(points.subspan(row * dim, dim));
  }
}

void Problem::evaluate_batch_with_gradients(
    std::span<const double> points, std::span<double> values_out,
    std::span<double> gradients_out) const {
  const std::size_t dim = bounds.dimension();
  const std::size_t rows = values_out.size();
  SAFEOPT_EXPECTS(points.size() == rows * dim);
  SAFEOPT_EXPECTS(gradients_out.size() == rows * dim);
  if (batch_gradient) {
    batch_gradient(points, values_out, gradients_out);
    return;
  }
  SAFEOPT_EXPECTS(static_cast<bool>(objective));
  for (std::size_t row = 0; row < rows; ++row) {
    const auto x = points.subspan(row * dim, dim);
    values_out[row] = objective(x);
    const std::vector<double> g = gradient
                                      ? gradient(x)
                                      : finite_difference_gradient(
                                            objective, bounds, x);
    SAFEOPT_ASSERT(g.size() == dim);
    std::copy(g.begin(), g.end(), gradients_out.begin() + row * dim);
  }
}

std::vector<double> finite_difference_gradient(const Objective& objective,
                                               const Box& bounds,
                                               std::span<const double> x,
                                               std::size_t* evaluations) {
  SAFEOPT_EXPECTS(x.size() == bounds.dimension());
  std::vector<double> grad(x.size(), 0.0);
  std::vector<double> point(x.begin(), x.end());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double width = std::max(bounds.width(i), 1e-12);
    const double h = std::max(1e-7 * width, 1e-9 * std::abs(x[i]) + 1e-12);
    const double hi = std::min(x[i] + h, bounds.upper[i]);
    const double lo = std::max(x[i] - h, bounds.lower[i]);
    SAFEOPT_ASSERT(hi > lo);
    point[i] = hi;
    const double f_hi = objective(point);
    point[i] = lo;
    const double f_lo = objective(point);
    point[i] = x[i];
    grad[i] = (f_hi - f_lo) / (hi - lo);
    if (evaluations != nullptr) *evaluations += 2;
  }
  return grad;
}

std::vector<double> finite_difference_gradient(const Problem& problem,
                                               std::span<const double> x,
                                               std::size_t* evaluations) {
  const Box& bounds = problem.bounds;
  const std::size_t dim = bounds.dimension();
  SAFEOPT_EXPECTS(x.size() == dim);
  // The same stencil as the Objective overload — axis i perturbed to hi/lo
  // with everything else at x — laid out as 2·dim rows for one batch call.
  std::vector<double> points(2 * dim * dim);
  std::vector<double> spacing(dim, 0.0);
  for (std::size_t i = 0; i < dim; ++i) {
    const double width = std::max(bounds.width(i), 1e-12);
    const double h = std::max(1e-7 * width, 1e-9 * std::abs(x[i]) + 1e-12);
    const double hi = std::min(x[i] + h, bounds.upper[i]);
    const double lo = std::max(x[i] - h, bounds.lower[i]);
    SAFEOPT_ASSERT(hi > lo);
    spacing[i] = hi - lo;
    double* const row_hi = points.data() + (2 * i) * dim;
    double* const row_lo = points.data() + (2 * i + 1) * dim;
    std::copy(x.begin(), x.end(), row_hi);
    std::copy(x.begin(), x.end(), row_lo);
    row_hi[i] = hi;
    row_lo[i] = lo;
  }
  std::vector<double> values(2 * dim);
  problem.evaluate_batch(points, values);
  std::vector<double> grad(dim, 0.0);
  for (std::size_t i = 0; i < dim; ++i) {
    grad[i] = (values[2 * i] - values[2 * i + 1]) / spacing[i];
  }
  if (evaluations != nullptr) *evaluations += 2 * dim;
  return grad;
}

}  // namespace safeopt::opt
