// Property test: parse_study ∘ write_study = id over randomly generated
// documents — random fault trees covering AND/OR/XOR/k-of-n/INHIBIT with
// shared subtrees, plus the grammar-v2 forms (param declarations,
// expression-valued leaves, hazards, solver/engine/formula sections).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "../testutil/random_tree.h"
#include "safeopt/expr/parse.h"
#include "safeopt/ftio/study_document.h"
#include "safeopt/stats/distribution.h"
#include "safeopt/support/rng.h"

namespace safeopt::ftio {
namespace {

/// A random leaf-probability expression over the declared parameters:
/// exercises every parseable node kind (constants, parameters, arithmetic,
/// exp/min/max/pow, distribution cdf/survival).
expr::Expr random_probability_expression(Rng& rng,
                                         const std::vector<std::string>&
                                             params) {
  const expr::Expr p =
      expr::parameter(params[static_cast<std::size_t>(
          uniform_index(rng, params.size()))]);
  switch (uniform_index(rng, 6)) {
    case 0: return expr::constant(uniform(rng, 0.01, 0.3));
    case 1:
      return expr::survival(
          std::make_shared<stats::TruncatedNormal>(
              stats::TruncatedNormal::nonnegative(uniform(rng, 2.0, 6.0),
                                                  uniform(rng, 1.0, 3.0))),
          p);
    case 2:
      return 1.0 - expr::exp(expr::constant(-uniform(rng, 0.01, 0.2)) * p);
    case 3:
      return expr::cdf(
          std::make_shared<stats::Weibull>(uniform(rng, 1.0, 3.0),
                                           uniform(rng, 20.0, 60.0)),
          p);
    case 4:
      return expr::min(expr::constant(uniform(rng, 0.1, 0.9)),
                       expr::pow(p / 50.0, 2.0));
    default:
      return expr::clamp(uniform(rng, 0.001, 0.01) * expr::sqrt(p), 0.0,
                         1.0);
  }
}

StudyDocument random_document(std::uint64_t seed) {
  Rng rng(seed ^ 0xd1b54a32d192ed03ULL);
  StudyDocument doc;
  doc.parameters = {
      {"T1", 5.0, 40.0, "min", "runtime of timer 1"},
      {"T2", 5.0, 40.0, "min", ""},
      {"M", 1.0, 52.0, "", "maintenance interval"},
  };
  const std::vector<std::string> params = {"T1", "T2", "M"};

  const std::size_t tree_count = 1 + uniform_index(rng, 2);
  for (std::size_t t = 0; t < tree_count; ++t) {
    testutil::RandomTreeOptions options;
    options.basic_events = 4 + uniform_index(rng, 4);
    options.conditions = uniform_index(rng, 3);
    options.gates = 3 + uniform_index(rng, 4);
    options.allow_xor = uniform_index(rng, 2) == 0;
    options.allow_kofn = true;
    TreeModel model{testutil::random_tree(seed * 7 + t, options), {}};
    for (const fta::NodeId id : model.tree.basic_events()) {
      model.leaves.push_back({model.tree.node_name(id), false,
                              random_probability_expression(rng, params)});
    }
    for (const fta::NodeId id : model.tree.conditions()) {
      model.leaves.push_back({model.tree.node_name(id), true,
                              expr::constant(uniform(rng, 0.3, 1.0))});
    }
    doc.trees.push_back(std::move(model));
    doc.hazards.push_back(
        {doc.trees.back().tree.name(), uniform(rng, 1.0, 1e6)});
  }

  SelectionDecl solver;
  solver.name = "multi_start";
  solver.options.emplace_back(
      "starts",
      OptionValue::of(static_cast<double>(2 + uniform_index(rng, 6))));
  solver.options.emplace_back("inner", OptionValue::of("nelder_mead"));
  doc.solver = std::move(solver);
  SelectionDecl engine;
  engine.name = uniform_index(rng, 2) == 0 ? "fta" : "bdd";
  doc.engine = std::move(engine);
  doc.formula = uniform_index(rng, 2) == 0
                    ? std::string("rare_event")
                    : std::string("min_cut_upper_bound");
  return doc;
}

/// Structural tree equality by names — node ordinals may permute between a
/// document and its reparse, so compare the name-keyed structure.
void expect_same_tree(const fta::FaultTree& a, const fta::FaultTree& b) {
  EXPECT_EQ(a.name(), b.name());
  EXPECT_EQ(a.node_count(), b.node_count());
  EXPECT_EQ(a.basic_event_count(), b.basic_event_count());
  EXPECT_EQ(a.condition_count(), b.condition_count());
  ASSERT_TRUE(a.has_top() && b.has_top());
  EXPECT_EQ(a.node_name(a.top()), b.node_name(b.top()));
  for (fta::NodeId id = 0; id < a.node_count(); ++id) {
    const auto other = b.find(a.node_name(id));
    ASSERT_TRUE(other.has_value()) << "missing node " << a.node_name(id);
    EXPECT_EQ(a.kind(id), b.kind(*other));
    if (a.kind(id) != fta::NodeKind::kGate) continue;
    EXPECT_EQ(a.gate_type(id), b.gate_type(*other));
    if (a.gate_type(id) == fta::GateType::kKofN) {
      EXPECT_EQ(a.vote_threshold(id), b.vote_threshold(*other));
    }
    const auto children_a = a.children(id);
    const auto children_b = b.children(*other);
    ASSERT_EQ(children_a.size(), children_b.size());
    for (std::size_t c = 0; c < children_a.size(); ++c) {
      EXPECT_EQ(a.node_name(children_a[c]), b.node_name(children_b[c]));
    }
  }
}

class StudyRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StudyRoundTrip, ParseOfWriteReproducesTheDocument) {
  const StudyDocument original = random_document(GetParam());
  const std::string text = write_study(original);
  const StudyDocument reparsed = parse_study(text);

  // Parameters: equal in order and metadata.
  ASSERT_EQ(reparsed.parameters.size(), original.parameters.size());
  for (std::size_t i = 0; i < original.parameters.size(); ++i) {
    EXPECT_EQ(reparsed.parameters[i].name, original.parameters[i].name);
    EXPECT_EQ(reparsed.parameters[i].lower, original.parameters[i].lower);
    EXPECT_EQ(reparsed.parameters[i].upper, original.parameters[i].upper);
    EXPECT_EQ(reparsed.parameters[i].unit, original.parameters[i].unit);
    EXPECT_EQ(reparsed.parameters[i].description,
              original.parameters[i].description);
  }

  // Trees: same structure, and every leaf expression structurally
  // identical (parse ∘ print on the expression layer).
  ASSERT_EQ(reparsed.trees.size(), original.trees.size());
  for (const TreeModel& tree : original.trees) {
    const TreeModel* other = reparsed.find_tree(tree.tree.name());
    ASSERT_NE(other, nullptr) << tree.tree.name();
    expect_same_tree(tree.tree, other->tree);
    for (const LeafProbability& leaf : tree.leaves) {
      const LeafProbability* counterpart = other->find_leaf(leaf.name);
      ASSERT_NE(counterpart, nullptr) << leaf.name;
      EXPECT_EQ(counterpart->is_condition, leaf.is_condition);
      EXPECT_TRUE(expr::structurally_equal(counterpart->probability,
                                           leaf.probability))
          << leaf.name << ": " << leaf.probability.to_string() << " vs "
          << counterpart->probability.to_string();
    }
  }

  // Hazards and selections.
  ASSERT_EQ(reparsed.hazards.size(), original.hazards.size());
  for (std::size_t i = 0; i < original.hazards.size(); ++i) {
    EXPECT_EQ(reparsed.hazards[i].tree, original.hazards[i].tree);
    EXPECT_EQ(reparsed.hazards[i].cost, original.hazards[i].cost);
  }
  ASSERT_EQ(reparsed.solver.has_value(), original.solver.has_value());
  EXPECT_EQ(reparsed.solver->name, original.solver->name);
  EXPECT_EQ(reparsed.solver->options, original.solver->options);
  ASSERT_EQ(reparsed.engine.has_value(), original.engine.has_value());
  EXPECT_EQ(reparsed.engine->name, original.engine->name);
  EXPECT_EQ(reparsed.engine->options, original.engine->options);
  EXPECT_EQ(reparsed.formula, original.formula);

  // Idempotence: a second write/parse trip is stable textually (the first
  // trip canonicalizes node order to the builder's discovery order).
  const std::string canonical = write_study(reparsed);
  const StudyDocument again = parse_study(canonical);
  EXPECT_EQ(write_study(again), canonical);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StudyRoundTrip,
                         ::testing::Range<std::uint64_t>(0, 25));

}  // namespace
}  // namespace safeopt::ftio
