// The annotated Mutex/MutexLock wrappers (support/mutex.h): exclusive
// locking, RAII release, try_lock, and the explicit-predicate-loop
// condition-variable wait idiom the thread-safety conventions require.
#include "safeopt/support/mutex.h"

#include <gtest/gtest.h>

#include <condition_variable>
#include <thread>
#include <vector>

namespace safeopt {
namespace {

TEST(MutexTest, ExcludesConcurrentIncrements) {
  Mutex mutex;
  int counter = 0;  // guarded by `mutex` (local, so declared by comment)
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        const MutexLock lock(mutex);
        ++counter;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter, kThreads * kPerThread);
}

TEST(MutexTest, TryLockFailsWhileHeldAndSucceedsAfterRelease) {
  Mutex mutex;
  {
    const MutexLock lock(mutex);
    bool acquired = true;
    // try_lock from another thread: the holder above must exclude it.
    std::thread prober([&] { acquired = mutex.try_lock(); });
    prober.join();
    EXPECT_FALSE(acquired);
  }
  ASSERT_TRUE(mutex.try_lock());
  mutex.unlock();
}

TEST(MutexTest, WaitReleasesTheMutexAndRechecksThePredicate) {
  Mutex mutex;
  std::condition_variable cv;
  bool ready = false;
  int observed = -1;

  std::thread waiter([&] {
    MutexLock lock(mutex);
    // The conventions' wait shape: explicit predicate loop, no lambda.
    while (!ready) lock.wait(cv);
    observed = 42;
  });

  {
    // If wait() failed to release the mutex this acquisition would
    // deadlock the test.
    const MutexLock lock(mutex);
    ready = true;
  }
  cv.notify_one();
  waiter.join();
  EXPECT_EQ(observed, 42);
}

TEST(MutexTest, LockUnlockInterleavesWithMutexLock) {
  Mutex mutex;
  mutex.lock();
  mutex.unlock();
  const MutexLock lock(mutex);  // must not deadlock after manual cycle
  SUCCEED();
}

}  // namespace
}  // namespace safeopt
