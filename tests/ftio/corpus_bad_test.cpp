// Adversarial parser corpus: every document under tests/ftio/corpus_bad is
// malformed in a way real users (or fuzzers) produce — truncated sections,
// cyclic gate references, pathological nesting, NaN/inf parameter bounds,
// unknown selections. The contract under test is uniform: parsing (or, when
// the text parses, assembling the Study) raises a *categorized* input error
// — ftio::ParseError, std::invalid_argument, or safeopt::Error with
// kInvalidInput — quickly. Never a crash, never another exception type,
// never a hang (each document must fail well inside a 5 s deadline).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <string>
#include <vector>

#include "safeopt/core/study.h"
#include "safeopt/ftio/parser.h"
#include "safeopt/ftio/study_document.h"
#include "safeopt/support/error.h"
#include "safeopt/support/strings.h"

namespace safeopt::ftio {
namespace {

std::filesystem::path corpus_dir() {
  return std::filesystem::path(SAFEOPT_SOURCE_DIR) / "tests" / "ftio" /
         "corpus_bad";
}

/// Parses `text` (or a file when `path` is set) and, if the document parses,
/// assembles the Study — the full front door a hostile document can reach.
/// Returns a description of the failure, or "" when nothing threw.
std::string reject_reason(const std::string& path, const std::string& text) {
  try {
    const StudyDocument doc =
        path.empty() ? parse_study(text) : load_study(path);
    (void)core::Study::from_document(doc);
    return "";
  } catch (const ParseError&) {
    return "ftio::ParseError";
  } catch (const Error& error) {
    EXPECT_EQ(error.category(), ErrorCategory::kInvalidInput)
        << "wrong category for " << (path.empty() ? "<memory>" : path) << ": "
        << error.what();
    return "safeopt::Error(invalid_input)";
  } catch (const std::invalid_argument&) {
    return "std::invalid_argument";
  }
  // Any other exception type (bad_alloc, logic_error, segfault before we
  // get here...) falls through to the caller as a test failure.
}

TEST(CorpusBadTest, EveryDocumentIsRejectedQuicklyWithAnInputError) {
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(corpus_dir())) {
    if (entry.path().extension() == ".ft") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  ASSERT_GE(files.size(), 20u) << "corpus_bad has gone missing";

  for (const auto& file : files) {
    const auto start = std::chrono::steady_clock::now();
    const std::string reason = reject_reason(file.string(), "");
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start);
    EXPECT_FALSE(reason.empty())
        << file.filename() << " was accepted, but everything in corpus_bad "
        << "must be rejected";
    EXPECT_LT(elapsed.count(), 5000)
        << file.filename() << " took " << elapsed.count()
        << " ms to reject (5 s deadline)";
  }
}

// The committed corpus keeps its deep-nesting documents at a few hundred
// levels for reviewability; the full 10k-deep versions are generated here.

TEST(CorpusBadTest, TenThousandDeepGateChainIsRejectedNotOverflowed) {
  std::string text = "tree deep;\ntoplevel g0;\n";
  for (int i = 0; i < 10000; ++i) {
    // concat instead of operator+: gcc 12's -Wrestrict false positive
    // (PR105651) fires on `const char* + std::string&&` under -O3.
    text += concat("g", std::to_string(i), " or g", std::to_string(i + 1),
                   " e", std::to_string(i), ";\n");
  }
  text += "g10000 or e10000 e10001;\n";
  for (int i = 0; i <= 10001; ++i) {
    text += concat("e", std::to_string(i), " prob = 0.01;\n");
  }
  text += "hazard deep cost = 1;\n";

  const auto start = std::chrono::steady_clock::now();
  const std::string reason = reject_reason("", text);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_EQ(reason, "ftio::ParseError");
  EXPECT_LT(elapsed.count(), 5000);
}

TEST(CorpusBadTest, TenThousandDeepExpressionIsRejectedNotOverflowed) {
  std::string text = "tree T;\ntoplevel top;\ntop or a b;\na prob = ";
  text.append(10000, '(');
  text += "0.1";
  text.append(10000, ')');
  text += ";\nb prob = 0.2;\nhazard T cost = 1;\n";

  const auto start = std::chrono::steady_clock::now();
  const std::string reason = reject_reason("", text);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_EQ(reason, "ftio::ParseError");
  EXPECT_LT(elapsed.count(), 5000);
}

}  // namespace
}  // namespace safeopt::ftio
