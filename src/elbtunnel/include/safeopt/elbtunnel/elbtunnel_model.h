// The full §IV case study as a library: hazards HCol (collision) and HAlr
// (false alarm) of the Elbtunnel height control, parameterized by the timer
// runtimes T1 and T2.
//
// The model is exposed through two independent derivations that the test
// suite proves consistent:
//   1. *closed form* — the exact formulas of §IV-B.3/§IV-C, built directly
//      as expressions;
//   2. *fault-tree path* — FaultTree objects for both hazards with
//      parameterized leaf/condition probabilities, run through MOCUS and the
//      core::ParameterizedQuantification machinery (Eqs. 2–4).
// Their agreement validates the library pipeline end to end on the paper's
// own system.
//
// Design variants for the Fig. 6 study and the flaw fixes:
//   kBaseline            deployed design (ODfinal armed for T2 after LBpost)
//   kWithLB4             light barrier at the tube-4 entrance stops timer 2
//   kLightBarrierAtODfinal  ODfinal consulted only during barrier occupancy
#ifndef SAFEOPT_ELBTUNNEL_ELBTUNNEL_MODEL_H
#define SAFEOPT_ELBTUNNEL_ELBTUNNEL_MODEL_H

#include "safeopt/core/cost_model.h"
#include "safeopt/core/parameter_space.h"
#include "safeopt/core/parameterized_fta.h"
#include "safeopt/core/safety_optimizer.h"
#include "safeopt/elbtunnel/model_parameters.h"
#include "safeopt/expr/expr.h"
#include "safeopt/fta/fault_tree.h"
#include "safeopt/sim/traffic.h"

namespace safeopt::elbtunnel {

/// Height-control design variants (paper §IV-C.2 and its fixes).
enum class Design {
  kBaseline,
  kWithLB4,
  kLightBarrierAtODfinal,
};

class ElbtunnelModel {
 public:
  explicit ElbtunnelModel(ModelParameters parameters = {});

  [[nodiscard]] const ModelParameters& parameters() const noexcept {
    return params_;
  }

  /// The free parameters: T1, T2 in minutes over compact intervals.
  [[nodiscard]] core::ParameterSpace parameter_space() const;

  /// The engineers' initial configuration (T1 = T2 = 30 min).
  [[nodiscard]] expr::ParameterAssignment engineers_guess() const;

  // ---- building blocks (paper §IV-C) --------------------------------------

  /// P(OT1)(T1) = 1 − P_OHV1(Time <= T1), transit ~ TruncNormal(4, 2).
  [[nodiscard]] expr::Expr p_overtime1() const;
  /// P(OT2)(T2), same distribution over zone 2.
  [[nodiscard]] expr::Expr p_overtime2() const;
  /// P(FDLBpost)(T1) = 1 − exp(−λ_FD·T1): a spurious LBpost trigger during
  /// the T1 arming window.
  [[nodiscard]] expr::Expr p_fd_lbpost() const;
  /// P(HVODfinal)(T2) for a design variant: probability a high vehicle
  /// passes under ODfinal while it is armed.
  [[nodiscard]] expr::Expr p_hv_odfinal(Design design) const;

  // ---- hazards, closed form (paper §IV-B.3) --------------------------------

  /// P(HCol)(T1,T2) = Pconst1 + P(OHVcrit)·(P(OT1) + (1−P(OT1))·P(OT2)).
  [[nodiscard]] expr::Expr collision_probability() const;
  /// P(HAlr)(T1,T2) = Pconst2 + (P(OHV) + (1−P(OHV))·P(FDLBpre)·
  ///                  P(FDLBpost)(T1)) · P(HVODfinal)(T2).
  [[nodiscard]] expr::Expr false_alarm_probability(
      Design design = Design::kBaseline) const;

  /// P(false alarm | an OHV is present)(T2) — the Fig. 6 quantity: the
  /// constraint P(OHV) is forced to 1 ("assuming that an OHV is in the
  /// controlled area").
  [[nodiscard]] expr::Expr false_alarm_given_ohv(Design design) const;

  // ---- cost model and optimizer (paper §IV-C.1) ----------------------------

  /// f_cost(T1,T2) = 100000·P(HCol) + 1·P(HAlr).
  [[nodiscard]] core::CostModel cost_model() const;
  [[nodiscard]] core::SafetyOptimizer optimizer() const;

  // ---- fault-tree derivation (paper §IV-B.2) -------------------------------

  /// The HCol tree: OR(residual, INHIBIT(OT1 | OHVcritical),
  /// INHIBIT(OT2 | OHVcritical)).
  [[nodiscard]] fta::FaultTree collision_tree() const;
  /// The HAlr tree: OR(residual, INHIBIT(HVODfinal | ODfinal_armed)).
  [[nodiscard]] fta::FaultTree false_alarm_tree() const;

  /// Parameterized leaf probabilities for collision_tree(). The returned
  /// object references `tree`; keep the tree alive.
  [[nodiscard]] core::ParameterizedQuantification collision_quantification(
      const fta::FaultTree& tree) const;
  [[nodiscard]] core::ParameterizedQuantification false_alarm_quantification(
      const fta::FaultTree& tree) const;

  // ---- simulation bridge ---------------------------------------------------

  /// Traffic-simulator configuration consistent with the analytic model at
  /// the given timer runtimes.
  [[nodiscard]] sim::TrafficConfig traffic_config(double t1_min, double t2_min,
                                                  Design design) const;

 private:
  [[nodiscard]] expr::Expr transit_survival(const char* parameter) const;

  ModelParameters params_;
};

/// Maps the model's design enum onto the simulator's.
[[nodiscard]] sim::DesignVariant to_sim_variant(Design design) noexcept;

}  // namespace safeopt::elbtunnel

#endif  // SAFEOPT_ELBTUNNEL_ELBTUNNEL_MODEL_H
