// Discrete-event model of the Elbtunnel northern-entrance height control
// (paper §IV, Fig. 4). This is the substitute for the real installation: the
// simulator samples exactly the stochastic model the paper's closed-form
// analysis integrates — Poisson vehicle streams, truncated-normal zone
// transit times, Poisson sensor false detections — and plays them through
// the control logic, so simulated hazard rates must agree with the analytic
// parameterized probabilities (asserted by tests and the
// `montecarlo_validation` bench).
//
// Modelled behaviour:
//  * OHV passes LBpre -> LBpost armed for timer1 minutes (arming is counted,
//    i.e. the *fixed* design of the paper's §IV-A; the flawed single-flag
//    design lives in src/modelcheck where its counterexample is found);
//  * OHV passes LBpost while armed -> ODfinal armed per design variant:
//      kBaseline          for timer2 minutes,
//      kWithLB4           until the OHV crosses the new light barrier at the
//                         tube-4 entrance (timer2 remains the upper bound),
//      kLightBarrierAtODfinal only while an OHV physically passes the
//                         barrier at ODfinal (lb_passage_window_min);
//  * high vehicle on a left lane under an armed ODfinal -> false alarm
//    (the paper's dominating HVODfinal cut set);
//  * light-barrier false detections arm the system spuriously (the
//    FDLBpre·FDLBpost path of the paper's constraint probability);
//  * a wrongly-routed OHV reaching the old tubes with ODfinal disarmed is a
//    collision-possible event (the OT1/OT2 cut sets).
#ifndef SAFEOPT_SIM_TRAFFIC_H
#define SAFEOPT_SIM_TRAFFIC_H

#include <cstdint>

namespace safeopt::sim {

enum class DesignVariant {
  kBaseline,              // paper's deployed design
  kWithLB4,               // fix 1: light barrier at tube-4 entrance
  kLightBarrierAtODfinal  // fix 2: light barrier at ODfinal
};

struct TrafficConfig {
  /// Simulated horizon in minutes.
  double horizon_minutes = 60.0 * 24.0 * 30.0;

  /// OHV arrivals at LBpre (Poisson rate per minute).
  double ohv_arrival_rate_per_min = 0.01;
  /// Fraction of OHVs illegally heading for the west/mid tubes
  /// (the paper's P(OHV critical) as a per-passage fraction).
  double ohv_wrong_route_fraction = 0.0;

  /// Zone transit times: Normal(mean, sigma) truncated to [0, inf) —
  /// paper §IV-C: µ = 4 min, σ = 2 min for both zones.
  double zone_transit_mean_min = 4.0;
  double zone_transit_sigma_min = 2.0;

  /// Timer runtimes (the free parameters T1, T2).
  double timer1_min = 30.0;
  double timer2_min = 30.0;

  /// High vehicles passing under ODfinal on a left lane (Poisson / minute).
  double hv_left_lane_rate_per_min = 0.13;
  /// False-detection rate of each light barrier (Poisson / minute).
  double lb_false_detection_rate_per_min = 0.0;
  /// Probability that an overhead detector misses a vehicle (MD failure).
  double od_miss_detection_prob = 0.0;
  /// How long an OHV occupies the ODfinal light barrier (minutes), for
  /// kLightBarrierAtODfinal.
  double lb_passage_window_min = 0.3;

  DesignVariant variant = DesignVariant::kBaseline;
};

struct TrafficStatistics {
  std::uint64_t ohv_arrivals = 0;
  std::uint64_t correct_ohvs = 0;
  /// Correct OHVs whose armed window contained at least one (false) alarm.
  std::uint64_t correct_ohvs_alarmed = 0;
  std::uint64_t wrong_ohvs = 0;
  std::uint64_t wrong_ohvs_stopped = 0;
  /// Wrong OHVs that reached the old tubes with the system disarmed.
  std::uint64_t collision_possible = 0;
  /// OHVs whose zone-1 transit exceeded timer1 (own-timer basis).
  std::uint64_t overtime1 = 0;
  /// OHVs whose zone-2 transit exceeded timer2 (own-timer basis).
  std::uint64_t overtime2 = 0;
  /// OHVs finding LBpost disarmed on arrival (global arming, i.e. another
  /// OHV's timer may still cover them).
  std::uint64_t unprotected_at_lbpost = 0;
  std::uint64_t false_alarms = 0;
  std::uint64_t hv_left_lane_passages = 0;

  [[nodiscard]] double correct_ohv_alarm_fraction() const noexcept;
  [[nodiscard]] double overtime1_fraction() const noexcept;
  [[nodiscard]] double overtime2_fraction() const noexcept;
};

/// Runs one simulation. Deterministic for a fixed (config, seed) pair.
[[nodiscard]] TrafficStatistics simulate_height_control(
    const TrafficConfig& config, std::uint64_t seed = 0xe1b7u);

}  // namespace safeopt::sim

#endif  // SAFEOPT_SIM_TRAFFIC_H
