// Service-layer fault injection (docs/robustness.md, docs/service.md): the
// serve subsystem must turn every runtime fault into the PR 7 error
// taxonomy over HTTP — client disconnects cancel the request's own work,
// full admission queues shed synchronously with 429, engine-budget
// downgrades surface in the response diagnostics, and deadlines map to 504
// — while the server itself keeps answering.
#include <gtest/gtest.h>

#include <chrono>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "safeopt/serve/server.h"
#include "serve/serve_client.h"

namespace safeopt::serve {
namespace {

using tstu::http_request;
using tstu::json_document;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string corpus_1k_text() {
  return read_file(std::string(SAFEOPT_SOURCE_DIR) +
                   "/examples/corpus/corpus_1k.ft");
}

std::string cooling_system_text() {
  return read_file(std::string(SAFEOPT_SOURCE_DIR) +
                   "/examples/models/cooling_system.ft");
}

/// Sends `body` to /v1/quantify and immediately closes the socket without
/// reading the response — a client that went away mid-request.
void fire_and_disconnect(std::uint16_t port, const std::string& body) {
  TcpSocket socket = TcpSocket::connect_loopback(port);
  socket.write_all(concat("POST /v1/quantify HTTP/1.1\r\nContent-Length: ",
                          std::to_string(body.size()), "\r\n\r\n", body));
  socket.close();
}

TEST(ServeFaultsTest, ClientDisconnectCancelsTheRequestsOwnWork) {
  ServerOptions options;
  options.threads = 1;
  Server server(options);
  server.start();

  // corpus_1k's engine work is far from instant; a vanished client must
  // abort it at the first cooperative checkpoint instead of computing an
  // answer nobody reads.
  const std::string body =
      "{\"document\": " + json_document(corpus_1k_text()) + "}";
  fire_and_disconnect(server.port(), body);

  // The abort surfaces either as a thrown Error(kCancelled) (counted 499)
  // or as an aborted partial result (non-reusable, so never cached). Both
  // end with the scheduler idle again well before the full computation
  // could have finished.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < deadline) {
    const SchedulerStats scheduler = server.scheduler_stats();
    if (scheduler.completed >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GE(server.scheduler_stats().completed, 1u);

  // Nothing request-specific leaked into the cache: a fresh, patient client
  // gets a clean, complete answer.
  const auto reply = http_request(server.port(), "POST", "/v1/quantify", body);
  EXPECT_EQ(reply.status, 200) << reply.raw;
  EXPECT_EQ(reply.body.find("\"aborted\": true"), std::string::npos)
      << "cancelled partial results must not be served to other clients";
  server.stop();
}

TEST(ServeFaultsTest, FullAdmissionQueueShedsWith429) {
  ServerOptions options;
  // Two workers so one can keep reading connections (reads run on the
  // pool too), but a single analysis slot: admission is what must shed.
  options.threads = 2;
  options.max_concurrent = 1;
  options.max_queue = 1;
  Server server(options);
  server.start();

  // One slow request occupies the single analysis slot: a huge adaptive-MC
  // budget with an unreachable target keeps it sampling until cancelled.
  const std::string slow_body =
      "{\"document\": " + json_document(std::string(tstu::kConstDoc)) +
      ", \"engine\": \"mc_adaptive\", \"engine_options\": "
      "[\"budget=400000000\", \"target_halfwidth=1e-12\", \"batch=4096\"]}";
  TcpSocket slow = TcpSocket::connect_loopback(server.port());
  slow.write_all(concat("POST /v1/quantify HTTP/1.1\r\nContent-Length: ",
                        std::to_string(slow_body.size()), "\r\n\r\n",
                        slow_body));

  // Wait until the slow job is actually running (not merely queued).
  const auto running_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < running_deadline &&
         server.scheduler_stats().running == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_EQ(server.scheduler_stats().running, 1u);

  // The next request queues (queue bound 1)...
  const std::string fast_body =
      "{\"document\": " + json_document(std::string(tstu::kConstDoc)) + "}";
  TcpSocket queued = TcpSocket::connect_loopback(server.port());
  queued.write_all(concat("POST /v1/quantify HTTP/1.1\r\nContent-Length: ",
                          std::to_string(fast_body.size()), "\r\n\r\n",
                          fast_body));
  const auto queued_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < queued_deadline &&
         server.scheduler_stats().queued == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  // ... and the one after that is shed synchronously with 429 + the
  // resource_exhausted taxonomy category in the body.
  const auto shed =
      http_request(server.port(), "POST", "/v1/quantify", fast_body);
  EXPECT_EQ(shed.status, 429) << shed.raw;
  EXPECT_NE(shed.body.find("\"category\": \"resource_exhausted\""),
            std::string::npos)
      << shed.body;
  EXPECT_GE(server.stats().shed, 1u);
  EXPECT_GE(server.scheduler_stats().shed, 1u);

  // Cancel the hog so teardown is quick, and let the queued request finish.
  slow.close();
  server.stop();
}

TEST(ServeFaultsTest, EngineBudgetDowngradeSurfacesInTheHttpDiagnostics) {
  ServerOptions options;
  options.threads = 1;
  Server server(options);
  server.start();

  // The CLI's graceful-degradation smoke case, over HTTP: an impossible
  // 2-node BDD budget forces the fallback engine; the response is still 200
  // with the downgrade recorded in the result diagnostics.
  const std::string body =
      "{\"document\": " + json_document(cooling_system_text()) +
      ", \"engine\": \"bdd\", \"engine_options\": [\"bdd_node_budget=2\", "
      "\"fallback=mc_adaptive\", \"trials=65536\", "
      "\"target_halfwidth=0.1\"]}";
  const auto reply = http_request(server.port(), "POST", "/v1/quantify", body);
  EXPECT_EQ(reply.status, 200) << reply.raw;
  EXPECT_NE(reply.body.find("\"diagnostics\""), std::string::npos)
      << reply.body;
  EXPECT_NE(reply.body.find("mc_adaptive"), std::string::npos) << reply.body;
  server.stop();
}

TEST(ServeFaultsTest, DeadlineExceededMapsTo504) {
  ServerOptions options;
  options.threads = 1;
  Server server(options);
  server.start();

  // corpus_1k under a 1 ms deadline: engine construction hits the deadline
  // checkpoint and aborts with the kDeadlineExceeded taxonomy → 504.
  const std::string body =
      "{\"document\": " + json_document(corpus_1k_text()) +
      ", \"deadline_ms\": 1}";
  const auto reply = http_request(server.port(), "POST", "/v1/quantify", body);
  EXPECT_EQ(reply.status, 504) << reply.raw;
  EXPECT_NE(reply.body.find("\"category\": \"deadline_exceeded\""),
            std::string::npos)
      << reply.body;
  EXPECT_GE(server.stats().deadline, 1u);

  // The server is still healthy afterwards.
  const auto stats = http_request(server.port(), "GET", "/v1/stats", "");
  EXPECT_EQ(stats.status, 200);
  server.stop();
}

TEST(ServeFaultsTest, DefaultDeadlineAppliesWhenTheRequestCarriesNone) {
  ServerOptions options;
  options.threads = 1;
  options.default_deadline_ms = 1;
  Server server(options);
  server.start();

  const std::string body =
      "{\"document\": " + json_document(corpus_1k_text()) + "}";
  const auto reply = http_request(server.port(), "POST", "/v1/quantify", body);
  EXPECT_EQ(reply.status, 504) << reply.raw;
  server.stop();
}

}  // namespace
}  // namespace safeopt::serve
