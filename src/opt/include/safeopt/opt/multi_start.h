// Multi-start wrapper: runs a local solver from several deterministic
// quasi-random starting points and keeps the best result. Turns any local
// method (Nelder–Mead, gradient descent, ...) into a practical global one on
// the compact boxes safety optimization works with.
#ifndef SAFEOPT_OPT_MULTI_START_H
#define SAFEOPT_OPT_MULTI_START_H

#include <cstdint>
#include <functional>
#include <memory>

#include "safeopt/opt/problem.h"

namespace safeopt::opt {

class MultiStart final : public Optimizer {
 public:
  /// Factory invoked once per start with that start's initial point.
  using LocalSolverFactory =
      std::function<std::unique_ptr<Optimizer>(std::vector<double> initial)>;

  MultiStart(LocalSolverFactory factory, std::size_t starts,
             std::uint64_t seed = 0x5eedbed);

  [[nodiscard]] OptimizationResult minimize(
      const Problem& problem) const override;
  [[nodiscard]] std::string name() const override { return "MultiStart"; }

 private:
  LocalSolverFactory factory_;
  std::size_t starts_;
  std::uint64_t seed_;
};

}  // namespace safeopt::opt

#endif  // SAFEOPT_OPT_MULTI_START_H
