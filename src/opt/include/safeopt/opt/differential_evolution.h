// Differential evolution (rand/1/bin): population-based global optimizer.
// The strongest general-purpose choice here when the cost surface has
// plateaus or multiple basins and dimensions beyond what grid search covers.
// Deterministic under a fixed seed.
#ifndef SAFEOPT_OPT_DIFFERENTIAL_EVOLUTION_H
#define SAFEOPT_OPT_DIFFERENTIAL_EVOLUTION_H

#include <cstdint>

#include "safeopt/opt/problem.h"

namespace safeopt::opt {

class DifferentialEvolution final : public Optimizer {
 public:
  struct Settings {
    std::size_t population = 0;      // 0 => max(15, 10·dimension)
    double differential_weight = 0.7;   // F
    double crossover_rate = 0.9;        // CR
    std::size_t generations = 200;
    /// Stop early when the population's best-to-worst value spread falls
    /// below this.
    double spread_tolerance = 1e-12;
    /// Generation-synchronous evaluation: every generation's trials are
    /// produced first and then evaluated in one Problem::evaluate_batch
    /// call (the compiled-tape / thread-pool fast path), with selection
    /// against the *previous* generation — textbook synchronous DE. The
    /// default (false) keeps the steady-state variant above, where an
    /// accepted trial can serve as a donor later in the same generation;
    /// the two trajectories differ, so this is an explicit opt-in. For a
    /// fixed seed the synchronous result is bitwise-independent of how
    /// the batch is parallelized.
    bool synchronous_batch = false;
  };

  DifferentialEvolution() : DifferentialEvolution(Settings{}) {}
  explicit DifferentialEvolution(Settings settings,
                                 std::uint64_t seed = 0xd1ffe);

  [[nodiscard]] OptimizationResult minimize(
      const Problem& problem) const override;
  [[nodiscard]] std::string name() const override {
    return "DifferentialEvolution";
  }

 private:
  Settings settings_;
  std::uint64_t seed_;
};

}  // namespace safeopt::opt

#endif  // SAFEOPT_OPT_DIFFERENTIAL_EVOLUTION_H
