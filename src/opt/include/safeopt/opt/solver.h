// The pluggable solver seam (paper §III-B: "This problem can then be solved
// with different methods").
//
// `Solver` is the name-keyed, configuration-driven interface over the
// numeric methods of src/opt. Where `Optimizer` (problem.h) is the minimal
// "minimize this problem" vtable each method implements, `Solver` adds the
// pieces a composable optimization *service* needs:
//
//   * one shared `SolverConfig` (budget / tolerance / seed / threads /
//     starting point) plus name-keyed typed extras for per-solver knobs, so
//     callers can select and tune any method without naming its type;
//   * a progress observer (iteration, evaluations used, best-so-far) honored
//     uniformly by every solver — instrumentation wraps the problem, so the
//     numeric trajectory is bitwise-unchanged whether or not anyone listens;
//   * an evaluation budget enforced uniformly (at batch granularity), with
//     the best-so-far point returned when the budget runs out;
//   * capability traits (dimension limits, seed consumption) validated
//     before the run, failing fast with std::invalid_argument — e.g.
//     golden_section on a multi-dimensional box;
//   * `SolverRegistry`, the name -> factory table behind
//     `core::Study::solver("nelder_mead")`, extensible at runtime via
//     `SolverRegistrar` (see docs/extending.md).
//
// Every solver in src/opt registers itself here; meta-solvers (multi_start)
// are registry consumers that wrap any inner solver by name.
#ifndef SAFEOPT_OPT_SOLVER_H
#define SAFEOPT_OPT_SOLVER_H

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "safeopt/opt/problem.h"

namespace safeopt {
class ThreadPool;
class ExecutionControl;  // support/execution.h
}

namespace safeopt::opt {

/// One progress report. `best_point` is only valid during the callback.
struct ProgressEvent {
  std::size_t iteration = 0;    // monotone observer-event index (0-based)
  std::size_t evaluations = 0;  // objective evaluations used so far
  double best_value = 0.0;      // best objective value seen so far
  std::span<const double> best_point;
};

/// Called whenever the best-so-far value improves (per evaluation on the
/// scalar path, per batch on the batched path). Invoked under the
/// instrumentation lock: keep it cheap and do not call back into the solver.
/// With a thread pool attached, events from concurrent evaluations arrive in
/// a scheduling-dependent order, but `best_value` is monotone regardless.
using ProgressObserver = std::function<void(const ProgressEvent&)>;

/// The shared configuration every registered solver consumes. Common knobs
/// are public fields; per-solver settings travel as name-keyed typed extras
/// (unknown keys are ignored, so one config can parameterize a whole sweep
/// of solvers). Default-constructed, it reproduces each solver's legacy
/// defaults bit for bit.
struct SolverConfig {
  /// Outer-iteration cap (maps onto StoppingCriteria::max_iterations).
  std::size_t max_iterations = 1000;
  /// Convergence tolerance (maps onto StoppingCriteria::tolerance).
  double tolerance = 1e-10;
  /// Objective-evaluation budget; 0 = unlimited. Enforced uniformly by the
  /// instrumentation layer at batch granularity: a batch that begins under
  /// budget runs to completion, the reported evaluation count never exceeds
  /// the budget, and an exhausted run returns the best point seen with
  /// converged = false.
  std::size_t max_evaluations = 0;
  /// Seed for stochastic solvers; nullopt keeps the solver's default seed
  /// (which is what the legacy enum path used).
  std::optional<std::uint64_t> seed;
  /// Optional worker pool for solvers that parallelize (multi_start). Not
  /// owned; must outlive the solve call.
  ThreadPool* pool = nullptr;
  /// Starting point; empty = solver default (the box center). When set, it
  /// must match the problem dimension — solve() rejects mismatches even
  /// for solvers without a start-point concept (grid_search,
  /// golden_section, which do not read it): a wrong-sized point is a
  /// caller mistake worth surfacing, not ignoring.
  std::vector<double> initial;
  /// Progress observer; empty = no instrumentation (zero overhead).
  ProgressObserver observer;
  /// Cooperative deadline/cancellation, checked by the instrumentation
  /// layer at evaluation granularity: once the control fires, further
  /// objective calls report +inf without evaluating, the solver winds down
  /// on its own, and solve() returns the best point seen with
  /// converged = false and a message naming the abort reason — partial
  /// results, never an exception, exactly like budget exhaustion. Not
  /// owned; must outlive the solve call. nullptr (the default) keeps the
  /// uninstrumented fast path bit-identical and overhead-free.
  const ExecutionControl* control = nullptr;

  /// Sets a numeric per-solver extra (e.g. "points_per_dimension" for
  /// grid_search). Returns *this for chaining.
  SolverConfig& set(std::string_view key, double value);
  /// Sets a string per-solver extra (e.g. "inner" for multi_start).
  SolverConfig& set(std::string_view key, std::string value);
  /// Parses a command-line extra of the form "key=value" (the safeopt CLI's
  /// `--extra starts=16`). A value that parses entirely as a double becomes
  /// a numeric extra, anything else a string extra — matching the two set()
  /// overloads, so count_or/number_or validation applies at consumption
  /// ("starts=-3" stores -3 and count_or("starts") then rejects it with a
  /// message naming the key). Throws std::invalid_argument when the
  /// argument has no '=', an empty key, or an empty value.
  SolverConfig& set_extra_argument(std::string_view key_equals_value);

  /// True when `value` *starts* like a number ([0-9.+-]) — used by
  /// set_extra_argument and the document-option mapping to reject typos
  /// such as "8x"/"1_000" instead of silently storing them as string
  /// extras that count_or/number_or would ignore.
  [[nodiscard]] static bool numeric_looking(std::string_view value) noexcept;

  [[nodiscard]] bool has(std::string_view key) const noexcept;
  /// The numeric extra under `key`, or `fallback` when absent.
  [[nodiscard]] double number_or(std::string_view key,
                                 double fallback) const noexcept;
  /// The numeric extra under `key` as a count (sizes, iterations, starts).
  /// Throws std::invalid_argument — naming the key — when the stored value
  /// is not a finite non-negative integer, so a config-file typo surfaces
  /// as a clear error instead of a double→unsigned cast gone wrong.
  [[nodiscard]] std::size_t count_or(std::string_view key,
                                     std::size_t fallback) const;
  /// The string extra under `key`, or `fallback` when absent.
  [[nodiscard]] std::string string_or(std::string_view key,
                                      std::string_view fallback) const;

  /// The classic stopping rule this config describes.
  [[nodiscard]] StoppingCriteria stopping() const noexcept {
    return StoppingCriteria{max_iterations, tolerance};
  }

 private:
  std::map<std::string, double, std::less<>> numbers_;
  std::map<std::string, std::string, std::less<>> strings_;
};

/// Static capabilities of one solver, validated before every run.
struct SolverTraits {
  /// Largest supported problem dimension; 0 = unlimited. golden_section
  /// sets 1: its bracketing argument only exists on an interval.
  std::size_t max_dimension = 0;
  /// True when the solver draws random numbers (honors SolverConfig::seed).
  bool stochastic = false;
};

/// The polymorphic solver interface. Instances are cheap, stateless
/// configuration-to-run adapters: all run state lives on the stack of
/// solve(), so one instance may be used from several threads.
class Solver {
 public:
  virtual ~Solver() = default;

  /// The registry name ("nelder_mead", "grid_search", ...).
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  [[nodiscard]] virtual SolverTraits traits() const noexcept { return {}; }

  /// Validates the problem against traits() and the config (throws
  /// std::invalid_argument with an actionable message on mismatch — e.g.
  /// golden_section on a multi-dimensional box), instruments the problem
  /// when an observer or evaluation budget is configured, and runs the
  /// numeric method. Without observer/budget the problem is passed through
  /// untouched, so results are bit-identical to calling the underlying
  /// Optimizer directly with the same settings.
  [[nodiscard]] OptimizationResult solve(const Problem& problem,
                                         const SolverConfig& config = {}) const;

  /// The validation half of solve(): throws std::invalid_argument when this
  /// solver cannot run on `problem`. Meta-solvers call it on their inner
  /// solver before fanning out.
  void check(const Problem& problem) const;

 protected:
  Solver() = default;
  Solver(const Solver&) = default;
  Solver& operator=(const Solver&) = default;

 private:
  /// The numeric method. `problem` is pre-validated (and instrumented when
  /// the config asks for observation or budgeting).
  [[nodiscard]] virtual OptimizationResult run(
      const Problem& problem, const SolverConfig& config) const = 0;
};

/// Process-wide name -> factory table. The nine solvers of src/opt are
/// pre-registered; add() extends it at runtime (last registration wins, so
/// applications can override a built-in). All methods are thread-safe.
class SolverRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Solver>()>;

  /// Registers `factory` under `name`; returns false when it replaced an
  /// existing registration. Precondition: name non-empty, factory callable.
  static bool add(std::string name, Factory factory);

  /// Creates the named solver. Throws std::invalid_argument listing
  /// available() when the name is unknown.
  [[nodiscard]] static std::unique_ptr<Solver> create(std::string_view name);

  [[nodiscard]] static bool contains(std::string_view name);

  /// Sorted names of every registered solver.
  [[nodiscard]] static std::vector<std::string> available();
};

/// Self-registration helper for user solvers:
///   const opt::SolverRegistrar reg("my_solver", [] { ... });
/// at namespace scope of the application registers before main() runs.
/// (The built-in solvers are registered eagerly by the registry itself —
/// static initializers in a static library member would be dropped by the
/// linker unless their object file is otherwise referenced.)
struct SolverRegistrar {
  SolverRegistrar(std::string name, SolverRegistry::Factory factory) {
    SolverRegistry::add(std::move(name), std::move(factory));
  }
};

/// Bridges a Solver + config back onto the classic Optimizer vtable, e.g.
/// for MultiStart's per-start local-solver factory.
class SolverAdapter final : public Optimizer {
 public:
  SolverAdapter(std::unique_ptr<Solver> solver, SolverConfig config)
      : solver_(std::move(solver)), config_(std::move(config)) {}

  [[nodiscard]] OptimizationResult minimize(
      const Problem& problem) const override {
    return solver_->solve(problem, config_);
  }
  [[nodiscard]] std::string name() const override {
    return std::string(solver_->name());
  }

 private:
  std::unique_ptr<Solver> solver_;
  SolverConfig config_;
};

}  // namespace safeopt::opt

#endif  // SAFEOPT_OPT_SOLVER_H
