# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/safeopt_bdd_tests[1]_include.cmake")
include("/root/repo/build/safeopt_core_tests[1]_include.cmake")
include("/root/repo/build/safeopt_elbtunnel_tests[1]_include.cmake")
include("/root/repo/build/safeopt_expr_tests[1]_include.cmake")
include("/root/repo/build/safeopt_fta_tests[1]_include.cmake")
include("/root/repo/build/safeopt_ftio_tests[1]_include.cmake")
include("/root/repo/build/safeopt_mc_tests[1]_include.cmake")
include("/root/repo/build/safeopt_modelcheck_tests[1]_include.cmake")
include("/root/repo/build/safeopt_opt_tests[1]_include.cmake")
include("/root/repo/build/safeopt_sim_tests[1]_include.cmake")
include("/root/repo/build/safeopt_stats_tests[1]_include.cmake")
include("/root/repo/build/safeopt_support_tests[1]_include.cmake")
