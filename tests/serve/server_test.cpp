// End-to-end service tests over real loopback HTTP: response parity with
// the offline analysis graph (and therefore with the CLI's --json output,
// which prints the same rendered bytes), the error surface, multi-tenant
// accounting, and the compile-amortization acceptance bar (>= 99% cache
// hits on repeated documents).
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "safeopt/serve/analysis_graph.h"
#include "safeopt/serve/server.h"
#include "safeopt/support/json.h"
#include "serve/serve_client.h"

namespace safeopt::serve {
namespace {

using tstu::http_request;
using tstu::json_document;

const std::string kDoc{tstu::kParamDoc};

ServerOptions small_server_options() {
  ServerOptions options;
  options.port = 0;
  options.threads = 2;
  return options;
}

std::string quantify_body(const std::string& model) {
  return "{\"document\": " + json_document(kDoc) + ", \"model\": \"" + model +
         "\"}";
}

TEST(ServerTest, QuantifyMatchesTheOfflineGraphByteForByte) {
  Server server(small_server_options());
  server.start();

  const auto reply =
      http_request(server.port(), "POST", "/v1/quantify", quantify_body("m"));
  EXPECT_EQ(reply.status, 200) << reply.raw;

  AnalysisOptions options;
  options.model = "m";
  AnalysisGraph offline(1 << 20);
  EXPECT_EQ(reply.body, offline.quantify(kDoc, options, nullptr))
      << "the HTTP body and the offline render must be byte-identical";
  server.stop();
}

TEST(ServerTest, OptimizeAndValidateSucceed) {
  Server server(small_server_options());
  server.start();

  const auto validate =
      http_request(server.port(), "POST", "/v1/validate", quantify_body("m"));
  EXPECT_EQ(validate.status, 200) << validate.raw;
  EXPECT_NE(validate.body.find("\"problems\": []"), std::string::npos);

  const auto optimize = http_request(
      server.port(), "POST", "/v1/optimize",
      "{\"document\": " + json_document(kDoc) +
          ", \"model\": \"m\", \"seed\": 7}");
  EXPECT_EQ(optimize.status, 200) << optimize.raw;
  EXPECT_NE(optimize.body.find("\"optimum\""), std::string::npos);
  EXPECT_NE(optimize.body.find("\"converged\""), std::string::npos);
  server.stop();
}

TEST(ServerTest, RepeatedDocumentsAmortizeAtLeast99PercentOfCompiles) {
  Server server(small_server_options());
  server.start();

  constexpr int kRequests = 110;
  for (int i = 0; i < kRequests; ++i) {
    const auto reply =
        http_request(server.port(), "POST", "/v1/quantify", quantify_body("m"));
    ASSERT_EQ(reply.status, 200) << reply.raw;
  }

  const CacheStats cache = server.cache_stats();
  ASSERT_EQ(cache.passes.count("compile"), 1u);
  const auto& compile = cache.passes.at("compile");
  EXPECT_EQ(compile.misses, 1u) << "one compile for one document";
  const double amortized =
      static_cast<double>(compile.hits) /
      static_cast<double>(compile.hits + compile.misses);
  EXPECT_GE(amortized, 0.99) << compile.hits << " hits / " << compile.misses
                             << " misses";
  server.stop();
}

TEST(ServerTest, StatsEndpointReportsBuildCacheAndScheduler) {
  Server server(small_server_options());
  server.start();
  (void)http_request(server.port(), "POST", "/v1/quantify",
                     quantify_body("m"), "X-Tenant: team-a\r\n");

  const auto reply = http_request(server.port(), "GET", "/v1/stats", "");
  EXPECT_EQ(reply.status, 200) << reply.raw;

  const JsonValue stats = JsonValue::parse(reply.body);
  ASSERT_TRUE(stats.is_object());
  ASSERT_NE(stats.find("build"), nullptr);
  EXPECT_NE(stats.find("build")->as_string().find("safeopt"),
            std::string::npos);
  ASSERT_NE(stats.find("requests"), nullptr);
  EXPECT_GE(stats.find("requests")->find("ok")->as_number(), 1.0);
  ASSERT_NE(stats.find("cache"), nullptr);
  EXPECT_GT(stats.find("cache")->find("entries")->as_number(), 0.0);
  // The tenant from the X-Tenant header is accounted by name.
  const JsonValue* tenants = stats.find("scheduler")->find("tenants");
  ASSERT_NE(tenants, nullptr);
  EXPECT_NE(tenants->find("team-a"), nullptr) << reply.body;
  // The pass list is exposed for introspection.
  ASSERT_NE(stats.find("analysis_passes"), nullptr);
  EXPECT_EQ(stats.find("analysis_passes")->items().size(),
            analysis_passes().size());
  server.stop();
}

TEST(ServerTest, MixedTenantLoadKeepsResultsIdenticalAcrossTenants) {
  ServerOptions options = small_server_options();
  options.tenant_weights = {{"heavy", 3.0}, {"light", 1.0}};
  Server server(options);
  server.start();

  std::string heavy_body;
  std::string light_body;
  for (int i = 0; i < 6; ++i) {
    const bool heavy = i % 2 == 0;
    const auto reply = http_request(
        server.port(), "POST", "/v1/quantify", quantify_body("m"),
        heavy ? "X-Tenant: heavy\r\n" : "X-Tenant: light\r\n");
    ASSERT_EQ(reply.status, 200) << reply.raw;
    (heavy ? heavy_body : light_body) = reply.body;
  }
  EXPECT_EQ(heavy_body, light_body)
      << "tenancy affects scheduling, never results";

  // The client sees EOF when the job closes its socket, a moment before the
  // scheduler books the job as completed — poll briefly for the counters.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  SchedulerStats scheduler = server.scheduler_stats();
  while (std::chrono::steady_clock::now() < deadline &&
         (scheduler.tenants.at("heavy").completed < 3u ||
          scheduler.tenants.at("light").completed < 3u)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    scheduler = server.scheduler_stats();
  }
  EXPECT_EQ(scheduler.tenants.at("heavy").completed, 3u);
  EXPECT_EQ(scheduler.tenants.at("light").completed, 3u);
  EXPECT_EQ(scheduler.tenants.at("heavy").weight, 3.0);
  server.stop();
}

TEST(ServerTest, ErrorSurface) {
  Server server(small_server_options());
  server.start();
  const auto port = server.port();

  EXPECT_EQ(http_request(port, "POST", "/v1/nope", "{}").status, 404);
  EXPECT_EQ(http_request(port, "GET", "/v1/quantify", "").status, 405);
  EXPECT_EQ(http_request(port, "POST", "/v1/stats", "{}").status, 405);

  const auto bad_json =
      http_request(port, "POST", "/v1/quantify", "this is not json");
  EXPECT_EQ(bad_json.status, 400);
  EXPECT_NE(bad_json.body.find("\"category\": \"invalid_input\""),
            std::string::npos)
      << bad_json.body;

  EXPECT_EQ(http_request(port, "POST", "/v1/quantify", "{}").status, 400)
      << "a request without a document is invalid";

  const auto parse_error = http_request(
      port, "POST", "/v1/quantify",
      "{\"document\": \"tree Broken;\\ntoplevel Missing;\\n\"}");
  EXPECT_EQ(parse_error.status, 400) << parse_error.raw;

  // Unknown at-parameter: maps std::invalid_argument onto 400.
  const auto bad_at = http_request(
      port, "POST", "/v1/quantify",
      "{\"document\": " + json_document(kDoc) +
          ", \"at\": {\"NoSuchParam\": 0.5}}");
  EXPECT_EQ(bad_at.status, 400) << bad_at.raw;
  server.stop();
}

TEST(ServerTest, StalledClientDoesNotBlockOtherConnections) {
  // Request reading happens on the worker pool, not the accept thread: a
  // client that connects and sends nothing (slowloris) must not head-of-
  // line block other clients for its whole 10 s receive timeout.
  Server server(small_server_options());
  server.start();

  TcpSocket stalled = TcpSocket::connect_loopback(server.port());
  stalled.write_all("POST /v1/quantify HTTP/1.1\r\n");  // never finishes

  const auto begin = std::chrono::steady_clock::now();
  const auto reply = http_request(server.port(), "GET", "/v1/stats", "");
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - begin);
  EXPECT_EQ(reply.status, 200) << reply.raw;
  EXPECT_LT(elapsed.count(), 8000)
      << "a healthy client must be answered while the stalled one is still "
         "inside its receive timeout";
  stalled.close();
  server.stop();
}

TEST(ServerTest, MaxRequestsBoundsTheAcceptLoop) {
  ServerOptions options = small_server_options();
  options.max_requests = 2;
  Server server(options);
  server.start();
  (void)http_request(server.port(), "GET", "/v1/stats", "");
  (void)http_request(server.port(), "GET", "/v1/stats", "");
  server.wait();
  EXPECT_TRUE(server.finished());
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.accepted, 2u);
  server.stop();
}

TEST(ServerTest, StopIsIdempotentAndStartable) {
  Server server(small_server_options());
  server.start();
  const auto reply = http_request(server.port(), "GET", "/v1/stats", "");
  EXPECT_EQ(reply.status, 200);
  server.stop();
  server.stop();
}

}  // namespace
}  // namespace safeopt::serve
