// Deterministic scaling corpus for the preprocessing/BDD ablation benches
// (bench/large_trees.cpp) and the `treegen` generator that writes the same
// trees as study documents (examples/corpus/*.ft).
//
// Shape per tier: `clusters` independent clusters, each a small AND/OR
// forest over `cluster_leaves` basic events (occasional shared leaf inside
// a cluster, occasional 2-of-m vote or INHIBIT root), joined by one top
// `vote_k`-of-`clusters` gate. The clusters share no leaves, so each
// cluster root is a Dutuit–Rauzy module: the plain BDD must thread the
// vote count through every one of the ~clusters·cluster_leaves variables
// (≈ leaves · k decision nodes), while the modularized BDD compiles each
// cluster once and votes over `clusters` pseudo-leaves (≈ leaves +
// clusters · k). That gap — an order of magnitude and growing with the
// tier — is exactly what BENCH_large_trees.json gates.
//
// Everything is derived from CorpusSpec::seed via the repo's xoshiro256++,
// so a tier regenerates bit-identically on any machine; CI diffs the
// committed corpus document against a fresh `treegen` run.
#ifndef SAFEOPT_TOOLS_CORPUS_H
#define SAFEOPT_TOOLS_CORPUS_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "safeopt/fta/fault_tree.h"
#include "safeopt/fta/probability.h"
#include "safeopt/support/contracts.h"
#include "safeopt/support/strings.h"
#include "safeopt/support/rng.h"

namespace safeopt::corpus {

/// One scaling tier: `clusters * cluster_leaves` basic events under a
/// `vote_k`-of-`clusters` top gate, generated from `seed`.
struct CorpusSpec {
  std::string name;           // tier label: "1k", "10k", "100k"
  std::size_t clusters = 0;
  std::size_t cluster_leaves = 0;
  std::uint32_t vote_k = 0;
  std::uint64_t seed = 0;

  [[nodiscard]] std::size_t events() const noexcept {
    return clusters * cluster_leaves;
  }
};

/// The committed tiers, smallest first. The 1k document ships in
/// examples/corpus/; the larger tiers are regenerated on demand (CI does).
inline std::vector<CorpusSpec> corpus_tiers() {
  return {
      {"1k", 50, 20, 25, 1001},
      {"10k", 100, 100, 50, 1010},
      {"100k", 400, 250, 100, 1100},
  };
}

struct CorpusModel {
  fta::FaultTree tree;
  fta::QuantificationInput input;
};

namespace detail {

inline double uniform(Xoshiro256pp& rng, double lo, double hi) {
  // 53-bit mantissa draw; identical on every platform.
  const double u = static_cast<double>(rng() >> 11) * 0x1.0p-53;
  return lo + u * (hi - lo);
}

/// rng() % n with the tiny modulo bias we can live with in a generator.
inline std::size_t pick(Xoshiro256pp& rng, std::size_t n) {
  SAFEOPT_EXPECTS(n >= 1);
  return static_cast<std::size_t>(rng() % n);
}

}  // namespace detail

/// Builds the tier's fault tree and a matching probability assignment.
/// Deterministic in `spec` alone.
inline CorpusModel make_corpus(const CorpusSpec& spec) {
  SAFEOPT_EXPECTS(spec.clusters >= 2);
  SAFEOPT_EXPECTS(spec.cluster_leaves >= 4);
  SAFEOPT_EXPECTS(spec.vote_k >= 1 && spec.vote_k <= spec.clusters);

  fta::FaultTree tree(concat("corpus_", spec.name));
  Xoshiro256pp rng(spec.seed);
  std::vector<double> event_probability;
  std::vector<double> condition_probability;
  event_probability.reserve(spec.events());

  std::vector<fta::NodeId> cluster_roots;
  cluster_roots.reserve(spec.clusters);
  for (std::size_t c = 0; c < spec.clusters; ++c) {
    // concat instead of operator+: gcc 12's -Wrestrict false positive
    // (PR105651) fires on `const char* + std::string&&` under -O3.
    const std::string prefix = concat("c", std::to_string(c));

    std::vector<fta::NodeId> leaves;
    leaves.reserve(spec.cluster_leaves);
    // Leaf probabilities scale inversely with cluster size so P(cluster)
    // stays mid-range and the top vote is genuinely uncertain — a saturated
    // top event (p -> 1) would make the plain-vs-preprocessed agreement
    // check vacuous.
    const double p_lo = 0.3 / static_cast<double>(spec.cluster_leaves);
    const double p_hi = 1.2 / static_cast<double>(spec.cluster_leaves);
    for (std::size_t e = 0; e < spec.cluster_leaves; ++e) {
      leaves.push_back(
          tree.add_basic_event(concat(prefix, ".e", std::to_string(e))));
      event_probability.push_back(detail::uniform(rng, p_lo, p_hi));
    }

    // Groups of 2..4 consecutive leaves; every fifth group re-uses the last
    // leaf of the previous group, so the cluster is a DAG, not a pure tree
    // (exercises the flatten/merge refcount logic). Sharing is kept
    // *adjacent* on purpose: a leaf referenced across a long variable span
    // would force every BDD — modularized or not — to carry its value
    // through the whole span, drowning the vote-threshold state this corpus
    // is built to measure.
    std::vector<fta::NodeId> groups;
    std::size_t next = 0;
    while (next < leaves.size()) {
      std::size_t take = 2 + detail::pick(rng, 3);
      if (take > leaves.size() - next) take = leaves.size() - next;
      std::vector<fta::NodeId> members(leaves.begin() + next,
                                       leaves.begin() + next + take);
      if (next > 0 && !groups.empty() && detail::pick(rng, 5) == 0) {
        members.push_back(leaves[next - 1]);
      }
      next += take;
      const std::string gate_name =
          concat(prefix, ".g", std::to_string(groups.size()));
      groups.push_back(detail::pick(rng, 2) == 0
                           ? tree.add_and(gate_name, std::move(members))
                           : tree.add_or(gate_name, std::move(members)));
    }

    // Cluster root: mostly OR over the groups, sometimes a 2-of-m vote,
    // sometimes an INHIBIT behind a condition (the paper's constraints).
    const std::size_t flavor = detail::pick(rng, 100);
    if (flavor < 20 && groups.size() >= 3) {
      cluster_roots.push_back(tree.add_k_of_n(prefix, 2, std::move(groups)));
    } else if (flavor < 35) {
      const fta::NodeId cause =
          tree.add_or(prefix + ".cause", std::move(groups));
      const fta::NodeId condition = tree.add_condition(prefix + ".cond");
      condition_probability.push_back(detail::uniform(rng, 0.5, 0.9));
      cluster_roots.push_back(tree.add_inhibit(prefix, cause, condition));
    } else {
      cluster_roots.push_back(tree.add_or(prefix, std::move(groups)));
    }
  }

  tree.set_top(
      tree.add_k_of_n("top", spec.vote_k, std::move(cluster_roots)));

  fta::QuantificationInput input;
  input.basic_event_probability = std::move(event_probability);
  input.condition_probability = std::move(condition_probability);
  SAFEOPT_ENSURES(input.is_valid_for(tree));
  SAFEOPT_ENSURES(tree.validate().empty());
  return {std::move(tree), std::move(input)};
}

/// The tier whose label is `name`; throws via contract failure if unknown.
inline CorpusSpec tier_by_name(const std::string& name) {
  for (const CorpusSpec& spec : corpus_tiers()) {
    if (spec.name == name) return spec;
  }
  SAFEOPT_EXPECTS(!"unknown corpus tier");
  return {};
}

}  // namespace safeopt::corpus

#endif  // SAFEOPT_TOOLS_CORPUS_H
