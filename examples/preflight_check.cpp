// The paper's §III motivating example: the pre-flight check tolerance of an
// air-speed indicator. A tight tolerance rejects airworthy planes (costly
// cancellations); a loose one lets defective indicators fly (crash risk).
// Safety optimization finds the tolerance minimizing expected cost.
//
// Model (documented substitution for the unstated numbers in the paper):
//   * indicator error drifts ~ Normal(0, 4 kt); the check rejects when the
//     measured aberration exceeds the tolerance x;
//   * a genuinely defective indicator shows a bias of 12 kt on top of the
//     drift; defect incidence per flight is 1e-4;
//   * an undetected defective indicator causes an accident with
//     probability 0.02; accident cost 300 M$, cancellation cost 30 k$.
#include <cstdio>
#include <memory>

#include "safeopt/core/cost_model.h"
#include "safeopt/core/parameter_space.h"
#include "safeopt/core/study.h"
#include "safeopt/core/tradeoff.h"
#include "safeopt/stats/distribution.h"

int main() {
  using namespace safeopt;
  using expr::parameter;

  const auto drift = std::make_shared<stats::Normal>(0.0, 4.0);
  const auto defective = std::make_shared<stats::Normal>(12.0, 4.0);
  const expr::Expr tol = parameter("tolerance");

  constexpr double kDefectRate = 1e-4;
  constexpr double kAccidentGivenMissed = 0.02;

  // H1 "crash": a defective indicator passes the check (its |aberration|
  // stays below the tolerance) and the flight ends in an accident.
  const expr::Expr p_defect_passes = expr::cdf(defective, tol);
  const expr::Expr p_crash =
      kDefectRate * kAccidentGivenMissed * p_defect_passes;

  // H2 "cancellation": a healthy indicator fails the check: |drift| > x,
  // i.e. 2 · survival(x) by symmetry.
  const expr::Expr p_cancel = 2.0 * expr::survival(drift, tol);

  core::CostModel model;
  model.add_hazard({"crash", p_crash, 300e6});
  model.add_hazard({"cancellation", p_cancel, 30e3});
  core::ParameterSpace space{
      {"tolerance", 0.5, 20.0, "kt", "accepted air-speed aberration"}};

  // A single free parameter: golden-section search — reachable only by
  // registry name, the legacy Algorithm enum never exposed it — brackets
  // the optimum on the interval. grid_search cross-checks it below.
  core::Study study(model, space);
  const auto result = study.solver("golden_section").run();
  const auto on_grid =
      study.algorithm(core::Algorithm::kGridSearch).run();
  std::printf("optimal tolerance: %.2f kt (expected cost %.2f $/flight; "
              "grid_search agrees at %.2f kt)\n",
              result.optimization.argmin[0], result.cost,
              on_grid.optimization.argmin[0]);
  std::printf("  P(crash)        = %.3e per flight\n",
              result.hazard_probabilities[0]);
  std::printf("  P(cancellation) = %.3e per flight\n\n",
              result.hazard_probabilities[1]);

  // The cost landscape: zero tolerance cancels everything, open tolerance
  // crashes planes — the optimum sits in between (paper: "some middle value
  // between zero tolerance and arbitrary tolerance").
  std::printf("tolerance [kt]   cost [$/flight]\n");
  for (double x = 2.0; x <= 18.0; x += 2.0) {
    std::printf("  %5.1f          %10.2f\n", x,
                model.cost({{"tolerance", x}}));
  }

  // How the optimal tolerance moves with the crash/cancel cost ratio.
  std::printf("\ncost-ratio sweep (crash $ / cancellation $):\n");
  for (const auto& point : core::tradeoff_curve(
           model, space, "crash", "cancellation", 1e2, 1e6, 5)) {
    std::printf("  ratio %9.0f -> tolerance %5.2f kt, P(crash)=%.2e, "
                "P(cancel)=%.2e\n",
                point.cost_ratio, point.parameters[0], point.probability_a,
                point.probability_b);
  }
  return 0;
}
