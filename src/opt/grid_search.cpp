#include "safeopt/opt/grid_search.h"

#include "builtin_solvers.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "safeopt/support/contracts.h"

namespace safeopt::opt {

GridSearch::GridSearch(std::size_t points_per_dimension,
                       std::size_t refinement_rounds)
    : points_per_dimension_(points_per_dimension),
      refinement_rounds_(refinement_rounds) {
  SAFEOPT_EXPECTS(points_per_dimension >= 2);
  SAFEOPT_EXPECTS(refinement_rounds >= 1);
}

OptimizationResult GridSearch::minimize(const Problem& problem) const {
  SAFEOPT_EXPECTS(problem.bounds.dimension() >= 1);
  const std::size_t dim = problem.bounds.dimension();
  Box box = problem.bounds;
  OptimizationResult result;
  result.value = std::numeric_limits<double>::infinity();

  // Points are enumerated odometer-style (axis 0 fastest) into fixed-size
  // blocks and handed to the problem's batch path — which is where compiled
  // tapes and the thread pool come in. The argmin scan walks each block in
  // enumeration order with a strict '<', so the incumbent (and therefore the
  // refinement trajectory) is identical to one-at-a-time evaluation.
  constexpr std::size_t kBlockRows = 4096;
  std::vector<double> block;
  block.reserve(kBlockRows * dim);
  std::vector<double> values(kBlockRows);
  std::vector<std::size_t> index(dim);

  for (std::size_t round = 0; round < refinement_rounds_; ++round) {
    std::fill(index.begin(), index.end(), 0);
    bool done = false;
    while (!done) {
      block.clear();
      std::size_t rows = 0;
      while (!done && rows < kBlockRows) {
        for (std::size_t i = 0; i < dim; ++i) {
          const double t = static_cast<double>(index[i]) /
                           static_cast<double>(points_per_dimension_ - 1);
          block.push_back(box.lower[i] +
                          t * (box.upper[i] - box.lower[i]));
        }
        ++rows;
        // Advance the odometer.
        std::size_t axis = 0;
        for (; axis < dim; ++axis) {
          if (++index[axis] < points_per_dimension_) break;
          index[axis] = 0;
        }
        done = axis == dim;
      }
      problem.evaluate_batch(block,
                             std::span<double>(values.data(), rows));
      result.evaluations += rows;
      for (std::size_t row = 0; row < rows; ++row) {
        if (values[row] < result.value) {
          result.value = values[row];
          const auto* begin = block.data() + row * dim;
          result.argmin.assign(begin, begin + dim);
        }
      }
    }
    ++result.iterations;

    // Zoom: new box is one grid-cell half-width around the incumbent,
    // clipped to the original feasible box.
    Box next = box;
    for (std::size_t i = 0; i < dim; ++i) {
      const double cell =
          (box.upper[i] - box.lower[i]) /
          static_cast<double>(points_per_dimension_ - 1);
      next.lower[i] =
          std::max(problem.bounds.lower[i], result.argmin[i] - cell);
      next.upper[i] =
          std::min(problem.bounds.upper[i], result.argmin[i] + cell);
    }
    box = next;
  }
  result.converged = true;
  result.message = "grid refinement exhausted";
  return result;
}

double GridTable::value(std::size_t i, std::size_t j) const {
  SAFEOPT_EXPECTS(i < xs.size() && j < ys.size());
  return values[i * ys.size() + j];
}

std::pair<std::size_t, std::size_t> GridTable::argmin() const {
  SAFEOPT_EXPECTS(!values.empty());
  const auto it = std::min_element(values.begin(), values.end());
  const auto flat = static_cast<std::size_t>(it - values.begin());
  return {flat / ys.size(), flat % ys.size()};
}

GridTable tabulate_2d(const Problem& problem, std::size_t nx,
                      std::size_t ny) {
  SAFEOPT_EXPECTS(problem.bounds.dimension() == 2);
  SAFEOPT_EXPECTS(nx >= 2 && ny >= 2);
  const Box& bounds = problem.bounds;
  GridTable table;
  table.xs.resize(nx);
  table.ys.resize(ny);
  table.values.resize(nx * ny);
  for (std::size_t i = 0; i < nx; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(nx - 1);
    table.xs[i] = bounds.lower[0] + t * (bounds.upper[0] - bounds.lower[0]);
  }
  for (std::size_t j = 0; j < ny; ++j) {
    const double t = static_cast<double>(j) / static_cast<double>(ny - 1);
    table.ys[j] = bounds.lower[1] + t * (bounds.upper[1] - bounds.lower[1]);
  }
  std::vector<double> points;
  points.reserve(nx * ny * 2);
  for (std::size_t i = 0; i < nx; ++i) {
    for (std::size_t j = 0; j < ny; ++j) {
      points.push_back(table.xs[i]);
      points.push_back(table.ys[j]);
    }
  }
  problem.evaluate_batch(points, table.values);
  return table;
}

GridTable tabulate_2d(const Objective& objective, const Box& bounds,
                      std::size_t nx, std::size_t ny) {
  // Same layout, serial evaluation: Problem::evaluate_batch without a
  // batch_objective loops over the objective in row order.
  Problem problem;
  problem.objective = objective;
  problem.bounds = bounds;
  return tabulate_2d(problem, nx, ny);
}

// ---- registry adapter -------------------------------------------------------

namespace {

/// Extras: "points_per_dimension" (default 21), "refinement_rounds" (4).
/// Deterministic and start-point-free; config.initial is ignored.
class GridSearchSolver final : public Solver {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "grid_search";
  }

 private:
  [[nodiscard]] OptimizationResult run(
      const Problem& problem, const SolverConfig& config) const override {
    const std::size_t points = config.count_or("points_per_dimension", 21);
    const std::size_t rounds = config.count_or("refinement_rounds", 4);
    return GridSearch(points, rounds).minimize(problem);
  }
};

}  // namespace

std::unique_ptr<Solver> detail::make_grid_search_solver() {
  return std::make_unique<GridSearchSolver>();
}

}  // namespace safeopt::opt
