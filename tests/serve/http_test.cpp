// HTTP layer tests over a real loopback socket pair: request parsing
// (request line, headers, Content-Length bodies, split reads), the
// protocol's rejection paths (malformed lines, chunked encoding, oversized
// headers/bodies), and response formatting.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <thread>
#include <utility>

#include "safeopt/serve/http.h"
#include "safeopt/support/error.h"
#include "safeopt/support/net.h"

namespace safeopt::serve {
namespace {

/// A connected (client, server) socket pair on an ephemeral loopback port.
std::pair<TcpSocket, TcpSocket> socket_pair() {
  TcpListener listener = TcpListener::bind_loopback(0);
  TcpSocket client = TcpSocket::connect_loopback(listener.port());
  std::optional<TcpSocket> server = listener.accept();
  EXPECT_TRUE(server.has_value());
  return {std::move(client), std::move(*server)};
}

HttpRequest parse(const std::string& wire, const HttpLimits& limits = {}) {
  auto [client, server] = socket_pair();
  client.write_all(wire);
  client.close();
  std::optional<HttpRequest> request = read_http_request(server, limits);
  EXPECT_TRUE(request.has_value());
  return std::move(*request);
}

TEST(HttpTest, ParsesRequestLineHeadersAndBody) {
  const HttpRequest request = parse(
      "POST /v1/quantify HTTP/1.1\r\n"
      "Host: 127.0.0.1\r\n"
      "Content-Type: application/json\r\n"
      "X-Tenant:  team-a \r\n"
      "Content-Length: 11\r\n"
      "\r\n"
      "{\"a\": true}");
  EXPECT_EQ(request.method, "POST");
  EXPECT_EQ(request.target, "/v1/quantify");
  EXPECT_EQ(request.body, "{\"a\": true}");
  // Header names lowercase, values trimmed.
  ASSERT_NE(request.find_header("x-tenant"), nullptr);
  EXPECT_EQ(*request.find_header("x-tenant"), "team-a");
  ASSERT_NE(request.find_header("content-type"), nullptr);
  EXPECT_EQ(request.find_header("absent"), nullptr);
}

TEST(HttpTest, ReadsBodySplitAcrossSegments) {
  auto [client, server] = socket_pair();
  std::thread sender([&client = client] {
    client.write_all(
        "POST /v1/validate HTTP/1.1\r\nContent-Length: 10\r\n\r\n123");
    client.write_all("4567890");
    client.close();
  });
  const std::optional<HttpRequest> request = read_http_request(server);
  sender.join();
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->body, "1234567890");
}

TEST(HttpTest, GetWithoutContentLengthHasEmptyBody) {
  const HttpRequest request = parse("GET /v1/stats HTTP/1.1\r\n\r\n");
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.target, "/v1/stats");
  EXPECT_TRUE(request.body.empty());
}

TEST(HttpTest, CleanCloseBeforeAnyBytesIsAProbeNotAnError) {
  auto [client, server] = socket_pair();
  client.close();
  EXPECT_FALSE(read_http_request(server).has_value());
}

TEST(HttpTest, RejectsMalformedInput) {
  const auto expect_invalid = [](const std::string& wire) {
    auto [client, server] = socket_pair();
    client.write_all(wire);
    client.close();
    try {
      (void)read_http_request(server);
      FAIL() << "accepted: " << wire;
    } catch (const Error& error) {
      EXPECT_EQ(error.category(), ErrorCategory::kInvalidInput) << wire;
    }
  };
  expect_invalid("GARBAGE\r\n\r\n");                     // no method/target
  expect_invalid("GET noslash HTTP/1.1\r\n\r\n");        // bad target
  expect_invalid("GET /x SPDY/99\r\n\r\n");              // bad protocol
  expect_invalid("GET /x HTTP/1.1\r\nbroken header\r\n\r\n");
  expect_invalid("GET /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n");
  expect_invalid(
      "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
  // Close mid-body: Content-Length promises more than is sent.
  expect_invalid("POST /x HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort");
}

TEST(HttpTest, RejectsOversizedHeaderBlockAsResourceExhausted) {
  HttpLimits limits;
  limits.max_header_bytes = 256;
  auto [client, server] = socket_pair();
  client.write_all("GET /x HTTP/1.1\r\nX-Pad: " + std::string(512, 'a'));
  try {
    (void)read_http_request(server, limits);
    FAIL() << "oversized header block accepted";
  } catch (const Error& error) {
    EXPECT_EQ(error.category(), ErrorCategory::kResourceExhausted);
  }
}

TEST(HttpTest, RejectsOversizedBodyAsResourceExhausted) {
  HttpLimits limits;
  limits.max_body_bytes = 16;
  auto [client, server] = socket_pair();
  client.write_all("POST /x HTTP/1.1\r\nContent-Length: 1000\r\n\r\n");
  try {
    (void)read_http_request(server, limits);
    FAIL() << "oversized body accepted";
  } catch (const Error& error) {
    EXPECT_EQ(error.category(), ErrorCategory::kResourceExhausted);
  }
}

TEST(HttpTest, SlowClientHitsTheReadDeadline) {
  HttpLimits limits;
  limits.read_timeout_ms = 50;
  auto [client, server] = socket_pair();
  client.write_all("POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\n");
  // ... and then never sends the body.
  try {
    (void)read_http_request(server, limits);
    FAIL() << "slow client not timed out";
  } catch (const Error& error) {
    EXPECT_EQ(error.category(), ErrorCategory::kDeadlineExceeded);
  }
}

TEST(HttpTest, WritesAParsableResponse) {
  auto [client, server] = socket_pair();
  write_http_response(server, HttpResponse{429, "application/json",
                                           "{\"error\": {}}"});
  server.close();
  std::string wire;
  char chunk[1024];
  while (true) {
    const std::size_t n = client.read_some(chunk, sizeof(chunk));
    if (n == 0) break;
    wire.append(chunk, n);
  }
  EXPECT_EQ(wire,
            "HTTP/1.1 429 Too Many Requests\r\n"
            "Content-Type: application/json\r\n"
            "Content-Length: 13\r\n"
            "Connection: close\r\n\r\n"
            "{\"error\": {}}");
}

TEST(HttpTest, ReasonPhrasesCoverTheServiceStatuses) {
  EXPECT_EQ(http_status_reason(200), "OK");
  EXPECT_EQ(http_status_reason(499), "Client Closed Request");
  EXPECT_EQ(http_status_reason(504), "Gateway Timeout");
  EXPECT_EQ(http_status_reason(418), "Unknown");
}

}  // namespace
}  // namespace safeopt::serve
