// The per-backend contract suite for the evaluation-backend registry
// (eval_backend.h): every registered hardware backend must reproduce the
// scalar oracle bit for bit at every lane width it supports — values and
// gradients, whole batches and misaligned splits, serial and pooled — and
// the runtime dispatch policy must never select an unavailable backend,
// degrading explicit requests (BatchRequest pin, process override,
// SAFEOPT_BACKEND) to the best available kernel with a diagnostic instead
// of crashing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "safeopt/expr/compiled.h"
#include "safeopt/expr/eval_backend.h"
#include "safeopt/expr/expr.h"
#include "safeopt/support/rng.h"
#include "safeopt/support/thread_pool.h"
#include "testutil/random_expr.h"

namespace safeopt::expr {
namespace {

std::vector<double> random_points(Rng& rng, std::size_t rows,
                                  std::size_t dim) {
  std::vector<double> points(rows * dim);
  for (double& v : points) v = uniform(rng, 0.25, 4.0);
  return points;
}

std::vector<const EvalBackend*> available_backends() {
  std::vector<const EvalBackend*> backends;
  for (const std::string& name : BackendRegistry::registered()) {
    const EvalBackend* backend = BackendRegistry::find(name);
    if (backend != nullptr && backend->available()) {
      backends.push_back(backend);
    }
  }
  return backends;
}

/// Restores the override + SAFEOPT_BACKEND environment layers on scope
/// exit, so dispatch-policy tests cannot leak into the parity tests (the
/// whole suite shares one process-wide registry).
class DispatchStateGuard {
 public:
  DispatchStateGuard() : override_(BackendRegistry::override_name()) {
    const char* env = std::getenv("SAFEOPT_BACKEND");
    if (env != nullptr) env_ = env;
  }
  ~DispatchStateGuard() {
    BackendRegistry::set_override(override_);
    if (env_.has_value()) {
      ::setenv("SAFEOPT_BACKEND", env_->c_str(), 1);
    } else {
      ::unsetenv("SAFEOPT_BACKEND");
    }
    BackendRegistry::refresh_environment();
  }

 private:
  std::string override_;
  std::optional<std::string> env_;
};

// ---------------------------------------------------------------- parity

// The tentpole contract: per backend × lane width, batch values are
// bitwise-identical to the scalar interpreter on random expression DAGs.
TEST(BackendParityTest, EveryBackendMatchesScalarOracleBitwise) {
  const std::vector<std::string> params = {"a", "b", "c"};
  const std::vector<const EvalBackend*> backends = available_backends();
  ASSERT_FALSE(backends.empty());
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    Rng rng(seed * 40961 + 13);
    const Expr e = testutil::random_expr(rng, params, 5);
    const CompiledExpr compiled = CompiledExpr::compile(e, params);
    for (const std::size_t rows : {1u, 5u, 8u, 16u, 33u}) {
      const std::vector<double> points =
          random_points(rng, rows, params.size());
      std::vector<double> scalar(rows);
      for (std::size_t r = 0; r < rows; ++r) {
        scalar[r] = compiled.evaluate(
            std::span<const double>(points).subspan(r * params.size(),
                                                    params.size()));
      }
      for (const EvalBackend* backend : backends) {
        for (const std::size_t width : {4u, 8u, 16u}) {
          if (!backend->supports_lane_width(width)) continue;
          std::vector<double> batch(rows);
          compiled.evaluate_batch({.points = points, .values = batch,
                                   .lane_width = width, .backend = backend});
          EXPECT_EQ(scalar, batch)
              << "backend " << backend->name() << " seed " << seed
              << " rows " << rows << " width " << width;
        }
        // The backend's own default width, the one dispatch would use.
        std::vector<double> batch(rows);
        compiled.evaluate_batch(
            {.points = points, .values = batch, .backend = backend});
        EXPECT_EQ(scalar, batch)
            << "backend " << backend->name() << " seed " << seed << " rows "
            << rows << " default width";
      }
    }
  }
}

// Gradients ride the same contract: per backend, values and reverse-mode
// gradients equal the per-point adjoint sweep bit for bit.
TEST(BackendParityTest, EveryBackendMatchesPerPointGradientsBitwise) {
  const std::vector<std::string> params = {"a", "b", "c"};
  const std::vector<const EvalBackend*> backends = available_backends();
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    Rng rng(seed * 92821 + 5);
    const Expr e = testutil::random_expr(rng, params, 5);
    const CompiledExpr compiled = CompiledExpr::compile(e, params);
    const std::size_t rows = 19;  // blocks plus a scalar tail at every width
    const std::vector<double> points = random_points(rng, rows, 3);
    for (const EvalBackend* backend : backends) {
      std::vector<double> values(rows);
      std::vector<double> gradients(rows * 3);
      compiled.evaluate_batch({.points = points, .values = values,
                               .gradients = gradients, .backend = backend});
      for (std::size_t r = 0; r < rows; ++r) {
        std::vector<double> grad(3);
        const double value = compiled.evaluate_with_gradient(
            std::span<const double>(points).subspan(r * 3, 3), grad);
        EXPECT_EQ(values[r], value)
            << "backend " << backend->name() << " seed " << seed << " row "
            << r;
        for (std::size_t i = 0; i < 3; ++i) {
          EXPECT_EQ(gradients[r * 3 + i], grad[i])
              << "backend " << backend->name() << " seed " << seed << " row "
              << r << " d/d" << params[i];
        }
      }
    }
  }
}

// Split- and thread-invariance per backend: block boundaries and pool fan-
// out must not change a single bit relative to one serial whole-batch run.
TEST(BackendParityTest, SplitsAndPoolsAreInvariantPerBackend) {
  const std::vector<std::string> params = {"a", "b"};
  Rng rng(4242);
  const Expr e = testutil::random_expr(rng, params, 6);
  const CompiledExpr compiled = CompiledExpr::compile(e, params);
  const std::size_t rows = 120;
  const std::vector<double> points = random_points(rng, rows, 2);
  for (const EvalBackend* backend : available_backends()) {
    std::vector<double> whole(rows);
    compiled.evaluate_batch(
        {.points = points, .values = whole, .backend = backend});
    for (const std::size_t split : {1u, 7u, 16u, 50u}) {
      std::vector<double> pieces(rows);
      for (std::size_t begin = 0; begin < rows; begin += split) {
        const std::size_t count = std::min(split, rows - begin);
        compiled.evaluate_batch(
            {.points =
                 std::span<const double>(points).subspan(begin * 2, count * 2),
             .values = std::span<double>(pieces).subspan(begin, count),
             .backend = backend});
      }
      EXPECT_EQ(whole, pieces)
          << "backend " << backend->name() << " split " << split;
    }
    for (const std::size_t threads : {2u, 5u}) {
      ThreadPool pool(threads);
      std::vector<double> pooled(rows);
      compiled.evaluate_batch({.points = points, .values = pooled,
                               .pool = &pool, .backend = backend});
      EXPECT_EQ(whole, pooled)
          << "backend " << backend->name() << " threads " << threads;
    }
  }
}

// -------------------------------------------------------------- dispatch

TEST(BackendRegistryTest, GenericIsRegisteredAvailableAndOracle) {
  const EvalBackend* generic = BackendRegistry::find("generic");
  ASSERT_NE(generic, nullptr);
  EXPECT_TRUE(generic->available());
  EXPECT_EQ(generic->priority(), 0);
  EXPECT_EQ(&BackendRegistry::generic(), generic);
}

TEST(BackendRegistryTest, ActiveIsTheBestAvailableBackend) {
  const DispatchStateGuard guard;
  BackendRegistry::set_override("");
  ::unsetenv("SAFEOPT_BACKEND");
  BackendRegistry::refresh_environment();
  const EvalBackend& active = BackendRegistry::active();
  EXPECT_TRUE(active.available());
  for (const EvalBackend* backend : available_backends()) {
    EXPECT_LE(backend->priority(), active.priority())
        << backend->name() << " outranks the dispatch pick";
  }
}

TEST(BackendRegistryTest, UnknownRequestDegradesWithDiagnostic) {
  const BackendRegistry::Selection selection =
      BackendRegistry::resolve("no-such-backend");
  ASSERT_NE(selection.backend, nullptr);
  EXPECT_TRUE(selection.backend->available());
  EXPECT_EQ(selection.requested, "no-such-backend");
  EXPECT_NE(selection.diagnostic.find("not registered"), std::string::npos)
      << selection.diagnostic;
  EXPECT_NE(selection.diagnostic.find("no-such-backend"), std::string::npos);
}

// The graceful-degradation contract: a registered backend whose hardware
// probe says "no" is never selected — not even when it outranks everything
// — and the resolution says why. This is the SAFEOPT_BACKEND=avx512-on-an-
// avx2-host scenario, simulated with a backend that is unavailable
// everywhere so the test runs on any machine.
class UnavailableBackend final : public EvalBackend {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "test-unavailable";
  }
  [[nodiscard]] bool available() const noexcept override { return false; }
  [[nodiscard]] int priority() const noexcept override { return 1000; }
  [[nodiscard]] std::size_t default_lane_width() const noexcept override {
    return 8;
  }
  [[nodiscard]] bool supports_lane_width(
      std::size_t width) const noexcept override {
    return width == 8;
  }
  void run_block(const CompiledExpr&, const double*, std::size_t, std::size_t,
                 double*, CompiledExpr::LaneScratch&) const override {
    FAIL() << "dispatch selected an unavailable backend";
  }
  void run_block_with_gradients(const CompiledExpr&, const double*,
                                std::size_t, std::size_t, double*, double*,
                                CompiledExpr::LaneScratch&) const override {
    FAIL() << "dispatch selected an unavailable backend";
  }
};

TEST(BackendRegistryTest, UnavailableBackendIsNeverSelected) {
  const DispatchStateGuard guard;
  BackendRegistry::set_override("");
  ::unsetenv("SAFEOPT_BACKEND");
  BackendRegistry::refresh_environment();
  BackendRegistry::add(std::make_unique<UnavailableBackend>());
  ASSERT_NE(BackendRegistry::find("test-unavailable"), nullptr);

  // Highest priority of the whole registry, yet dispatch skips it.
  EXPECT_NE(BackendRegistry::active().name(), "test-unavailable");

  // An explicit request degrades to the best available pick + diagnostic.
  const BackendRegistry::Selection requested =
      BackendRegistry::resolve("test-unavailable");
  ASSERT_NE(requested.backend, nullptr);
  EXPECT_TRUE(requested.backend->available());
  EXPECT_NE(requested.backend->name(), "test-unavailable");
  EXPECT_NE(requested.diagnostic.find("not available"), std::string::npos)
      << requested.diagnostic;

  // So does the environment layer — and evaluation still works end to end.
  ::setenv("SAFEOPT_BACKEND", "test-unavailable", 1);
  BackendRegistry::refresh_environment();
  const BackendRegistry::Selection via_env = BackendRegistry::resolve({});
  EXPECT_TRUE(via_env.backend->available());
  EXPECT_NE(via_env.diagnostic.find("SAFEOPT_BACKEND"), std::string::npos)
      << via_env.diagnostic;

  const CompiledExpr compiled = CompiledExpr::compile(
      parameter("a") * 2.0 + parameter("b"), {"a", "b"});
  const std::vector<double> points = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  std::vector<double> out(3);
  compiled.evaluate_batch({.points = points, .values = out});
  EXPECT_EQ(out, (std::vector<double>{4.0, 10.0, 16.0}));
}

TEST(BackendRegistryTest, OverrideLayerBeatsEnvironmentLayer) {
  const DispatchStateGuard guard;
  ::setenv("SAFEOPT_BACKEND", "no-such-backend", 1);
  BackendRegistry::refresh_environment();
  BackendRegistry::set_override("generic");
  const BackendRegistry::Selection selection = BackendRegistry::resolve({});
  EXPECT_EQ(selection.backend, &BackendRegistry::generic());
  EXPECT_TRUE(selection.diagnostic.empty()) << selection.diagnostic;

  // Clearing the override re-exposes the (broken) environment layer, which
  // degrades with a diagnostic naming its source.
  BackendRegistry::set_override("");
  const BackendRegistry::Selection env_layer = BackendRegistry::resolve({});
  EXPECT_TRUE(env_layer.backend->available());
  EXPECT_NE(env_layer.diagnostic.find("SAFEOPT_BACKEND"), std::string::npos)
      << env_layer.diagnostic;
}

}  // namespace
}  // namespace safeopt::expr
