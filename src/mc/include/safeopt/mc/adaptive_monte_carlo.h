// Adaptive + rare-event Monte Carlo estimation of hazard probabilities.
//
// The fixed-budget estimator in monte_carlo.h spends the same number of
// trials on every point; this facility spends only as many as the requested
// precision needs, and — for the rare events real safety cases live in
// (p ≪ 1e-6, where crude sampling would need ~1/p trials per digit) — tilts
// the per-leaf sampling distributions so the top event is no longer rare
// *under the proposal*, with exact likelihood-ratio reweighting keeping the
// estimate unbiased.
//
// Two modes behind one stopping loop:
//
//   crude      (tilt <= 1)  Bernoulli sampling at the input probabilities;
//                           estimate and stopping rule from the Wilson score
//                           interval of the hit proportion.
//   importance (tilt > 1)   every leaf with p < 1/2 is sampled at
//                           q = min(1/2, tilt·p) and each trial carries the
//                           exact likelihood ratio
//                           W = ∏ (p/q)^x ((1−p)/(1−q))^(1−x);
//                           the estimate is the sample mean of W·1{top} —
//                           unbiased because the tilt is exact per leaf —
//                           with a normal-approximation interval and
//                           effective-sample-size diagnostics.
//
// Sampling proceeds in rounds of `batch` trials; the stopping rule (target
// 95% CI half-width, absolute or relative) is evaluated between rounds, and
// the trial budget caps the loop. Rounds are partitioned into fixed-size
// chunks, each driven by its own xoshiro jump() stream, so the *entire
// trajectory* — estimate, interval and the stopped trial count — is a pure
// function of (tree, input, options): bitwise thread-count-invariant, with
// or without a pool.
#ifndef SAFEOPT_MC_ADAPTIVE_MONTE_CARLO_H
#define SAFEOPT_MC_ADAPTIVE_MONTE_CARLO_H

#include <cstdint>
#include <vector>

#include "safeopt/fta/fault_tree.h"
#include "safeopt/fta/probability.h"
#include "safeopt/stats/estimators.h"

namespace safeopt {
class ThreadPool;
class ExecutionControl;  // support/execution.h
}

namespace safeopt::mc {

/// Stopping rule, budget, and proposal tilt for AdaptiveMonteCarlo.
struct AdaptiveOptions {
  /// Target 95% CI half-width. With `relative` set, the target is
  /// `target_halfwidth · estimate` (5% default ≈ two significant digits);
  /// otherwise it is absolute. Must be > 0 (and < 1 when relative).
  double target_halfwidth = 0.05;
  bool relative = true;

  /// Trials per adaptive round; the stopping rule runs between rounds, so
  /// the stopped trial count is always a multiple of `batch` (except when
  /// the budget truncates the final round). Must be >= 1.
  std::uint64_t batch = 1 << 16;

  /// Hard trial budget; estimation stops here even when the target half-
  /// width has not been reached (AdaptiveResult::converged reports which).
  std::uint64_t max_trials = 1 << 22;

  /// Importance-sampling proposal tilt: every leaf with p < 1/2 is sampled
  /// at q = min(1/2, tilt · p). Values <= 1 disable importance sampling
  /// (crude Bernoulli sampling at the input probabilities).
  double tilt = 0.0;

  std::uint64_t seed = 0x5a4e0u;

  /// Optional worker pool for the per-round chunk fan-out. Not owned.
  /// Results are bitwise-identical with any pool, or none.
  ThreadPool* pool = nullptr;

  /// Cooperative deadline/cancellation, polled only at round boundaries so
  /// the thread-invariance contract is untouched: an aborted run returns the
  /// last completed round's totals (converged = false, aborted = true) — it
  /// never throws, and never tears a round. Not owned; nullptr = unbounded.
  const ExecutionControl* control = nullptr;
};

/// Outcome of one adaptive estimation.
struct AdaptiveResult {
  double estimate = 0.0;
  stats::ConfidenceInterval ci95;
  /// Trials actually drawn (<= options.max_trials).
  std::uint64_t trials = 0;
  /// Raw top-event hits under the sampling distribution (the proposal when
  /// importance sampling — not an estimate of p on its own in that mode).
  std::uint64_t occurrences = 0;
  /// True when the target half-width was reached within the budget.
  bool converged = false;
  /// True when a deadline/cancellation cut the run short at a round
  /// boundary; the totals above then describe the last completed round
  /// (zero rounds when the control had already fired at entry).
  bool aborted = false;
  /// True when the estimate came from the tilted (importance) sampler.
  bool importance = false;
  /// Effective sample size (Σw)²/Σw² of the importance weights; equals
  /// `trials` for crude sampling. A small ESS/trials ratio flags a poorly
  /// matched proposal (tilt too aggressive).
  double ess = 0.0;
  /// Self-normalized estimate Σ(w·1{top})/Σw — biased but often lower-
  /// variance; equals `estimate` for crude sampling. Reported as a
  /// diagnostic; `estimate` itself is the unbiased sample mean.
  double self_normalized = 0.0;

  [[nodiscard]] double halfwidth() const noexcept {
    return 0.5 * ci95.width();
  }
  /// True if the analytic value is inside the 95% interval.
  [[nodiscard]] bool consistent_with(double analytic) const noexcept {
    return ci95.contains(analytic);
  }
};

/// Sequential-batched adaptive estimator over one option set; estimate() can
/// be called for any number of (tree, input) pairs. The class itself holds
/// no mutable state — it is safe to share across threads as long as the
/// configured pool is used from one call at a time.
class AdaptiveMonteCarlo {
 public:
  /// Precondition: target_halfwidth > 0 (< 1 when relative), batch >= 1,
  /// max_trials >= 1, tilt is not NaN.
  explicit AdaptiveMonteCarlo(AdaptiveOptions options = {});

  [[nodiscard]] const AdaptiveOptions& options() const noexcept {
    return options_;
  }

  /// Runs the adaptive loop for one input.
  /// Precondition: tree.has_top(), input.is_valid_for(tree).
  [[nodiscard]] AdaptiveResult estimate(
      const fta::FaultTree& tree, const fta::QuantificationInput& input) const;

  /// Estimates many inputs in one call: every input's chunk work for a
  /// super-round is submitted to the pool together, so inputs that need
  /// more rounds keep the workers busy after the easy ones converge. Each
  /// entry is bitwise-identical to the corresponding estimate() call.
  [[nodiscard]] std::vector<AdaptiveResult> estimate_batch(
      const fta::FaultTree& tree,
      const std::vector<fta::QuantificationInput>& inputs) const;

  /// estimate_batch with a per-call control that overrides (not chains)
  /// options().control — the engine layer derives a fresh deadline per
  /// quantification from one long-lived sampler.
  [[nodiscard]] std::vector<AdaptiveResult> estimate_batch(
      const fta::FaultTree& tree,
      const std::vector<fta::QuantificationInput>& inputs,
      const ExecutionControl* control) const;

 private:
  AdaptiveOptions options_;
};

}  // namespace safeopt::mc

#endif  // SAFEOPT_MC_ADAPTIVE_MONTE_CARLO_H
