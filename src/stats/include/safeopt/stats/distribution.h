// Probability distributions for parameterized failure probabilities
// (paper §II-D.2: "In practice P(PF) is usually a (continuous) probabilistic
// distribution") and for the statistical environment model (§IV-B/C).
//
// The paper's driving-time model is a normal distribution with µ = 4 min,
// σ = 2 min *renormalized over [0, ∞)* — exactly `TruncatedNormal` below;
// its Eq. for P_OHV(Time <= T) is TruncatedNormal::cdf.
//
// Every distribution supplies pdf, cdf, quantile (inverse cdf), mean,
// variance and deterministic sampling from a safeopt::Rng. Sampling defaults
// to inverse-transform so one uniform draw maps to one variate — important
// for reproducible discrete-event simulation.
#ifndef SAFEOPT_STATS_DISTRIBUTION_H
#define SAFEOPT_STATS_DISTRIBUTION_H

#include <memory>
#include <string>

#include "safeopt/support/rng.h"

namespace safeopt::stats {

/// Abstract interface for a univariate distribution.
class Distribution {
 public:
  virtual ~Distribution() = default;

  /// Probability density at x (0 outside the support).
  [[nodiscard]] virtual double pdf(double x) const noexcept = 0;
  /// P(X <= x).
  [[nodiscard]] virtual double cdf(double x) const noexcept = 0;
  /// P(X > x). Default is 1 − cdf(x); concrete distributions override with
  /// cancellation-free tail formulas, which quantitative FTA needs: overtime
  /// probabilities such as the paper's P(OT1)(T1) ARE survival values, and
  /// 1 − cdf rounds to 0 past ~8σ.
  [[nodiscard]] virtual double survival(double x) const noexcept;
  /// Inverse cdf. Precondition: 0 < p < 1 (0/1 map to the support bounds).
  [[nodiscard]] virtual double quantile(double p) const noexcept;
  [[nodiscard]] virtual double mean() const noexcept = 0;
  [[nodiscard]] virtual double variance() const noexcept = 0;
  /// Draws one variate; default is inverse-transform sampling.
  [[nodiscard]] virtual double sample(Rng& rng) const noexcept;
  /// Human-readable name including parameters, e.g. "Normal(4, 2)".
  [[nodiscard]] virtual std::string name() const = 0;
  /// Support bounds (may be ±infinity).
  [[nodiscard]] virtual double support_lower() const noexcept;
  [[nodiscard]] virtual double support_upper() const noexcept;

 protected:
  Distribution() = default;
  Distribution(const Distribution&) = default;
  Distribution& operator=(const Distribution&) = default;
};

/// Normal(µ, σ), σ > 0.
class Normal final : public Distribution {
 public:
  Normal(double mu, double sigma);
  [[nodiscard]] double pdf(double x) const noexcept override;
  [[nodiscard]] double cdf(double x) const noexcept override;
  [[nodiscard]] double survival(double x) const noexcept override;
  [[nodiscard]] double quantile(double p) const noexcept override;
  [[nodiscard]] double mean() const noexcept override { return mu_; }
  [[nodiscard]] double variance() const noexcept override {
    return sigma_ * sigma_;
  }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double mu() const noexcept { return mu_; }
  [[nodiscard]] double sigma() const noexcept { return sigma_; }

 private:
  double mu_;
  double sigma_;
};

/// Normal(µ, σ) conditioned on [lo, hi] — the paper's driving-time model uses
/// lo = 0, hi = +infinity. Requires lo < hi and positive mass on [lo, hi].
class TruncatedNormal final : public Distribution {
 public:
  TruncatedNormal(double mu, double sigma, double lo, double hi);
  /// Convenience factory for the paper's [0, ∞) truncation.
  [[nodiscard]] static TruncatedNormal nonnegative(double mu, double sigma);

  [[nodiscard]] double pdf(double x) const noexcept override;
  [[nodiscard]] double cdf(double x) const noexcept override;
  [[nodiscard]] double survival(double x) const noexcept override;
  [[nodiscard]] double quantile(double p) const noexcept override;
  [[nodiscard]] double mean() const noexcept override;
  [[nodiscard]] double variance() const noexcept override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double support_lower() const noexcept override { return lo_; }
  [[nodiscard]] double support_upper() const noexcept override { return hi_; }

 private:
  double mu_;
  double sigma_;
  double lo_;
  double hi_;
  double cdf_lo_;    // Φ((lo-µ)/σ)
  double mass_;      // Φ((hi-µ)/σ) − Φ((lo-µ)/σ)
};

/// Exponential(λ), λ > 0. Memoryless; used for Poisson failure processes
/// (sensor false-detection inter-arrival times in the Elbtunnel model).
class Exponential final : public Distribution {
 public:
  explicit Exponential(double rate);
  [[nodiscard]] double pdf(double x) const noexcept override;
  [[nodiscard]] double cdf(double x) const noexcept override;
  [[nodiscard]] double survival(double x) const noexcept override;
  [[nodiscard]] double quantile(double p) const noexcept override;
  [[nodiscard]] double mean() const noexcept override { return 1.0 / rate_; }
  [[nodiscard]] double variance() const noexcept override {
    return 1.0 / (rate_ * rate_);
  }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double support_lower() const noexcept override { return 0.0; }
  [[nodiscard]] double rate() const noexcept { return rate_; }

 private:
  double rate_;
};

/// Weibull(k, λ): shape k > 0, scale λ > 0. The standard wear-out model for
/// hardware failure probabilities over a maintenance interval.
class Weibull final : public Distribution {
 public:
  Weibull(double shape, double scale);
  [[nodiscard]] double pdf(double x) const noexcept override;
  [[nodiscard]] double cdf(double x) const noexcept override;
  [[nodiscard]] double survival(double x) const noexcept override;
  [[nodiscard]] double quantile(double p) const noexcept override;
  [[nodiscard]] double mean() const noexcept override;
  [[nodiscard]] double variance() const noexcept override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double support_lower() const noexcept override { return 0.0; }

 private:
  double shape_;
  double scale_;
};

/// LogNormal: ln X ~ Normal(µ, σ).
class LogNormal final : public Distribution {
 public:
  LogNormal(double mu_log, double sigma_log);
  [[nodiscard]] double pdf(double x) const noexcept override;
  [[nodiscard]] double cdf(double x) const noexcept override;
  [[nodiscard]] double survival(double x) const noexcept override;
  [[nodiscard]] double quantile(double p) const noexcept override;
  [[nodiscard]] double mean() const noexcept override;
  [[nodiscard]] double variance() const noexcept override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double support_lower() const noexcept override { return 0.0; }

 private:
  double mu_log_;
  double sigma_log_;
};

/// Uniform(lo, hi), lo < hi.
class Uniform final : public Distribution {
 public:
  Uniform(double lo, double hi);
  [[nodiscard]] double pdf(double x) const noexcept override;
  [[nodiscard]] double cdf(double x) const noexcept override;
  [[nodiscard]] double quantile(double p) const noexcept override;
  [[nodiscard]] double mean() const noexcept override {
    return 0.5 * (lo_ + hi_);
  }
  [[nodiscard]] double variance() const noexcept override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double support_lower() const noexcept override { return lo_; }
  [[nodiscard]] double support_upper() const noexcept override { return hi_; }

 private:
  double lo_;
  double hi_;
};

/// Gamma(k, θ): shape k > 0, scale θ > 0. Sum of exponential phases; models
/// multi-stage degradation and Erlang driving-time alternatives.
class Gamma final : public Distribution {
 public:
  Gamma(double shape, double scale);
  [[nodiscard]] double pdf(double x) const noexcept override;
  [[nodiscard]] double cdf(double x) const noexcept override;
  [[nodiscard]] double mean() const noexcept override {
    return shape_ * scale_;
  }
  [[nodiscard]] double variance() const noexcept override {
    return shape_ * scale_ * scale_;
  }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double support_lower() const noexcept override { return 0.0; }

 private:
  double shape_;
  double scale_;
};

}  // namespace safeopt::stats

#endif  // SAFEOPT_STATS_DISTRIBUTION_H
