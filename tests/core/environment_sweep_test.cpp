#include "safeopt/core/environment_sweep.h"

#include <gtest/gtest.h>

#include <cmath>

namespace safeopt::core {
namespace {

using expr::parameter;

TEST(EnvironmentSweepTest, TabulatesEvenGridAndSeries) {
  const std::vector<SweepSeries> series{
      {"linear", 2.0 * parameter("t")},
      {"quadratic", parameter("t") * parameter("t")}};
  const SweepTable table =
      sweep_parameter("t", 0.0, 10.0, 11, {}, series);

  EXPECT_EQ(table.parameter, "t");
  ASSERT_EQ(table.xs.size(), 11u);
  EXPECT_DOUBLE_EQ(table.xs.front(), 0.0);
  EXPECT_DOUBLE_EQ(table.xs.back(), 10.0);
  EXPECT_DOUBLE_EQ(table.xs[5], 5.0);

  ASSERT_EQ(table.values.size(), 2u);
  EXPECT_DOUBLE_EQ(table.values[0][5], 10.0);
  EXPECT_DOUBLE_EQ(table.values[1][5], 25.0);
  EXPECT_EQ(table.labels[0], "linear");
  EXPECT_EQ(table.labels[1], "quadratic");
}

TEST(EnvironmentSweepTest, BaseAssignmentHoldsOtherParametersFixed) {
  const std::vector<SweepSeries> series{
      {"sum", parameter("t") + parameter("fixed")}};
  const SweepTable table =
      sweep_parameter("t", 0.0, 1.0, 3, {{"fixed", 100.0}}, series);
  EXPECT_DOUBLE_EQ(table.values[0][0], 100.0);
  EXPECT_DOUBLE_EQ(table.values[0][2], 101.0);
}

TEST(EnvironmentSweepTest, Fig6StyleSweepIsMonotone) {
  // The Fig. 6 pattern: P(alarm | OHV present)(T2) = 1 − e^{−0.13 T2} is
  // increasing in the sweep parameter.
  const std::vector<SweepSeries> series{
      {"without_LB4", expr::poisson_exposure(0.13, parameter("T2"))}};
  const SweepTable table = sweep_parameter("T2", 5.0, 25.0, 21, {}, series);
  for (std::size_t k = 1; k < table.xs.size(); ++k) {
    EXPECT_GT(table.values[0][k], table.values[0][k - 1]);
  }
  // Paper's reported anchor points.
  EXPECT_GT(table.values[0].back(), 0.95);   // ≈ 96% at 25 min
  EXPECT_GT(table.values[0].front(), 0.45);  // ≈ 48% at 5 min
}

TEST(EnvironmentSweepTest, CsvHasHeaderAndRows) {
  const std::vector<SweepSeries> series{{"s", parameter("t")}};
  const SweepTable table = sweep_parameter("t", 0.0, 1.0, 2, {}, series);
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("t,s\n"), std::string::npos);
  EXPECT_NE(csv.find("0,0\n"), std::string::npos);
  EXPECT_NE(csv.find("1,1\n"), std::string::npos);
}

}  // namespace
}  // namespace safeopt::core
